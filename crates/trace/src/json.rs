//! A minimal JSON value model, writer and recursive-descent parser.
//!
//! The vendored `serde` stub has no real (de)serialisation backend (see
//! `vendor/README.md`), so the JSONL trace codec hand-rolls the sliver of JSON
//! it needs: objects, arrays, strings, 64-bit integers, booleans and `null`.
//! Floats are deliberately rejected — the trace format never emits them, and
//! refusing them keeps round-trips exact.

use crate::error::TraceError;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (all negative integers land here).
    Int(i64),
    /// A non-negative integer that only fits `u64` (e.g. large seeds).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order (duplicate keys are rejected at parse time).
    Object(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Appends the JSON encoding of `s` (including the surrounding quotes) to `out`.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses exactly one JSON value occupying the whole of `input` (surrounding
/// whitespace allowed). `location` names the input in error messages.
pub(crate) fn parse(input: &str, location: &str) -> Result<Json, TraceError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        location,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

/// Nesting depth cap: `OpValue` pairs/lists nest, but never this deep; the cap
/// turns adversarial inputs into errors instead of stack overflows.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    location: &'a str,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> TraceError {
        TraceError::malformed(
            format!("{} (byte {})", self.location, self.pos),
            message.into(),
        )
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), TraceError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, TraceError> {
        if depth > MAX_DEPTH {
            return Err(self.error("value nests too deeply"));
        }
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, TraceError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {literal:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.error("floating-point numbers are not part of the trace format"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits and '-' are valid UTF-8");
        if text.is_empty() || text == "-" {
            return Err(self.error("expected digits"));
        }
        if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Json::UInt(u))
        } else {
            Err(self.error(format!("integer {text} does not fit 64 bits")))
        }
    }

    fn parse_string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a &str");
                    let c = rest.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, TraceError> {
        let first = self.parse_hex4()?;
        // Surrogate pairs: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (0xD800..=0xDBFF).contains(&first) {
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..=0xDFFF).contains(&second) {
                    let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(code)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired UTF-16 surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, TraceError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, TraceError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, TraceError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key {key:?}")));
            }
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Json {
        parse(s, "test").unwrap()
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(p("null"), Json::Null);
        assert_eq!(p("true"), Json::Bool(true));
        assert_eq!(p("false"), Json::Bool(false));
        assert_eq!(p("-42"), Json::Int(-42));
        assert_eq!(p("42"), Json::Int(42));
        assert_eq!(p("18446744073709551615"), Json::UInt(u64::MAX));
        assert_eq!(p("\"hi\""), Json::Str("hi".into()));
    }

    #[test]
    fn containers_parse() {
        let v = p("{\"a\": [1, 2], \"b\": {\"c\": null}} ");
        assert_eq!(
            v.get("a"),
            Some(&Json::Array(vec![Json::Int(1), Json::Int(2)]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(p("[]"), Json::Array(vec![]));
        assert_eq!(p("{}"), Json::Object(vec![]));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{8}\u{1F600}";
        let mut encoded = String::new();
        write_escaped(&mut encoded, original);
        assert_eq!(p(&encoded), Json::Str(original.into()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(p("\"\\ud83d\\ude00\""), Json::Str("\u{1F600}".into()));
        assert!(parse("\"\\ud83d\"", "test").is_err());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "tru",
            "1.5",
            "1e3",
            "{",
            "[1,",
            "\"x",
            "{\"a\":1,\"a\":2}",
            "01x",
            "- ",
            "1 2",
            "\u{1}",
        ] {
            assert!(parse(bad, "test").is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn accessors_are_type_safe() {
        assert_eq!(p("7").as_u64(), Some(7));
        assert_eq!(p("-7").as_u64(), None);
        assert_eq!(p("\"s\"").as_str(), Some("s"));
        assert_eq!(p("null").as_u64(), None);
        assert_eq!(p("1").get("k"), None);
    }

    #[test]
    fn depth_is_capped() {
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep, "test").is_err());
    }
}
