//! Streaming trace writers.

use crate::error::TraceError;
use crate::header::{TraceFormat, TraceHeader};
use crate::sink::{EventSink, TaggedEventSink};
use crate::{binary, jsonl};
use linrv_history::{Event, History};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A streaming trace writer: the header is written on construction, events are
/// written one at a time and never buffered beyond the current record.
///
/// `TraceWriter` performs many small writes, so wrap slow sinks (files, pipes)
/// in a [`std::io::BufWriter`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    format: TraceFormat,
    /// Scratch buffers reused across events, so the per-event hot path
    /// performs no steady-state allocation.
    scratch: Vec<u8>,
    line: String,
    events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the preamble and header for a new trace in `format`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the underlying writer fails.
    pub fn new(mut out: W, format: TraceFormat, header: &TraceHeader) -> Result<Self, TraceError> {
        match format {
            TraceFormat::Jsonl => {
                let mut line = jsonl::encode_header(header);
                line.push('\n');
                out.write_all(line.as_bytes())?;
            }
            TraceFormat::Binary => {
                let mut bytes = Vec::new();
                binary::encode_preamble(&mut bytes);
                binary::encode_header(&mut bytes, header)?;
                out.write_all(&bytes)?;
            }
        }
        Ok(TraceWriter {
            out,
            format,
            scratch: Vec::new(),
            line: String::new(),
            events: 0,
        })
    }

    /// Appends one event to the trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the underlying writer fails, or when a
    /// binary event frame would exceed the format's 16 MiB cap (readers would
    /// reject it, so writing it is refused up front).
    pub fn event(&mut self, event: &Event) -> Result<(), TraceError> {
        self.write_tagged(None, event)
    }

    /// Appends one event tagged with the object it belongs to, for multi-object
    /// traces (see `FORMAT.md`).
    ///
    /// # Errors
    ///
    /// See [`TraceWriter::event`].
    pub fn tagged_event(&mut self, object: u64, event: &Event) -> Result<(), TraceError> {
        self.write_tagged(Some(object), event)
    }

    fn write_tagged(&mut self, object: Option<u64>, event: &Event) -> Result<(), TraceError> {
        match self.format {
            TraceFormat::Jsonl => {
                self.line.clear();
                jsonl::encode_tagged_event(&mut self.line, object, event);
                self.line.push('\n');
                self.out.write_all(self.line.as_bytes())?;
            }
            TraceFormat::Binary => {
                self.scratch.clear();
                binary::encode_tagged_event(&mut self.scratch, object, event)?;
                self.out.write_all(&self.scratch)?;
            }
        }
        self.events += 1;
        Ok(())
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// The encoding this writer produces.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the flush fails.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes a complete in-memory [`History`] as one trace, returning the number
/// of events written.
///
/// # Errors
///
/// Returns a [`TraceError`] when the underlying writer fails.
pub fn write_history<W: Write>(
    out: W,
    format: TraceFormat,
    header: &TraceHeader,
    history: &History,
) -> Result<u64, TraceError> {
    let mut writer = TraceWriter::new(out, format, header)?;
    for event in history.events() {
        writer.event(event)?;
    }
    let events = writer.events_written();
    writer.finish()?;
    Ok(events)
}

/// A cloneable, thread-safe handle around a [`TraceWriter`], usable as the
/// [`EventSink`] of a recorder or monitor.
///
/// Events arriving from several threads are serialised through an internal
/// mutex, so the trace's event order is the order in which the sink was called.
/// The first write error is latched — later events are dropped — and surfaces
/// from [`SharedTraceWriter::finish`].
pub struct SharedTraceWriter<W: Write + Send> {
    inner: Arc<Mutex<SharedState<W>>>,
}

struct SharedState<W: Write + Send> {
    writer: Option<TraceWriter<W>>,
    error: Option<TraceError>,
}

impl<W: Write + Send> Clone for SharedTraceWriter<W> {
    fn clone(&self) -> Self {
        SharedTraceWriter {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<W: Write + Send> SharedTraceWriter<W> {
    /// Starts a shared trace (see [`TraceWriter::new`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when writing the header fails.
    pub fn new(out: W, format: TraceFormat, header: &TraceHeader) -> Result<Self, TraceError> {
        let writer = TraceWriter::new(out, format, header)?;
        Ok(SharedTraceWriter {
            inner: Arc::new(Mutex::new(SharedState {
                writer: Some(writer),
                error: None,
            })),
        })
    }

    /// Number of events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.lock()
            .writer
            .as_ref()
            .map_or(0, TraceWriter::events_written)
    }

    /// Finishes the trace: flushes and returns the underlying writer.
    ///
    /// Any handle may call this once; subsequent calls (and events) fail with
    /// [`TraceError::AlreadyFinished`].
    ///
    /// # Errors
    ///
    /// Returns the first latched write error, or the flush error.
    pub fn finish(&self) -> Result<W, TraceError> {
        let mut state = self.lock();
        if let Some(error) = state.error.take() {
            return Err(error);
        }
        match state.writer.take() {
            Some(writer) => writer.finish(),
            None => Err(TraceError::AlreadyFinished),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState<W>> {
        // Mirror parking_lot semantics: a panic while holding the lock (only
        // possible inside TraceWriter, which does not panic) must not wedge
        // every later event.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<W: Write + Send> EventSink for SharedTraceWriter<W> {
    fn event(&self, event: &Event) {
        self.sink(None, event);
    }
}

impl<W: Write + Send> TaggedEventSink for SharedTraceWriter<W> {
    fn tagged_event(&self, object: u64, event: &Event) {
        self.sink(Some(object), event);
    }
}

impl<W: Write + Send> SharedTraceWriter<W> {
    fn sink(&self, object: Option<u64>, event: &Event) {
        let mut state = self.lock();
        if state.error.is_some() {
            return;
        }
        if let Some(writer) = state.writer.as_mut() {
            if let Err(error) = writer.write_tagged(object, event) {
                state.error = Some(error);
                state.writer = None;
            }
        }
    }
}

impl<W: Write + Send> std::fmt::Debug for SharedTraceWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTraceWriter")
            .field("events_written", &self.events_written())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_history;
    use linrv_history::{OpId, OpValue, Operation, ProcessId};
    use linrv_spec::ObjectKind;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::invocation(
                ProcessId::new(0),
                OpId::new(0),
                Operation::new("Enqueue", OpValue::Int(1)),
            ),
            Event::response(ProcessId::new(0), OpId::new(0), OpValue::Bool(true)),
        ]
    }

    #[test]
    fn write_history_round_trips_both_formats() {
        let history = History::from_events(sample_events());
        let header = TraceHeader::new(ObjectKind::Queue).with_seed(7);
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut bytes = Vec::new();
            let written = write_history(&mut bytes, format, &header, &history).unwrap();
            assert_eq!(written, 2);
            let (decoded_header, decoded) = read_history(bytes.as_slice()).unwrap();
            assert_eq!(decoded_header, header);
            assert_eq!(decoded, history);
        }
    }

    #[test]
    fn shared_writer_serialises_concurrent_events() {
        let shared = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Binary,
            &TraceHeader::new(ObjectKind::Counter),
        )
        .unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let sink = shared.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        sink.event(&Event::response(
                            ProcessId::new(t),
                            OpId::new(u64::from(t) * 100 + i),
                            OpValue::Int(i64::from(t)),
                        ));
                    }
                });
            }
        });
        assert_eq!(shared.events_written(), 100);
        let bytes = shared.finish().unwrap();
        let (_, history) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(history.len(), 100);
        assert!(matches!(shared.finish(), Err(TraceError::AlreadyFinished)));
    }

    #[test]
    fn shared_writer_latches_the_first_io_error() {
        /// A writer that fails after the header.
        #[derive(Debug)]
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    Err(std::io::Error::other("disk full"))
                } else {
                    self.0 = self.0.saturating_sub(1);
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = SharedTraceWriter::new(
            FailAfter(1),
            TraceFormat::Jsonl,
            &TraceHeader::new(ObjectKind::Queue),
        )
        .unwrap();
        for event in sample_events() {
            shared.event(&event); // first fails and latches, second is dropped
        }
        let err = shared.finish().unwrap_err();
        assert!(err.to_string().contains("disk full"));
    }
}
