//! Streaming trace readers with format auto-detection.

use crate::error::TraceError;
use crate::header::{TraceFormat, TraceHeader};
use crate::{binary, jsonl};
use linrv_history::{Event, History};
use std::io::{BufRead, BufReader, Read};

/// A streaming trace reader: the header is decoded on construction, then events
/// are yielded one at a time — the whole history is never buffered.
///
/// The on-disk format is auto-detected from the first byte: `{` starts a JSONL
/// header line, `L` starts the binary magic (`LINRVTRC`).
///
/// Iteration yields `Result<Event, TraceError>` and fuses after the first
/// error: a torn or corrupted trace produces the events before the damage,
/// then exactly one `Err`.
pub struct TraceReader<R: Read> {
    input: BufReader<R>,
    format: TraceFormat,
    header: TraceHeader,
    /// 1-based line number (JSONL) or frame index (binary) for error messages.
    record: u64,
    /// Set after EOF or the first error; the iterator is fused.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Auto-detects the format and decodes the header.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the stream is empty, starts with neither
    /// format, or its header is malformed.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let mut input = BufReader::new(input);
        // Peek one byte to auto-detect the format (an empty fill_buf is EOF).
        let first = *input.fill_buf()?.first().ok_or(TraceError::UnknownFormat)?;
        match first {
            b'{' => {
                let line = read_capped_line(&mut input, "line 1")?
                    .ok_or_else(|| TraceError::malformed("line 1", "missing header line"))?;
                let header = jsonl::decode_header(line.trim_end(), "line 1")?;
                Ok(TraceReader {
                    input,
                    format: TraceFormat::Jsonl,
                    header,
                    record: 1,
                    done: false,
                })
            }
            _ if first == binary::MAGIC[0] => {
                binary::read_preamble(&mut input)?;
                let payload = binary::read_frame(&mut input, "frame 0")?
                    .ok_or_else(|| TraceError::malformed("frame 0", "missing header frame"))?;
                let header = binary::decode_header(&payload, "frame 0")?;
                Ok(TraceReader {
                    input,
                    format: TraceFormat::Binary,
                    header,
                    record: 0,
                    done: false,
                })
            }
            _ => Err(TraceError::UnknownFormat),
        }
    }

    /// The trace's metadata header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The detected on-disk format.
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Yields the next event together with its per-object tag (`None` for
    /// untagged events); `None` at end-of-stream.
    ///
    /// This is the tag-preserving form of [`Iterator::next`] and shares its
    /// fusing behaviour: after the first error, both yield `None` forever.
    /// Multi-object consumers (`linrv check`'s per-object projection, tag-
    /// preserving `linrv convert`) iterate this; single-object consumers use
    /// the plain [`Iterator`], which drops the tags.
    #[allow(clippy::type_complexity)]
    pub fn next_tagged(&mut self) -> Option<Result<(Option<u64>, Event), TraceError>> {
        if self.done {
            return None;
        }
        let next = match self.format {
            TraceFormat::Jsonl => self.next_jsonl(),
            TraceFormat::Binary => self.next_binary(),
        };
        match &next {
            None | Some(Err(_)) => self.done = true,
            Some(Ok(_)) => {}
        }
        next
    }

    fn next_jsonl(&mut self) -> Option<Result<(Option<u64>, Event), TraceError>> {
        loop {
            let location = format!("line {}", self.record + 1);
            let line = match read_capped_line(&mut self.input, &location) {
                Ok(Some(line)) => line,
                Ok(None) => return None,
                Err(err) => return Some(Err(err)),
            };
            self.record += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue; // blank lines between events are tolerated
            }
            return Some(jsonl::decode_event(trimmed, &location));
        }
    }

    fn next_binary(&mut self) -> Option<Result<(Option<u64>, Event), TraceError>> {
        self.record += 1;
        let location = format!("frame {}", self.record);
        match binary::read_frame(&mut self.input, &location) {
            Ok(None) => None,
            Ok(Some(payload)) => Some(binary::decode_event(&payload, &location)),
            Err(err) => Some(Err(err)),
        }
    }
}

/// Upper bound on a single JSONL line, mirroring the binary frame cap: a
/// corrupted (newline-less) stream must surface as an error, not as an
/// unbounded allocation.
const MAX_LINE_LEN: u64 = 1 << 24; // 16 MiB

/// Reads one line of at most [`MAX_LINE_LEN`] bytes; `Ok(None)` at EOF.
fn read_capped_line(
    input: &mut impl BufRead,
    location: &str,
) -> Result<Option<String>, TraceError> {
    let mut line = String::new();
    let read = input.take(MAX_LINE_LEN + 1).read_line(&mut line)?;
    if read == 0 {
        return Ok(None);
    }
    if line.len() as u64 > MAX_LINE_LEN {
        return Err(TraceError::malformed(
            location,
            format!("line exceeds the {MAX_LINE_LEN}-byte cap"),
        ));
    }
    Ok(Some(line))
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Event, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_tagged()
            .map(|item| item.map(|(_object, event)| event))
    }
}

/// Reads a whole trace into memory: the header and the [`History`].
///
/// Convenience for tests and small traces; large traces should iterate a
/// [`TraceReader`] instead.
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered.
pub fn read_history<R: Read>(input: R) -> Result<(TraceHeader, History), TraceError> {
    let mut reader = TraceReader::new(input)?;
    let mut history = History::new();
    for event in &mut reader {
        history.push(event?);
    }
    Ok((reader.header().clone(), history))
}

/// Reads a whole trace into memory keeping object tags: the header and every
/// event paired with its object id (`None` for untagged events).
///
/// Convenience for tests and small multi-object traces; large traces should
/// iterate [`TraceReader::next_tagged`] instead.
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered.
#[allow(clippy::type_complexity)]
pub fn read_tagged_history<R: Read>(
    input: R,
) -> Result<(TraceHeader, Vec<(Option<u64>, Event)>), TraceError> {
    let mut reader = TraceReader::new(input)?;
    let mut events = Vec::new();
    while let Some(item) = reader.next_tagged() {
        events.push(item?);
    }
    Ok((reader.header().clone(), events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_history;
    use linrv_history::{OpId, OpValue, Operation, ProcessId};
    use linrv_spec::ObjectKind;

    fn sample_history() -> History {
        History::from_events(vec![
            Event::invocation(
                ProcessId::new(0),
                OpId::new(0),
                Operation::new("Push", OpValue::Int(3)),
            ),
            Event::invocation(ProcessId::new(1), OpId::new(1), Operation::nullary("Pop")),
            Event::response(ProcessId::new(1), OpId::new(1), OpValue::Int(3)),
            Event::response(ProcessId::new(0), OpId::new(0), OpValue::Bool(true)),
        ])
    }

    #[test]
    fn auto_detects_both_formats() {
        let header = TraceHeader::new(ObjectKind::Stack);
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut bytes = Vec::new();
            write_history(&mut bytes, format, &header, &sample_history()).unwrap();
            let reader = TraceReader::new(bytes.as_slice()).unwrap();
            assert_eq!(reader.format(), format);
            assert_eq!(reader.header().kind, ObjectKind::Stack);
            let events: Result<Vec<_>, _> = reader.collect();
            assert_eq!(events.unwrap().len(), 4);
        }
    }

    #[test]
    fn tagged_events_round_trip_in_both_formats() {
        use crate::writer::TraceWriter;
        let header = TraceHeader::new(ObjectKind::Stack).with_objects(2);
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            let mut writer = TraceWriter::new(Vec::new(), format, &header).unwrap();
            for (i, event) in sample_history().events().iter().enumerate() {
                writer.tagged_event(i as u64 % 2, event).unwrap();
            }
            let bytes = writer.finish().unwrap();
            let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
            assert_eq!(reader.header().objects, Some(2));
            let mut tagged = Vec::new();
            while let Some(item) = reader.next_tagged() {
                tagged.push(item.unwrap());
            }
            let tags: Vec<_> = tagged.iter().map(|(tag, _)| *tag).collect();
            assert_eq!(tags, vec![Some(0), Some(1), Some(0), Some(1)]);
            let events: Vec<_> = tagged.into_iter().map(|(_, event)| event).collect();
            assert_eq!(History::from_events(events), sample_history());
            // The plain iterator reads the same trace, just without the tags.
            let (decoded_header, history) = read_history(bytes.as_slice()).unwrap();
            assert_eq!(decoded_header, header);
            assert_eq!(history, sample_history());
        }
    }

    #[test]
    fn unknown_streams_are_rejected() {
        assert!(matches!(
            TraceReader::new(b"".as_slice()),
            Err(TraceError::UnknownFormat)
        ));
        assert!(matches!(
            TraceReader::new(b"#comment".as_slice()),
            Err(TraceError::UnknownFormat)
        ));
        assert!(matches!(
            TraceReader::new(b"LOOKSWRONG".as_slice()),
            Err(TraceError::UnknownFormat)
        ));
    }

    #[test]
    fn jsonl_reader_reports_the_failing_line_and_fuses() {
        let header = TraceHeader::new(ObjectKind::Queue);
        let mut bytes = Vec::new();
        write_history(&mut bytes, TraceFormat::Jsonl, &header, &sample_history()).unwrap();
        bytes.extend_from_slice(b"{\"e\":\"inv\"}\n");
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        let mut ok = 0;
        let mut errs = Vec::new();
        for item in &mut reader {
            match item {
                Ok(_) => ok += 1,
                Err(err) => errs.push(err),
            }
        }
        assert_eq!(ok, 4);
        assert_eq!(errs.len(), 1, "the iterator must fuse after one error");
        assert!(errs[0].to_string().contains("line 6"));
        assert!(reader.next().is_none());
    }

    #[test]
    fn blank_jsonl_lines_are_tolerated() {
        let header = TraceHeader::new(ObjectKind::Queue);
        let mut bytes = Vec::new();
        write_history(&mut bytes, TraceFormat::Jsonl, &header, &sample_history()).unwrap();
        let patched = String::from_utf8(bytes).unwrap().replace('\n', "\n\n");
        let (_, history) = read_history(patched.as_bytes()).unwrap();
        assert_eq!(history, sample_history());
    }

    #[test]
    fn overlong_jsonl_lines_error_instead_of_buffering_unboundedly() {
        let header = TraceHeader::new(ObjectKind::Queue);
        let mut bytes = Vec::new();
        write_history(&mut bytes, TraceFormat::Jsonl, &header, &sample_history()).unwrap();
        // A corrupted, newline-less tail longer than the line cap.
        bytes.extend_from_slice(b"{\"e\":\"res\",\"p\":0,\"id\":9,\"val\":\"");
        bytes.extend_from_slice(&vec![b'x'; (super::MAX_LINE_LEN + 10) as usize]);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let items: Vec<_> = reader.collect();
        assert_eq!(items.iter().filter(|i| i.is_ok()).count(), 4);
        let err = items.last().unwrap().as_ref().unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn truncated_binary_trace_surfaces_one_error() {
        let header = TraceHeader::new(ObjectKind::Queue);
        let mut bytes = Vec::new();
        write_history(&mut bytes, TraceFormat::Binary, &header, &sample_history()).unwrap();
        bytes.truncate(bytes.len() - 3);
        let reader = TraceReader::new(bytes.as_slice()).unwrap();
        let items: Vec<_> = reader.collect();
        assert!(items.last().unwrap().is_err());
        assert_eq!(items.iter().filter(|i| i.is_err()).count(), 1);
    }
}
