//! The JSONL encoding: one JSON object per line (see `FORMAT.md`).
//!
//! Line 1 is the header; every following non-empty line is one event. Response
//! values use bare JSON where it is unambiguous (`null` = unit, booleans,
//! integers, strings, arrays = lists) and a `{"t": …}` tagged object for the
//! distinguished `empty`/`ERROR` responses and pairs.

use crate::error::TraceError;
use crate::header::{Provenance, TraceHeader};
use crate::json::{self, write_escaped, Json};
use crate::FORMAT_VERSION;
use linrv_history::{Event, EventKind, OpId, OpValue, Operation, ProcessId};
use std::fmt::Write as _;

/// Encodes the header as its JSONL line (without the trailing newline).
pub(crate) fn encode_header(header: &TraceHeader) -> String {
    let mut out = String::from("{\"format\":\"linrv-trace\",\"version\":");
    let _ = write!(out, "{FORMAT_VERSION}");
    let _ = write!(out, ",\"kind\":\"{}\"", header.kind);
    if let Some(seed) = header.seed {
        let _ = write!(out, ",\"seed\":{seed}");
    }
    if let Some(processes) = header.processes {
        let _ = write!(out, ",\"processes\":{processes}");
    }
    if let Some(ops) = header.ops_per_process {
        let _ = write!(out, ",\"ops_per_process\":{ops}");
    }
    if let Some(name) = &header.implementation {
        out.push_str(",\"impl\":");
        write_escaped(&mut out, name);
    }
    if let Some(objects) = header.objects {
        let _ = write!(out, ",\"objects\":{objects}");
    }
    if let Some(scenario) = &header.scenario {
        out.push_str(",\"scenario\":");
        write_escaped(&mut out, scenario);
    }
    let _ = write!(out, ",\"provenance\":\"{}\"}}", header.provenance);
    out
}

/// Decodes the header from its JSONL line. `location` names the line for errors.
pub(crate) fn decode_header(line: &str, location: &str) -> Result<TraceHeader, TraceError> {
    let value = json::parse(line, location)?;
    let format = value.get("format").and_then(Json::as_str);
    if format != Some("linrv-trace") {
        return Err(TraceError::malformed(
            location,
            "missing or wrong \"format\" field (expected \"linrv-trace\")",
        ));
    }
    let version = value
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| TraceError::malformed(location, "missing \"version\" field"))?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(TraceError::UnsupportedVersion(
            version.min(u64::from(u16::MAX)) as u16,
        ));
    }
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| TraceError::malformed(location, "missing \"kind\" field"))?
        .parse()
        .map_err(|err: String| TraceError::malformed(location, err))?;
    let mut header = TraceHeader::new(kind);
    if let Some(seed) = value.get("seed") {
        header.seed = Some(
            seed.as_u64()
                .ok_or_else(|| TraceError::malformed(location, "\"seed\" must be a u64"))?,
        );
    }
    if let Some(processes) = value.get("processes") {
        header.processes = Some(decode_u32(processes, "processes", location)?);
    }
    if let Some(ops) = value.get("ops_per_process") {
        header.ops_per_process = Some(decode_u32(ops, "ops_per_process", location)?);
    }
    if let Some(name) = value.get("impl") {
        header.implementation = Some(
            name.as_str()
                .ok_or_else(|| TraceError::malformed(location, "\"impl\" must be a string"))?
                .to_owned(),
        );
    }
    if let Some(objects) = value.get("objects") {
        header.objects = Some(
            objects
                .as_u64()
                .ok_or_else(|| TraceError::malformed(location, "\"objects\" must be a u64"))?,
        );
    }
    if let Some(scenario) = value.get("scenario") {
        header.scenario = Some(
            scenario
                .as_str()
                .ok_or_else(|| TraceError::malformed(location, "\"scenario\" must be a string"))?
                .to_owned(),
        );
    }
    if let Some(provenance) = value.get("provenance") {
        header.provenance = provenance
            .as_str()
            .ok_or_else(|| TraceError::malformed(location, "\"provenance\" must be a string"))?
            .parse::<Provenance>()
            .map_err(|err| TraceError::malformed(location, err))?;
    }
    Ok(header)
}

fn decode_u32(value: &Json, field: &str, location: &str) -> Result<u32, TraceError> {
    value
        .as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| TraceError::malformed(location, format!("\"{field}\" must be a u32")))
}

/// Appends one event's JSONL line (without the trailing newline) to `out`.
///
/// Appending into a caller-owned buffer keeps the per-event hot path of
/// [`TraceWriter`](crate::TraceWriter) allocation-free in steady state.
///
/// When `object` is set, the per-object tag is emitted as the `"obj"` field.
/// Readers that predate tagging ignore unknown fields, so tagged lines still
/// decode (minus the tag) under the same format version.
pub(crate) fn encode_tagged_event(out: &mut String, object: Option<u64>, event: &Event) {
    match &event.kind {
        EventKind::Invocation { op } => {
            let _ = write!(
                out,
                "{{\"e\":\"inv\",\"p\":{},\"id\":{}",
                event.process.index(),
                event.op_id.raw()
            );
            if let Some(object) = object {
                let _ = write!(out, ",\"obj\":{object}");
            }
            out.push_str(",\"op\":");
            write_escaped(out, &op.kind);
            out.push_str(",\"arg\":");
            encode_value(out, &op.arg);
        }
        EventKind::Response { value } => {
            let _ = write!(
                out,
                "{{\"e\":\"res\",\"p\":{},\"id\":{}",
                event.process.index(),
                event.op_id.raw()
            );
            if let Some(object) = object {
                let _ = write!(out, ",\"obj\":{object}");
            }
            out.push_str(",\"val\":");
            encode_value(out, value);
        }
    }
    out.push('}');
}

/// Decodes one event (and its optional `"obj"` tag) from its JSONL line.
/// `location` names the line for errors.
pub(crate) fn decode_event(line: &str, location: &str) -> Result<(Option<u64>, Event), TraceError> {
    let value = json::parse(line, location)?;
    let object = match value.get("obj") {
        None => None,
        Some(tag) => Some(
            tag.as_u64()
                .ok_or_else(|| TraceError::malformed(location, "\"obj\" must be a u64"))?,
        ),
    };
    let process = value
        .get("p")
        .and_then(Json::as_u64)
        .and_then(|p| u32::try_from(p).ok())
        .ok_or_else(|| TraceError::malformed(location, "missing or invalid \"p\" field"))?;
    let op_id = value
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| TraceError::malformed(location, "missing or invalid \"id\" field"))?;
    match value.get("e").and_then(Json::as_str) {
        Some("inv") => {
            let kind = value
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| TraceError::malformed(location, "invocation without \"op\""))?;
            let arg = value
                .get("arg")
                .ok_or_else(|| TraceError::malformed(location, "invocation without \"arg\""))?;
            Ok((
                object,
                Event::invocation(
                    ProcessId::new(process),
                    OpId::new(op_id),
                    Operation::new(kind, decode_value(arg, location)?),
                ),
            ))
        }
        Some("res") => {
            let val = value
                .get("val")
                .ok_or_else(|| TraceError::malformed(location, "response without \"val\""))?;
            Ok((
                object,
                Event::response(
                    ProcessId::new(process),
                    OpId::new(op_id),
                    decode_value(val, location)?,
                ),
            ))
        }
        _ => Err(TraceError::malformed(
            location,
            "missing \"e\" field (expected \"inv\" or \"res\")",
        )),
    }
}

/// Appends the JSON encoding of an [`OpValue`] to `out`.
///
/// Bare forms: `null` (unit), booleans, integers, strings and arrays (lists).
/// Tagged objects carry the rest: `{"t":"empty"}`, `{"t":"error"}` and
/// `{"t":"pair","a":…,"b":…}`.
fn encode_value(out: &mut String, value: &OpValue) {
    match value {
        OpValue::Unit => out.push_str("null"),
        OpValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        OpValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        OpValue::Str(s) => write_escaped(out, s),
        OpValue::Empty => out.push_str("{\"t\":\"empty\"}"),
        OpValue::Error => out.push_str("{\"t\":\"error\"}"),
        OpValue::Pair(a, b) => {
            out.push_str("{\"t\":\"pair\",\"a\":");
            encode_value(out, a);
            out.push_str(",\"b\":");
            encode_value(out, b);
            out.push('}');
        }
        OpValue::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_value(out, item);
            }
            out.push(']');
        }
    }
}

fn decode_value(value: &Json, location: &str) -> Result<OpValue, TraceError> {
    match value {
        Json::Null => Ok(OpValue::Unit),
        Json::Bool(b) => Ok(OpValue::Bool(*b)),
        Json::Int(i) => Ok(OpValue::Int(*i)),
        Json::UInt(_) => Err(TraceError::malformed(
            location,
            "integer value does not fit i64",
        )),
        Json::Str(s) => Ok(OpValue::Str(s.clone())),
        Json::Array(items) => items
            .iter()
            .map(|item| decode_value(item, location))
            .collect::<Result<Vec<_>, _>>()
            .map(OpValue::List),
        Json::Object(_) => match value.get("t").and_then(Json::as_str) {
            Some("empty") => Ok(OpValue::Empty),
            Some("error") => Ok(OpValue::Error),
            Some("pair") => {
                let a = value
                    .get("a")
                    .ok_or_else(|| TraceError::malformed(location, "pair without \"a\""))?;
                let b = value
                    .get("b")
                    .ok_or_else(|| TraceError::malformed(location, "pair without \"b\""))?;
                Ok(OpValue::pair(
                    decode_value(a, location)?,
                    decode_value(b, location)?,
                ))
            }
            _ => Err(TraceError::malformed(
                location,
                "tagged value with unknown or missing \"t\"",
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ObjectKind;

    fn round_trip_event(event: Event) {
        let mut line = String::new();
        encode_tagged_event(&mut line, None, &event);
        assert_eq!(decode_event(&line, "test").unwrap(), (None, event.clone()));
        // The tagged form round-trips the tag alongside the same event.
        line.clear();
        encode_tagged_event(&mut line, Some(u64::MAX), &event);
        assert_eq!(
            decode_event(&line, "test").unwrap(),
            (Some(u64::MAX), event)
        );
    }

    #[test]
    fn header_round_trips_with_and_without_optional_fields() {
        let full = TraceHeader::new(ObjectKind::PriorityQueue)
            .with_seed(u64::MAX)
            .with_processes(4)
            .with_ops_per_process(100)
            .with_implementation("spec \"quoted\" name")
            .with_provenance(Provenance::Faulty)
            .with_objects(10_000)
            .with_scenario("pq/hot-key \"skew\"/stall");
        let line = encode_header(&full);
        assert_eq!(decode_header(&line, "test").unwrap(), full);

        let minimal = TraceHeader::new(ObjectKind::Consensus);
        let line = encode_header(&minimal);
        assert_eq!(decode_header(&line, "test").unwrap(), minimal);
    }

    #[test]
    fn events_round_trip_for_every_value_shape() {
        let p = ProcessId::new(3);
        round_trip_event(Event::invocation(
            p,
            OpId::new(0),
            Operation::new("Enqueue", OpValue::Int(-5)),
        ));
        round_trip_event(Event::invocation(
            p,
            OpId::new(1),
            Operation::nullary("Dequeue"),
        ));
        round_trip_event(Event::response(p, OpId::new(2), OpValue::Bool(true)));
        round_trip_event(Event::response(p, OpId::new(3), OpValue::Empty));
        round_trip_event(Event::response(p, OpId::new(4), OpValue::Error));
        round_trip_event(Event::response(
            p,
            OpId::new(5),
            OpValue::Str("x\"y".into()),
        ));
        round_trip_event(Event::response(
            p,
            OpId::new(6),
            OpValue::pair(
                OpValue::List(vec![OpValue::Int(1), OpValue::Unit]),
                OpValue::Empty,
            ),
        ));
    }

    #[test]
    fn header_rejections_name_the_field() {
        let cases = [
            ("{}", "format"),
            ("{\"format\":\"linrv-trace\"}", "version"),
            ("{\"format\":\"linrv-trace\",\"version\":1}", "kind"),
            (
                "{\"format\":\"linrv-trace\",\"version\":1,\"kind\":\"blob\"}",
                "blob",
            ),
            (
                "{\"format\":\"linrv-trace\",\"version\":1,\"kind\":\"queue\",\"seed\":-1}",
                "seed",
            ),
        ];
        for (line, needle) in cases {
            let err = decode_header(line, "test").unwrap_err().to_string();
            assert!(
                err.contains(needle),
                "{line}: {err} should mention {needle}"
            );
        }
        assert!(matches!(
            decode_header(
                "{\"format\":\"linrv-trace\",\"version\":99,\"kind\":\"queue\"}",
                "t"
            ),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn event_rejections_name_the_field() {
        for line in [
            "{}",
            "{\"e\":\"inv\",\"p\":0,\"id\":1}",
            "{\"e\":\"res\",\"p\":0,\"id\":1}",
            "{\"e\":\"zap\",\"p\":0,\"id\":1}",
            "{\"e\":\"res\",\"id\":1,\"val\":null}",
            "{\"e\":\"res\",\"p\":0,\"id\":1,\"val\":{\"t\":\"wat\"}}",
            "{\"e\":\"res\",\"p\":0,\"id\":1,\"val\":18446744073709551615}",
            "{\"e\":\"res\",\"p\":0,\"id\":1,\"obj\":-1,\"val\":null}",
        ] {
            assert!(decode_event(line, "test").is_err(), "{line} should fail");
        }
    }
}
