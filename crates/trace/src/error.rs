//! Errors produced while encoding or decoding traces.

use std::fmt;
use std::io;

/// Why a trace could not be read or written.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The byte stream does not conform to the trace format.
    Malformed {
        /// Where the problem was found (a line number for JSONL, a frame index
        /// for binary, or a field name).
        location: String,
        /// What was wrong.
        message: String,
    },
    /// The trace was written by a newer (or unknown) format version.
    UnsupportedVersion(u16),
    /// The stream does not start with either a JSONL header line or the binary
    /// magic bytes.
    UnknownFormat,
    /// The writer was already consumed (see
    /// [`SharedTraceWriter::finish`](crate::SharedTraceWriter::finish)).
    AlreadyFinished,
}

impl TraceError {
    /// Convenience constructor for [`TraceError::Malformed`].
    pub fn malformed(location: impl Into<String>, message: impl Into<String>) -> Self {
        TraceError::Malformed {
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(err) => write!(f, "trace i/o error: {err}"),
            TraceError::Malformed { location, message } => {
                write!(f, "malformed trace at {location}: {message}")
            }
            TraceError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported trace format version {version} (this build reads \
                     version {})",
                    crate::FORMAT_VERSION
                )
            }
            TraceError::UnknownFormat => {
                write!(
                    f,
                    "unrecognised trace: expected a JSONL header line or the \
                     binary magic bytes"
                )
            }
            TraceError::AlreadyFinished => {
                write!(f, "the shared trace writer was already finished")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(err: io::Error) -> Self {
        TraceError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let err = TraceError::malformed("line 3", "missing \"e\" field");
        assert!(err.to_string().contains("line 3"));
        assert!(TraceError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(TraceError::UnknownFormat.to_string().contains("magic"));
        let io = TraceError::from(io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }
}
