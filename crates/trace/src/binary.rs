//! The length-framed binary encoding (see `FORMAT.md`).
//!
//! Layout: the 8-byte magic `LINRVTRC`, a little-endian `u16` version, then a
//! sequence of frames — first the header frame, then one frame per event. Every
//! frame is a little-endian `u32` payload length followed by that many payload
//! bytes; the trace ends at a clean end-of-stream between frames.

use crate::error::TraceError;
use crate::header::{Provenance, TraceHeader};
use crate::FORMAT_VERSION;
use linrv_history::{Event, EventKind, OpId, OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::io::Read;

/// The magic bytes opening every binary trace.
pub(crate) const MAGIC: [u8; 8] = *b"LINRVTRC";

/// Upper bound on a single frame's payload, rejecting corrupted lengths before
/// they turn into multi-gigabyte allocations.
const MAX_FRAME_LEN: u32 = 1 << 24; // 16 MiB

// --- value codes ------------------------------------------------------------

const VAL_UNIT: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_EMPTY: u8 = 4;
const VAL_ERROR: u8 = 5;
const VAL_PAIR: u8 = 6;
const VAL_LIST: u8 = 7;

const EVENT_INV: u8 = 0;
const EVENT_RES: u8 = 1;
// Tagged variants carry a u64 object id right after the tag byte; the rest of
// the payload is identical to the untagged form (see `FORMAT.md`).
const EVENT_INV_TAGGED: u8 = 2;
const EVENT_RES_TAGGED: u8 = 3;

// --- encoding ---------------------------------------------------------------

/// Appends the magic and version preamble.
pub(crate) fn encode_preamble(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
}

/// Appends the header frame.
///
/// # Errors
///
/// Returns [`TraceError`] when the encoded frame would exceed the reader's
/// frame cap (a pathologically long implementation name).
pub(crate) fn encode_header(out: &mut Vec<u8>, header: &TraceHeader) -> Result<(), TraceError> {
    let mut payload = Vec::new();
    payload.push(kind_code(header.kind));
    payload.push(match header.provenance {
        Provenance::Unknown => 0,
        Provenance::Correct => 1,
        Provenance::Faulty => 2,
    });
    let mut flags = 0u8;
    if header.seed.is_some() {
        flags |= 1;
    }
    if header.processes.is_some() {
        flags |= 2;
    }
    if header.ops_per_process.is_some() {
        flags |= 4;
    }
    if header.implementation.is_some() {
        flags |= 8;
    }
    if header.objects.is_some() {
        flags |= 16;
    }
    if header.scenario.is_some() {
        flags |= 32;
    }
    payload.push(flags);
    if let Some(seed) = header.seed {
        payload.extend_from_slice(&seed.to_le_bytes());
    }
    if let Some(processes) = header.processes {
        payload.extend_from_slice(&processes.to_le_bytes());
    }
    if let Some(ops) = header.ops_per_process {
        payload.extend_from_slice(&ops.to_le_bytes());
    }
    if let Some(name) = &header.implementation {
        encode_str(&mut payload, name);
    }
    if let Some(objects) = header.objects {
        payload.extend_from_slice(&objects.to_le_bytes());
    }
    if let Some(scenario) = &header.scenario {
        encode_str(&mut payload, scenario);
    }
    push_frame(out, &payload, "header")
}

/// Appends one event frame, optionally tagged with its object id.
///
/// # Errors
///
/// Returns [`TraceError`] when the encoded frame would exceed the reader's
/// frame cap (an `OpValue` string or list over 16 MiB) — writing it anyway
/// would produce a trace that every reader rejects at this frame.
pub(crate) fn encode_tagged_event(
    out: &mut Vec<u8>,
    object: Option<u64>,
    event: &Event,
) -> Result<(), TraceError> {
    let mut payload = Vec::new();
    match &event.kind {
        EventKind::Invocation { op } => {
            payload.push(if object.is_some() {
                EVENT_INV_TAGGED
            } else {
                EVENT_INV
            });
            if let Some(object) = object {
                payload.extend_from_slice(&object.to_le_bytes());
            }
            payload.extend_from_slice(&(event.process.index() as u32).to_le_bytes());
            payload.extend_from_slice(&event.op_id.raw().to_le_bytes());
            encode_str(&mut payload, &op.kind);
            encode_value(&mut payload, &op.arg);
        }
        EventKind::Response { value } => {
            payload.push(if object.is_some() {
                EVENT_RES_TAGGED
            } else {
                EVENT_RES
            });
            if let Some(object) = object {
                payload.extend_from_slice(&object.to_le_bytes());
            }
            payload.extend_from_slice(&(event.process.index() as u32).to_le_bytes());
            payload.extend_from_slice(&event.op_id.raw().to_le_bytes());
            encode_value(&mut payload, value);
        }
    }
    push_frame(out, &payload, "event")
}

fn push_frame(out: &mut Vec<u8>, payload: &[u8], what: &str) -> Result<(), TraceError> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(TraceError::malformed(
            what,
            format!(
                "encoded {what} frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap \
                 (readers would reject it)",
                payload.len()
            ),
        ));
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("string longer than u32::MAX bytes");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_value(out: &mut Vec<u8>, value: &OpValue) {
    match value {
        OpValue::Unit => out.push(VAL_UNIT),
        OpValue::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(*b));
        }
        OpValue::Int(i) => {
            out.push(VAL_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        OpValue::Str(s) => {
            out.push(VAL_STR);
            encode_str(out, s);
        }
        OpValue::Empty => out.push(VAL_EMPTY),
        OpValue::Error => out.push(VAL_ERROR),
        OpValue::Pair(a, b) => {
            out.push(VAL_PAIR);
            encode_value(out, a);
            encode_value(out, b);
        }
        OpValue::List(items) => {
            out.push(VAL_LIST);
            let len = u32::try_from(items.len()).expect("list longer than u32::MAX");
            out.extend_from_slice(&len.to_le_bytes());
            for item in items {
                encode_value(out, item);
            }
        }
    }
}

fn kind_code(kind: ObjectKind) -> u8 {
    match kind {
        ObjectKind::Queue => 0,
        ObjectKind::Stack => 1,
        ObjectKind::Set => 2,
        ObjectKind::PriorityQueue => 3,
        ObjectKind::Counter => 4,
        ObjectKind::Register => 5,
        ObjectKind::Consensus => 6,
    }
}

fn kind_from_code(code: u8, location: &str) -> Result<ObjectKind, TraceError> {
    Ok(match code {
        0 => ObjectKind::Queue,
        1 => ObjectKind::Stack,
        2 => ObjectKind::Set,
        3 => ObjectKind::PriorityQueue,
        4 => ObjectKind::Counter,
        5 => ObjectKind::Register,
        6 => ObjectKind::Consensus,
        other => {
            return Err(TraceError::malformed(
                location,
                format!("unknown object-kind code {other}"),
            ))
        }
    })
}

// --- decoding ---------------------------------------------------------------

/// Reads and checks the magic + version preamble (the caller has typically
/// already peeked at the magic to auto-detect the format).
pub(crate) fn read_preamble(input: &mut impl Read) -> Result<(), TraceError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic).map_err(unexpected_eof)?;
    if magic != MAGIC {
        return Err(TraceError::UnknownFormat);
    }
    let mut version = [0u8; 2];
    input.read_exact(&mut version).map_err(unexpected_eof)?;
    let version = u16::from_le_bytes(version);
    if version != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    Ok(())
}

fn unexpected_eof(err: std::io::Error) -> TraceError {
    if err.kind() == std::io::ErrorKind::UnexpectedEof {
        TraceError::malformed("preamble", "trace truncated before the header")
    } else {
        TraceError::Io(err)
    }
}

/// Reads the next frame payload; `Ok(None)` at a clean end-of-stream.
pub(crate) fn read_frame(
    input: &mut impl Read,
    location: &str,
) -> Result<Option<Vec<u8>>, TraceError> {
    let mut len = [0u8; 4];
    // A clean EOF is only allowed *between* frames: read the length manually so
    // zero-bytes-read can be told apart from a torn length.
    let mut filled = 0;
    while filled < len.len() {
        match input.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(TraceError::malformed(location, "trace truncated mid-frame"));
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => return Err(TraceError::Io(err)),
        }
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(TraceError::malformed(
            location,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    input.read_exact(&mut payload).map_err(|err| {
        if err.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::malformed(location, "trace truncated mid-frame")
        } else {
            TraceError::Io(err)
        }
    })?;
    Ok(Some(payload))
}

/// Decodes the header frame payload.
pub(crate) fn decode_header(payload: &[u8], location: &str) -> Result<TraceHeader, TraceError> {
    let mut cursor = Cursor::new(payload, location);
    let kind = kind_from_code(cursor.u8()?, location)?;
    let provenance = match cursor.u8()? {
        0 => Provenance::Unknown,
        1 => Provenance::Correct,
        2 => Provenance::Faulty,
        other => {
            return Err(TraceError::malformed(
                location,
                format!("unknown provenance code {other}"),
            ))
        }
    };
    let flags = cursor.u8()?;
    let mut header = TraceHeader::new(kind).with_provenance(provenance);
    if flags & 1 != 0 {
        header.seed = Some(cursor.u64()?);
    }
    if flags & 2 != 0 {
        header.processes = Some(cursor.u32()?);
    }
    if flags & 4 != 0 {
        header.ops_per_process = Some(cursor.u32()?);
    }
    if flags & 8 != 0 {
        header.implementation = Some(cursor.str()?);
    }
    if flags & 16 != 0 {
        header.objects = Some(cursor.u64()?);
    }
    if flags & 32 != 0 {
        header.scenario = Some(cursor.str()?);
    }
    cursor.finish()?;
    Ok(header)
}

/// Decodes one event frame payload, together with its object tag when the
/// frame is a tagged variant.
pub(crate) fn decode_event(
    payload: &[u8],
    location: &str,
) -> Result<(Option<u64>, Event), TraceError> {
    let mut cursor = Cursor::new(payload, location);
    let tag = cursor.u8()?;
    let object = match tag {
        EVENT_INV_TAGGED | EVENT_RES_TAGGED => Some(cursor.u64()?),
        _ => None,
    };
    let process = ProcessId::new(cursor.u32()?);
    let op_id = OpId::new(cursor.u64()?);
    let event = match tag {
        EVENT_INV | EVENT_INV_TAGGED => {
            let kind = cursor.str()?;
            let arg = cursor.value(0)?;
            Event::invocation(process, op_id, Operation::new(kind, arg))
        }
        EVENT_RES | EVENT_RES_TAGGED => {
            let value = cursor.value(0)?;
            Event::response(process, op_id, value)
        }
        other => {
            return Err(TraceError::malformed(
                location,
                format!("unknown event tag {other}"),
            ))
        }
    };
    cursor.finish()?;
    Ok((object, event))
}

/// Bounds-checked little-endian reader over one frame payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    location: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], location: &'a str) -> Self {
        Cursor {
            bytes,
            pos: 0,
            location,
        }
    }

    fn error(&self, message: impl Into<String>) -> TraceError {
        TraceError::malformed(self.location, message.into())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| self.error("frame payload truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, TraceError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String, TraceError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.error("string is not valid UTF-8"))
    }

    fn value(&mut self, depth: usize) -> Result<OpValue, TraceError> {
        if depth > 64 {
            return Err(self.error("value nests too deeply"));
        }
        match self.u8()? {
            VAL_UNIT => Ok(OpValue::Unit),
            VAL_BOOL => match self.u8()? {
                0 => Ok(OpValue::Bool(false)),
                1 => Ok(OpValue::Bool(true)),
                other => Err(self.error(format!("invalid boolean byte {other}"))),
            },
            VAL_INT => Ok(OpValue::Int(self.i64()?)),
            VAL_STR => Ok(OpValue::Str(self.str()?)),
            VAL_EMPTY => Ok(OpValue::Empty),
            VAL_ERROR => Ok(OpValue::Error),
            VAL_PAIR => {
                let a = self.value(depth + 1)?;
                let b = self.value(depth + 1)?;
                Ok(OpValue::pair(a, b))
            }
            VAL_LIST => {
                let len = self.u32()? as usize;
                // Cap the pre-allocation: a corrupted length must not OOM.
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(self.value(depth + 1)?);
                }
                Ok(OpValue::List(items))
            }
            other => Err(self.error(format!("unknown value tag {other}"))),
        }
    }

    fn finish(self) -> Result<(), TraceError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing bytes at the end of a frame"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        for header in [
            TraceHeader::new(ObjectKind::Queue),
            TraceHeader::new(ObjectKind::Register)
                .with_seed(u64::MAX)
                .with_processes(7)
                .with_ops_per_process(1000)
                .with_implementation("stale-register")
                .with_provenance(Provenance::Faulty)
                .with_objects(1 << 20)
                .with_scenario("register/bursty/crash0"),
        ] {
            let mut bytes = Vec::new();
            encode_header(&mut bytes, &header).unwrap();
            let payload = read_frame(&mut bytes.as_slice(), "t").unwrap().unwrap();
            assert_eq!(decode_header(&payload, "t").unwrap(), header);
        }
    }

    #[test]
    fn events_round_trip_for_every_value_shape() {
        let events = [
            Event::invocation(
                ProcessId::new(0),
                OpId::new(9),
                Operation::new("Enqueue", OpValue::Int(i64::MIN)),
            ),
            Event::response(ProcessId::new(1), OpId::new(10), OpValue::Unit),
            Event::response(ProcessId::new(2), OpId::new(11), OpValue::Bool(false)),
            Event::response(ProcessId::new(3), OpId::new(12), OpValue::Str("π".into())),
            Event::response(ProcessId::new(4), OpId::new(13), OpValue::Empty),
            Event::response(ProcessId::new(5), OpId::new(14), OpValue::Error),
            Event::response(
                ProcessId::new(6),
                OpId::new(15),
                OpValue::pair(OpValue::List(vec![OpValue::Int(1)]), OpValue::Unit),
            ),
        ];
        for event in events {
            let mut bytes = Vec::new();
            encode_tagged_event(&mut bytes, None, &event).unwrap();
            let payload = read_frame(&mut bytes.as_slice(), "t").unwrap().unwrap();
            assert_eq!(decode_event(&payload, "t").unwrap(), (None, event.clone()));
            // Tagged frames round-trip the object id alongside the same event.
            bytes.clear();
            encode_tagged_event(&mut bytes, Some(u64::MAX - 1), &event).unwrap();
            let payload = read_frame(&mut bytes.as_slice(), "t").unwrap().unwrap();
            assert_eq!(
                decode_event(&payload, "t").unwrap(),
                (Some(u64::MAX - 1), event)
            );
        }
    }

    #[test]
    fn oversized_frames_are_refused_at_write_time() {
        // A string just over the cap: the writer must error rather than emit a
        // frame every reader rejects.
        let huge = "x".repeat(MAX_FRAME_LEN as usize + 1);
        let event = Event::response(ProcessId::new(0), OpId::new(0), OpValue::Str(huge));
        let mut bytes = Vec::new();
        let err = encode_tagged_event(&mut bytes, None, &event).unwrap_err();
        assert!(err.to_string().contains("cap"));
        assert!(bytes.is_empty(), "nothing may be written on refusal");
    }

    #[test]
    fn preamble_is_checked() {
        let mut good = Vec::new();
        encode_preamble(&mut good);
        assert!(read_preamble(&mut good.as_slice()).is_ok());

        assert!(matches!(
            read_preamble(&mut b"NOTATRACE!".as_slice()),
            Err(TraceError::UnknownFormat)
        ));
        let mut wrong_version = MAGIC.to_vec();
        wrong_version.extend_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            read_preamble(&mut wrong_version.as_slice()),
            Err(TraceError::UnsupportedVersion(9))
        ));
        assert!(read_preamble(&mut b"LINR".as_slice()).is_err());
    }

    #[test]
    fn torn_and_oversized_frames_are_rejected() {
        // Clean EOF between frames.
        assert!(read_frame(&mut [].as_slice(), "t").unwrap().is_none());
        // Torn length.
        assert!(read_frame(&mut [1u8, 0].as_slice(), "t").is_err());
        // Torn payload.
        let mut torn = 8u32.to_le_bytes().to_vec();
        torn.extend_from_slice(&[1, 2, 3]);
        assert!(read_frame(&mut torn.as_slice(), "t").is_err());
        // Oversized length.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        assert!(read_frame(&mut huge.as_slice(), "t").is_err());
    }

    #[test]
    fn corrupted_payloads_are_rejected() {
        // Unknown event tag.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        assert!(decode_event(&payload, "t").is_err());
        // Trailing bytes after a well-formed event.
        let mut bytes = Vec::new();
        encode_tagged_event(
            &mut bytes,
            None,
            &Event::response(ProcessId::new(0), OpId::new(0), OpValue::Unit),
        )
        .unwrap();
        let mut payload = read_frame(&mut bytes.as_slice(), "t").unwrap().unwrap();
        payload.push(0);
        assert!(decode_event(&payload, "t").is_err());
        // Truncated header.
        assert!(decode_header(&[0], "t").is_err());
        // Unknown kind code.
        assert!(decode_header(&[99, 0, 0], "t").is_err());
    }
}
