//! # linrv-trace
//!
//! Portable, versioned history traces: the durable artifact between a run and
//! its verification.
//!
//! The paper's verifier consumes histories, but a `linrv_history::History` only
//! exists inside one process. This crate makes histories **first-class
//! artifacts**: a recorded run can be written to disk, shipped elsewhere and
//! re-checked later — the record / replay / offline-check workflow of the
//! `linrv` CLI, the golden-trace regression corpus and every cross-process
//! verification scenario.
//!
//! Two encodings of the same logical content (format version
//! [`FORMAT_VERSION`], full layout in `FORMAT.md`):
//!
//! * **JSONL** ([`TraceFormat::Jsonl`]) — one JSON object per line; readable,
//!   diffable, greppable. Hand-rolled codec (the vendored `serde` is a stub).
//! * **Binary** ([`TraceFormat::Binary`]) — magic + version + length-framed
//!   records; denser and faster for large recorded runs.
//!
//! Both are **streaming**: [`TraceWriter`] emits events as they happen and
//! [`TraceReader`] yields them one at a time, so traces larger than memory are
//! fine in both directions. [`SharedTraceWriter`] adapts a writer into the
//! [`EventSink`] tap accepted by the runtime recorder and the `linrv` facade's
//! `MonitorBuilder::trace_to`.
//!
//! Multi-object producers (the `linrv-pool` monitor pool) additionally tag
//! every event with the object it belongs to — [`TaggedEventSink`],
//! [`TraceWriter::tagged_event`], [`TraceReader::next_tagged`] — so one trace
//! interleaves many objects and `linrv check` verifies it by per-object
//! projection. Tagging is an additive extension of format version 1: untagged
//! readers decode tagged JSONL traces unchanged (unknown fields are ignored)
//! and the binary encoding gives tagged events their own frame tags.
//!
//! ```
//! use linrv_history::{Event, History, OpId, OpValue, Operation, ProcessId};
//! use linrv_spec::ObjectKind;
//! use linrv_trace::{read_history, write_history, TraceFormat, TraceHeader};
//!
//! let p = ProcessId::new(0);
//! let history = History::from_events(vec![
//!     Event::invocation(p, OpId::new(0), Operation::new("Enqueue", OpValue::Int(7))),
//!     Event::response(p, OpId::new(0), OpValue::Bool(true)),
//! ]);
//! let header = TraceHeader::new(ObjectKind::Queue).with_seed(42);
//!
//! let mut bytes = Vec::new();
//! write_history(&mut bytes, TraceFormat::Binary, &header, &history)?;
//! let (decoded_header, decoded) = read_history(bytes.as_slice())?;
//! assert_eq!(decoded_header, header);
//! assert_eq!(decoded, history);
//! # Ok::<(), linrv_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod error;
mod header;
mod json;
mod jsonl;
mod reader;
mod sink;
mod writer;

pub use error::TraceError;
pub use header::{Provenance, TraceFormat, TraceHeader};
pub use reader::{read_history, read_tagged_history, TraceReader};
pub use sink::{EventSink, NullSink, TaggedEventSink};
pub use writer::{write_history, SharedTraceWriter, TraceWriter};

/// The trace format version this build reads and writes.
///
/// Readers reject other versions with [`TraceError::UnsupportedVersion`];
/// the layout of every version is documented in `FORMAT.md`.
pub const FORMAT_VERSION: u16 = 1;
