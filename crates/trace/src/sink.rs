//! The [`EventSink`] tap: where live executions hand events to a trace.

use linrv_history::Event;

/// A destination for history events produced by a live execution.
///
/// Implemented by [`SharedTraceWriter`](crate::SharedTraceWriter); accepted by
/// the runtime recorder (`record_execution_traced`, `record_scheduled_traced`)
/// and by the `linrv` facade's `MonitorBuilder::trace_to`, so one trait wires
/// every producer to every trace format.
///
/// Sinks are called from the producer's hot path, potentially from many
/// threads, so implementations must be cheap and must not panic. Errors are the
/// sink's own business (e.g. latched and reported when the trace is finished):
/// a failing trace must never abort the execution being traced.
pub trait EventSink: Send + Sync {
    /// Records one event. Invocations and responses arrive in the order the
    /// producer serialised them — for a well-formed producer, the resulting
    /// event sequence is a well-formed history.
    fn event(&self, event: &Event);
}

/// A destination for history events tagged with the object they belong to.
///
/// Multi-object producers — `linrv-pool`'s `MonitorPool` foremost — interleave
/// the events of many independent objects into one stream; the tag is what lets
/// an offline checker verify the stream by per-object projection. Implemented
/// by [`SharedTraceWriter`](crate::SharedTraceWriter) (the tag is encoded into
/// the trace, see `FORMAT.md`).
///
/// The same hot-path contract as [`EventSink`] applies: cheap, thread-safe,
/// never panics, never aborts the traced execution.
pub trait TaggedEventSink: Send + Sync {
    /// Records one event of the object identified by `object`.
    fn tagged_event(&self, object: u64, event: &Event);
}

/// A sink that drops every event; useful as a default and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&self, _event: &Event) {}
}

impl TaggedEventSink for NullSink {
    fn tagged_event(&self, _object: u64, _event: &Event) {}
}

/// Forwarding through references, so `&sink` can be passed without cloning.
impl<S: EventSink + ?Sized> EventSink for &S {
    fn event(&self, event: &Event) {
        (**self).event(event);
    }
}

impl<S: EventSink + ?Sized> EventSink for std::sync::Arc<S> {
    fn event(&self, event: &Event) {
        (**self).event(event);
    }
}

impl<S: TaggedEventSink + ?Sized> TaggedEventSink for &S {
    fn tagged_event(&self, object: u64, event: &Event) {
        (**self).tagged_event(object, event);
    }
}

impl<S: TaggedEventSink + ?Sized> TaggedEventSink for std::sync::Arc<S> {
    fn tagged_event(&self, object: u64, event: &Event) {
        (**self).tagged_event(object, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{OpId, OpValue, ProcessId};
    use std::sync::Arc;

    #[test]
    fn null_sink_and_adapters_compile_and_run() {
        let event = Event::response(ProcessId::new(0), OpId::new(0), OpValue::Unit);
        let sink = NullSink;
        sink.event(&event);
        let by_ref: &dyn EventSink = &&sink;
        by_ref.event(&event);
        let arced: Arc<dyn EventSink> = Arc::new(NullSink);
        arced.event(&event);
        let tagged: Arc<dyn TaggedEventSink> = Arc::new(NullSink);
        tagged.tagged_event(7, &event);
        (&NullSink as &dyn TaggedEventSink).tagged_event(7, &event);
    }
}
