//! Trace metadata: the header record every trace starts with.

use linrv_spec::ObjectKind;
use std::fmt;

/// The two on-disk encodings of a trace (see `FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One JSON object per line: a header line followed by one line per event.
    /// Human-readable and diff-friendly; the format of the golden corpus.
    #[default]
    Jsonl,
    /// Length-framed binary records behind an 8-byte magic. Roughly 4–5× denser
    /// and faster to decode; the format for large recorded runs.
    Binary,
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "binary",
        })
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "binary" | "bin" => Ok(TraceFormat::Binary),
            other => Err(format!(
                "unknown trace format {other:?} (expected \"jsonl\" or \"binary\")"
            )),
        }
    }
}

/// What the producer of a trace knew about the recorded implementation.
///
/// Purely advisory metadata: `linrv check` decides the actual verdict from the
/// events, never from this field. The golden-corpus regression tests use it to
/// assert that the checker's verdict matches the recorded provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Provenance {
    /// Nothing is known about the implementation that produced the trace.
    #[default]
    Unknown,
    /// The trace was produced by a known-correct implementation (e.g. the
    /// sequential specification itself behind a lock).
    Correct,
    /// The trace was produced by a deliberately fault-injected implementation.
    Faulty,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Provenance::Unknown => "unknown",
            Provenance::Correct => "correct",
            Provenance::Faulty => "faulty",
        })
    }
}

impl std::str::FromStr for Provenance {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unknown" => Ok(Provenance::Unknown),
            "correct" => Ok(Provenance::Correct),
            "faulty" => Ok(Provenance::Faulty),
            other => Err(format!(
                "unknown provenance {other:?} (expected \"unknown\", \"correct\" \
                 or \"faulty\")"
            )),
        }
    }
}

/// The metadata record at the start of every trace.
///
/// Only the object kind is mandatory — it selects the sequential specification
/// an offline checker verifies the events against. Everything else describes how
/// the trace was produced, so a run can be reproduced (`seed`) or audited
/// (`implementation`, `provenance`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// The sequential object the recorded history claims to implement.
    pub kind: ObjectKind,
    /// The seed of the workload and interleaving, when the trace came from a
    /// seeded run (`linrv gen` / `linrv record`).
    pub seed: Option<u64>,
    /// Number of processes in the recorded run.
    pub processes: Option<u32>,
    /// Operations each process performed.
    pub ops_per_process: Option<u32>,
    /// Human-readable name of the implementation that produced the events.
    pub implementation: Option<String>,
    /// What the producer knew about that implementation.
    pub provenance: Provenance,
    /// Number of distinct objects in a multi-object trace whose events carry
    /// per-object tags (see `FORMAT.md`); `None` for single-object traces.
    pub objects: Option<u64>,
    /// Free-form scenario label for traces produced by the scenario engine
    /// (`linrv fuzz`): which generator, nemesis and shape produced the run, so
    /// a failing trace names its reproduction recipe. Advisory, like
    /// `implementation`.
    pub scenario: Option<String>,
}

impl TraceHeader {
    /// A header with only the mandatory object kind set.
    pub fn new(kind: ObjectKind) -> Self {
        TraceHeader {
            kind,
            seed: None,
            processes: None,
            ops_per_process: None,
            implementation: None,
            provenance: Provenance::Unknown,
            objects: None,
            scenario: None,
        }
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the process count (builder style).
    pub fn with_processes(mut self, processes: u32) -> Self {
        self.processes = Some(processes);
        self
    }

    /// Sets the per-process operation count (builder style).
    pub fn with_ops_per_process(mut self, ops: u32) -> Self {
        self.ops_per_process = Some(ops);
        self
    }

    /// Sets the implementation name (builder style).
    pub fn with_implementation(mut self, name: impl Into<String>) -> Self {
        self.implementation = Some(name.into());
        self
    }

    /// Sets the provenance (builder style).
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// Sets the distinct-object count of a tagged multi-object trace
    /// (builder style).
    pub fn with_objects(mut self, objects: u64) -> Self {
        self.objects = Some(objects);
        self
    }

    /// Sets the scenario label (builder style).
    pub fn with_scenario(mut self, scenario: impl Into<String>) -> Self {
        self.scenario = Some(scenario.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_setters_compose() {
        let header = TraceHeader::new(ObjectKind::Queue)
            .with_seed(42)
            .with_processes(3)
            .with_ops_per_process(50)
            .with_implementation("ms-queue")
            .with_provenance(Provenance::Correct)
            .with_objects(1000)
            .with_scenario("queue/fill-drain/crash1");
        assert_eq!(header.kind, ObjectKind::Queue);
        assert_eq!(header.seed, Some(42));
        assert_eq!(header.processes, Some(3));
        assert_eq!(header.ops_per_process, Some(50));
        assert_eq!(header.implementation.as_deref(), Some("ms-queue"));
        assert_eq!(header.provenance, Provenance::Correct);
        assert_eq!(header.objects, Some(1000));
        assert_eq!(header.scenario.as_deref(), Some("queue/fill-drain/crash1"));
    }

    #[test]
    fn formats_and_provenance_round_trip_through_strings() {
        for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
            assert_eq!(format.to_string().parse::<TraceFormat>().unwrap(), format);
        }
        for provenance in [Provenance::Unknown, Provenance::Correct, Provenance::Faulty] {
            assert_eq!(
                provenance.to_string().parse::<Provenance>().unwrap(),
                provenance
            );
        }
        assert!("csv".parse::<TraceFormat>().is_err());
        assert!("maybe".parse::<Provenance>().is_err());
    }
}
