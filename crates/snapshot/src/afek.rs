//! The wait-free snapshot of Afek, Attiya, Dolev, Gafni, Merritt and Shavit
//! (the paper's reference `[1]`), built from single-writer atomic registers.

use crate::register::AtomicRegister;
use crate::traits::Snapshot;
use std::sync::Arc;

/// Content of one register of the snapshot: the writer's current value, a sequence
/// number incremented on every write, and the *embedded scan* the writer performed just
/// before writing (used for helping).
#[derive(Debug, Clone)]
struct Cell<T> {
    seq: u64,
    value: T,
    embedded_scan: Option<Vec<T>>,
}

/// The classic wait-free linearizable snapshot object.
///
/// * `Write` (called *update* in the original paper) first performs an embedded scan,
///   then writes `(value, seq + 1, scan)` into the writer's register.
/// * `Scan` repeatedly double-collects. If two successive collects show no sequence
///   number changed, the collect is atomic and is returned. Otherwise, a writer that is
///   observed to move **twice** during the scan must have performed a complete `Write`
///   — and therefore a complete embedded scan — entirely within the scan's interval, so
///   the scanner *borrows* that embedded scan and returns it.
///
/// Every scan terminates after at most `n + 1` double collects (each failed round
/// increments some writer's move count, and a writer observed moving twice ends the
/// scan), so both operations are wait-free with `O(n²)` register operations — the
/// `O(n)`-per-operation bound the paper quotes for `[63]` is an optimisation, not a
/// requirement, and is tracked as future work in DESIGN.md.
#[derive(Debug)]
pub struct AfekSnapshot<T> {
    registers: Vec<AtomicRegister<Cell<T>>>,
}

impl<T: Clone> AfekSnapshot<T> {
    /// Creates a snapshot with `n` entries, all holding `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        AfekSnapshot {
            registers: (0..n)
                .map(|_| {
                    AtomicRegister::new(Cell {
                        seq: 0,
                        value: initial.clone(),
                        embedded_scan: None,
                    })
                })
                .collect(),
        }
    }

    fn collect(&self) -> Vec<Arc<Cell<T>>> {
        self.registers.iter().map(AtomicRegister::read).collect()
    }

    /// The scan procedure shared by `scan` and the embedded scan of `write`.
    fn scan_internal(&self) -> Vec<T> {
        let n = self.registers.len();
        let mut moved = vec![0u32; n];
        let mut previous = self.collect();
        loop {
            let current = self.collect();
            let mut interfered = false;
            for j in 0..n {
                if previous[j].seq != current[j].seq {
                    interfered = true;
                    moved[j] += 1;
                    if moved[j] >= 2 {
                        // Writer j completed a whole Write inside our scan interval;
                        // its embedded scan is linearizable within our interval too.
                        if let Some(embedded) = &current[j].embedded_scan {
                            return embedded.clone();
                        }
                    }
                }
            }
            if !interfered {
                return current.iter().map(|c| c.value.clone()).collect();
            }
            previous = current;
        }
    }
}

impl<T: Clone + Send + Sync> Snapshot<T> for AfekSnapshot<T> {
    fn entries(&self) -> usize {
        self.registers.len()
    }

    fn write(&self, writer: usize, value: T) {
        let embedded = self.scan_internal();
        let current = self.registers[writer].read();
        self.registers[writer].write(Cell {
            seq: current.seq + 1,
            value,
            embedded_scan: Some(embedded),
        });
    }

    fn scan(&self, _scanner: usize) -> Vec<T> {
        self.scan_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sequential_write_scan() {
        let s = AfekSnapshot::new(3, 0i64);
        s.write(0, 5);
        s.write(2, -1);
        assert_eq!(s.scan(1), vec![5, 0, -1]);
        assert_eq!(s.entries(), 3);
    }

    #[test]
    fn embedded_scan_is_installed_after_first_write() {
        let s = AfekSnapshot::new(2, 0u32);
        s.write(0, 1);
        let cell = s.registers[0].read();
        assert_eq!(cell.seq, 1);
        assert_eq!(cell.embedded_scan.as_deref(), Some(&[0, 0][..]));
    }

    /// With writers publishing monotonically increasing values, every pair of scans
    /// must be comparable entrywise (one dominates the other); incomparable scans would
    /// contradict linearizability.
    #[test]
    fn concurrent_scans_are_comparable_under_monotone_writes() {
        let n = 3;
        let per_writer = 300u64;
        let s = Arc::new(AfekSnapshot::new(n, 0u64));
        let mut handles = Vec::new();
        // Writers 0 and 1 publish increasing values; process 2 scans continuously.
        for w in 0..2usize {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for v in 1..=per_writer {
                    s.write(w, v);
                }
            }));
        }
        let scans = {
            let s = Arc::clone(&s);
            thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..200 {
                    out.push(s.scan(2));
                }
                out
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let scans = scans.join().unwrap();
        for a in &scans {
            for b in &scans {
                let a_le_b = a.iter().zip(b).all(|(x, y)| x <= y);
                let b_le_a = a.iter().zip(b).all(|(x, y)| x >= y);
                assert!(
                    a_le_b || b_le_a,
                    "incomparable scans under monotone writes: {a:?} vs {b:?}"
                );
            }
        }
        // Final scan sees the last values.
        assert_eq!(s.scan(2)[..2], [per_writer, per_writer]);
    }

    /// Scans by the writer itself always include its own latest value (self-inclusion,
    /// needed for Remark 7.2 (1) upstream).
    #[test]
    fn scans_after_own_write_contain_own_value() {
        let s = AfekSnapshot::new(2, 0u64);
        for v in 1..=50 {
            s.write(0, v);
            let scan = s.scan(0);
            assert_eq!(scan[0], v);
        }
    }
}
