//! A multi-reader atomic register for arbitrary (cloneable) values.
//!
//! The paper's base objects are atomic read/write registers of unbounded size
//! (Section 2; Section 9.1 discusses how to bound them). Rust's `std::sync::atomic`
//! only covers word-sized values, so [`AtomicRegister`] provides a register of
//! arbitrary `T` by swapping reference-counted pointers: a write installs a new
//! `Arc<T>`, a read clones the current one. Both operations are single atomic pointer
//! instructions plus reference-count traffic — no locks and no waiting — so algorithms
//! built on top (the Afek et al. snapshot, the DRV transform's announcement array)
//! retain their wait-freedom.
//!
//! Memory reclamation uses crossbeam's epoch scheme: the previous value is retired when
//! the write swaps it out and freed once no reader can still hold a reference obtained
//! through the register (readers clone the `Arc` *inside* the epoch-protected section).

use crossbeam::epoch::{self, Atomic, Owned};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A multi-reader, multi-writer atomic register holding a value of type `T`.
///
/// ```
/// use linrv_snapshot::AtomicRegister;
/// let r = AtomicRegister::new(vec![1, 2, 3]);
/// assert_eq!(*r.read(), vec![1, 2, 3]);
/// r.write(vec![4]);
/// assert_eq!(*r.read(), vec![4]);
/// ```
#[derive(Debug)]
pub struct AtomicRegister<T> {
    cell: Atomic<Arc<T>>,
}

impl<T> AtomicRegister<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        AtomicRegister {
            cell: Atomic::new(Arc::new(initial)),
        }
    }

    /// Atomically replaces the register's content with `value`.
    pub fn write(&self, value: T) {
        let guard = epoch::pin();
        let new = Owned::new(Arc::new(value));
        let old = self.cell.swap(new, Ordering::AcqRel, &guard);
        // SAFETY: `old` was the register's unique current pointer and has just been
        // unlinked by the swap; no new reader can reach it, and existing readers hold
        // their own `Arc` clone, so deferring destruction of the `Arc` handle (not the
        // payload they cloned) is safe.
        unsafe {
            guard.defer_destroy(old);
        }
    }

    /// Atomically reads the register's current content.
    pub fn read(&self) -> Arc<T> {
        let guard = epoch::pin();
        let shared = self.cell.load(Ordering::Acquire, &guard);
        // SAFETY: `shared` is protected by the epoch guard for the duration of this
        // call, so the `Arc` it points to has not been destroyed; cloning it gives us
        // an owned reference that outlives the guard.
        unsafe { Arc::clone(shared.deref()) }
    }
}

impl<T> Drop for AtomicRegister<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let current = self
            .cell
            .swap(epoch::Shared::null(), Ordering::AcqRel, &guard);
        if !current.is_null() {
            // SAFETY: the register is being dropped, so no other thread holds a
            // reference to it; the current pointer can be retired.
            unsafe {
                guard.defer_destroy(current);
            }
        }
    }
}

impl<T: Default> Default for AtomicRegister<T> {
    fn default() -> Self {
        AtomicRegister::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    #[test]
    fn read_returns_last_write() {
        let r = AtomicRegister::new(0u64);
        assert_eq!(*r.read(), 0);
        r.write(1);
        r.write(2);
        assert_eq!(*r.read(), 2);
    }

    #[test]
    fn default_uses_default_value() {
        let r: AtomicRegister<Vec<u8>> = AtomicRegister::default();
        assert!(r.read().is_empty());
    }

    #[test]
    fn concurrent_readers_see_monotone_values() {
        let r = Arc::new(AtomicRegister::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            handles.push(thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = *r.read();
                    assert!(v >= last, "register went backwards: {v} < {last}");
                    last = v;
                }
            }));
        }
        for v in 1..=1000u64 {
            r.write(v);
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*r.read(), 1000);
    }

    #[test]
    fn values_are_dropped_exactly_once() {
        // A register of Arcs: after the register is dropped and epochs flush, the
        // payload's strong count returns to the handles we still own.
        let payload = Arc::new(42u8);
        {
            let r = AtomicRegister::new(Arc::clone(&payload));
            r.write(Arc::clone(&payload));
            let _ = r.read();
        }
        // Flush deferred destruction by advancing epochs with dummy work.
        for _ in 0..1024 {
            let _ = epoch::pin();
        }
        assert!(Arc::strong_count(&payload) <= 3);
    }
}
