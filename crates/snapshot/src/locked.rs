//! Mutex-based snapshot: the differential-testing oracle.

use crate::traits::Snapshot;
use parking_lot::Mutex;

/// A snapshot object protected by a single mutex.
///
/// Trivially linearizable (every operation is a critical section) but *blocking*: a
/// process holding the lock can delay every other process indefinitely, which is
/// exactly the progress degradation the paper's introduction warns a verifier must not
/// introduce. It is included as a correctness oracle for the wait-free implementations
/// and as the "lock-based monitor" baseline in the benchmarks.
#[derive(Debug)]
pub struct LockedSnapshot<T> {
    entries: Mutex<Vec<T>>,
}

impl<T: Clone> LockedSnapshot<T> {
    /// Creates a snapshot with `n` entries, all holding `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        LockedSnapshot {
            entries: Mutex::new(vec![initial; n]),
        }
    }
}

impl<T: Clone + Send + Sync> Snapshot<T> for LockedSnapshot<T> {
    fn entries(&self) -> usize {
        self.entries.lock().len()
    }

    fn write(&self, writer: usize, value: T) {
        self.entries.lock()[writer] = value;
    }

    fn scan(&self, _scanner: usize) -> Vec<T> {
        self.entries.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_scan() {
        let s = LockedSnapshot::new(3, 0u32);
        s.write(1, 7);
        assert_eq!(s.scan(0), vec![0, 7, 0]);
        assert_eq!(s.entries(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_writer_panics() {
        let s = LockedSnapshot::new(2, 0u32);
        s.write(5, 1);
    }
}
