//! Double-collect snapshot without helping (lock-free, not wait-free).

use crate::register::AtomicRegister;
use crate::traits::Snapshot;
use std::sync::Arc;

/// One labelled register entry: the value plus a sequence number that changes with
/// every write, so scans can detect interference.
#[derive(Debug, Clone)]
struct Labelled<T> {
    seq: u64,
    value: T,
}

/// A linearizable snapshot based on repeated *double collects*: a scan reads all
/// entries twice and returns when the two collects are identical (no writer interfered
/// in between, so the collect is an atomic picture).
///
/// Scans are only obstruction-free: a continuously interfering writer can starve a
/// scanner forever. The [`AfekSnapshot`](crate::AfekSnapshot) adds helping to make
/// scans wait-free; this type exists as the ablation baseline (experiment E15) and to
/// illustrate why helping matters.
#[derive(Debug)]
pub struct DoubleCollectSnapshot<T> {
    registers: Vec<AtomicRegister<Labelled<T>>>,
}

impl<T: Clone> DoubleCollectSnapshot<T> {
    /// Creates a snapshot with `n` entries, all holding `initial`.
    pub fn new(n: usize, initial: T) -> Self {
        DoubleCollectSnapshot {
            registers: (0..n)
                .map(|_| {
                    AtomicRegister::new(Labelled {
                        seq: 0,
                        value: initial.clone(),
                    })
                })
                .collect(),
        }
    }

    fn collect(&self) -> Vec<Arc<Labelled<T>>> {
        self.registers.iter().map(AtomicRegister::read).collect()
    }
}

impl<T: Clone + Send + Sync> Snapshot<T> for DoubleCollectSnapshot<T> {
    fn entries(&self) -> usize {
        self.registers.len()
    }

    fn write(&self, writer: usize, value: T) {
        let current = self.registers[writer].read();
        self.registers[writer].write(Labelled {
            seq: current.seq + 1,
            value,
        });
    }

    fn scan(&self, _scanner: usize) -> Vec<T> {
        loop {
            let first = self.collect();
            let second = self.collect();
            let clean = first.iter().zip(&second).all(|(a, b)| a.seq == b.seq);
            if clean {
                return second.iter().map(|e| e.value.clone()).collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_write_scan() {
        let s = DoubleCollectSnapshot::new(3, 0u32);
        s.write(0, 1);
        s.write(2, 9);
        assert_eq!(s.scan(1), vec![1, 0, 9]);
    }

    #[test]
    fn repeated_writes_update_sequence_numbers() {
        let s = DoubleCollectSnapshot::new(1, 0u32);
        for v in 1..=10 {
            s.write(0, v);
        }
        assert_eq!(s.scan(0), vec![10]);
    }
}
