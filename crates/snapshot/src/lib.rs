//! # linrv-snapshot
//!
//! Wait-free linearizable *atomic snapshot* objects built from read/write registers
//! only, as required by the constructions of Castañeda & Rodríguez (PODC 2023).
//!
//! The snapshot object (Definition 7.3 of the paper) is a shared array `MEM` with one
//! entry per process and two operations: `Write(v)`, which stores `v` into the calling
//! process's entry, and `Snapshot()`, which returns an atomic copy of the whole array.
//! The paper's `A → A*` transform (Figure 7), the predictive verifier `V_O`
//! (Figure 10) and the self-enforced implementations (Figures 11–12) all communicate
//! exclusively through such objects, which is what keeps them wait-free and free of
//! consensus.
//!
//! Three implementations are provided:
//!
//! * [`AfekSnapshot`] — the classic wait-free construction of Afek et al. (the paper's
//!   reference `[1]`): scans double-collect and, when interference is detected twice
//!   from the same writer, *borrow* the embedded scan that writer published. `O(n²)`
//!   reads per operation, wait-free.
//! * [`DoubleCollectSnapshot`] — plain double-collect without helping: linearizable,
//!   but only obstruction-free/lock-free (a scan may be starved by writers). Used as an
//!   ablation baseline.
//! * [`LockedSnapshot`] — a mutex-protected array. Trivially linearizable but blocking;
//!   it serves as the differential-testing oracle, mirroring the lock-based monitors
//!   the paper's related-work section argues against.
//!
//! All implementations share the [`Snapshot`] trait so the higher layers can be
//! instantiated with any of them (and benchmarked against each other, experiment E15).

#![warn(missing_docs)]
// `register.rs` genuinely needs unsafe (seqlock-style reads of shared slots);
// everything else in the crate is safe code.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod afek;
pub mod double_collect;
pub mod locked;
pub mod register;
pub mod traits;

pub use afek::AfekSnapshot;
pub use double_collect::DoubleCollectSnapshot;
pub use locked::LockedSnapshot;
pub use register::AtomicRegister;
pub use traits::Snapshot;
