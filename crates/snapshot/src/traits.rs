//! The snapshot object interface (Definition 7.3).

/// A linearizable snapshot object over values of type `T` (Definition 7.3 of the
/// paper): an `n`-entry shared array supporting `Write` into the caller's entry and an
/// atomic `Snapshot` of all entries.
///
/// Entries are addressed by the caller's process index (`0..n`), matching the paper's
/// convention that process `p_i` owns entry `i`. Each entry has a single writer; any
/// process may scan.
///
/// Implementations must be linearizable: every scan returns an array that actually was
/// (or could atomically have been) the simultaneous content of all entries at some
/// point between the scan's invocation and response.
pub trait Snapshot<T: Clone>: Send + Sync {
    /// Number of entries (one per process).
    fn entries(&self) -> usize;

    /// Writes `value` into the entry owned by process `writer`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `writer >= self.entries()`.
    fn write(&self, writer: usize, value: T);

    /// Returns an atomic copy of all entries. `scanner` identifies the calling process
    /// (used by helping-based implementations).
    ///
    /// # Panics
    ///
    /// Implementations may panic when `scanner >= self.entries()`.
    fn scan(&self, scanner: usize) -> Vec<T>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LockedSnapshot;

    // The trait must be object safe: the DRV transform stores `Arc<dyn Snapshot<_>>`.
    #[test]
    fn snapshot_is_object_safe() {
        let snapshot: Box<dyn Snapshot<u32>> = Box::new(LockedSnapshot::new(2, 0));
        snapshot.write(0, 7);
        assert_eq!(snapshot.scan(1), vec![7, 0]);
        assert_eq!(snapshot.entries(), 2);
    }
}
