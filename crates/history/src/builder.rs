//! Ergonomic construction of histories for tests, examples and recorders.

use crate::event::Event;
use crate::history::History;
use crate::op::{OpId, OpValue, Operation};
use crate::process::ProcessId;
use std::collections::HashMap;

/// Incremental builder of well-formed histories.
///
/// The builder assigns fresh [`OpId`]s on invocation and appends events in call order,
/// which makes it convenient for writing down the interleavings in the paper's figures
/// as well as for recording real executions.
///
/// ```
/// use linrv_history::{HistoryBuilder, Operation, OpValue, ProcessId};
/// let p1 = ProcessId::new(0);
/// let mut b = HistoryBuilder::new();
/// let op = b.invoke(p1, Operation::new("Push", OpValue::Int(7)));
/// b.respond(op, OpValue::Bool(true));
/// let h = b.build();
/// assert!(h.is_well_formed());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HistoryBuilder {
    history: History,
    next_op: u64,
    /// Invoking process per operation, so `respond` stays O(1) instead of
    /// re-scanning the event vector (which would make building an n-operation
    /// history quadratic — ruinous for the benchmark-sized traces).
    invoked: HashMap<OpId, ProcessId>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HistoryBuilder::default()
    }

    /// Creates a builder whose next operation identifier starts at `first_op_id`.
    ///
    /// Useful when several builders contribute operations to a common identifier space.
    pub fn starting_at(first_op_id: u64) -> Self {
        HistoryBuilder {
            next_op: first_op_id,
            ..HistoryBuilder::default()
        }
    }

    /// Appends an invocation event by `process` and returns the fresh operation
    /// identifier.
    pub fn invoke(&mut self, process: ProcessId, operation: Operation) -> OpId {
        let id = OpId::new(self.next_op);
        self.next_op += 1;
        self.invoked.insert(id, process);
        self.history.push(Event::invocation(process, id, operation));
        id
    }

    /// Appends an invocation event with an explicit operation identifier.
    pub fn invoke_with_id(&mut self, process: ProcessId, id: OpId, operation: Operation) {
        self.next_op = self.next_op.max(id.raw() + 1);
        self.invoked.insert(id, process);
        self.history.push(Event::invocation(process, id, operation));
    }

    /// Appends a response event for operation `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not previously invoked through this builder, since the
    /// resulting history could not be well formed.
    pub fn respond(&mut self, id: OpId, value: OpValue) {
        let process = *self
            .invoked
            .get(&id)
            .unwrap_or_else(|| panic!("respond: operation {id} was never invoked"));
        self.history.push(Event::response(process, id, value));
    }

    /// Appends a complete operation (invocation immediately followed by its response).
    pub fn complete(
        &mut self,
        process: ProcessId,
        operation: Operation,
        response: OpValue,
    ) -> OpId {
        let id = self.invoke(process, operation);
        self.respond(id, response);
        id
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Returns `true` when no event has been appended.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// A snapshot of the history built so far.
    pub fn current(&self) -> &History {
        &self.history
    }

    /// Finishes the builder and returns the history.
    pub fn build(self) -> History {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_well_formed_histories() {
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p1, Operation::new("Push", OpValue::Int(1)));
        let c = b.invoke(p2, Operation::nullary("Pop"));
        b.respond(c, OpValue::Int(1));
        b.respond(a, OpValue::Bool(true));
        let h = b.build();
        assert!(h.is_well_formed());
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn complete_appends_two_events() {
        let mut b = HistoryBuilder::new();
        b.complete(
            ProcessId::new(0),
            Operation::new("Inc", OpValue::Unit),
            OpValue::Int(1),
        );
        assert_eq!(b.len(), 2);
        assert!(b.current().is_sequential());
    }

    #[test]
    #[should_panic(expected = "never invoked")]
    fn responding_to_unknown_operation_panics() {
        let mut b = HistoryBuilder::new();
        b.respond(OpId::new(42), OpValue::Unit);
    }

    #[test]
    fn starting_at_respects_explicit_ids() {
        let mut b = HistoryBuilder::starting_at(10);
        let id = b.invoke(ProcessId::new(0), Operation::nullary("Pop"));
        assert_eq!(id, OpId::new(10));
        b.invoke_with_id(ProcessId::new(1), OpId::new(20), Operation::nullary("Pop"));
        let id = b.invoke(ProcessId::new(2), Operation::nullary("Pop"));
        assert_eq!(id, OpId::new(21));
    }
}
