//! Interval-sequential histories.
//!
//! An *interval-sequential* history is an alternating sequence of non-empty sets,
//! `I_1 R_1 I_2 R_2 …`, where each `I_x` contains only invocations and each `R_x` only
//! responses, starting with a set of invocations (footnote 5 and Claim 7.2 of the
//! paper). The `X(λ)` sketch construction of Section 7.3.3 produces histories of this
//! shape, and interval-linearizability is defined over them.
//!
//! Every well-formed history can be *grouped* into this form by splitting its event
//! sequence into maximal runs of invocations and responses; conversely an
//! interval-sequential history *flattens* into an ordinary [`History`] by emitting the
//! events of each set in an arbitrary (but fixed) order. All flattenings of the same
//! interval-sequential history are equivalent and have the same `≺` relation, so they
//! form the equivalence class the paper denotes `X(λ_E)`.

use crate::event::{Event, EventKind};
use crate::history::History;
use crate::op::{OpId, OpValue, Operation};
use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of an interval-sequential history: a non-empty set of invocations or a
/// non-empty set of responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalStep {
    /// A set of invocations occurring "at the same time".
    Invocations(Vec<(ProcessId, OpId, Operation)>),
    /// A set of responses occurring "at the same time".
    Responses(Vec<(ProcessId, OpId, OpValue)>),
}

impl IntervalStep {
    /// Returns `true` when the step is a set of invocations.
    pub fn is_invocations(&self) -> bool {
        matches!(self, IntervalStep::Invocations(_))
    }

    /// Number of events in the step.
    pub fn len(&self) -> usize {
        match self {
            IntervalStep::Invocations(v) => v.len(),
            IntervalStep::Responses(v) => v.len(),
        }
    }

    /// Returns `true` when the step contains no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An interval-sequential history: alternating invocation/response sets starting with
/// invocations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalHistory {
    steps: Vec<IntervalStep>,
}

impl IntervalHistory {
    /// Creates an empty interval-sequential history.
    pub fn new() -> Self {
        IntervalHistory { steps: Vec::new() }
    }

    /// Creates an interval history from explicit steps.
    ///
    /// # Panics
    ///
    /// Panics if the steps do not alternate invocations/responses starting with
    /// invocations, or if any step is empty.
    pub fn from_steps(steps: Vec<IntervalStep>) -> Self {
        for (i, step) in steps.iter().enumerate() {
            assert!(!step.is_empty(), "interval step {i} is empty");
            let expect_invocations = i % 2 == 0;
            assert_eq!(
                step.is_invocations(),
                expect_invocations,
                "interval step {i} does not alternate invocations/responses"
            );
        }
        IntervalHistory { steps }
    }

    /// The steps of the history.
    pub fn steps(&self) -> &[IntervalStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` when there are no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a set of invocations as the next step.
    ///
    /// # Panics
    ///
    /// Panics if the previous step is also a set of invocations or if `invs` is empty.
    pub fn push_invocations(&mut self, invs: Vec<(ProcessId, OpId, Operation)>) {
        assert!(!invs.is_empty(), "empty invocation step");
        assert!(
            self.steps.len() % 2 == 0,
            "expected a response step at position {}",
            self.steps.len()
        );
        self.steps.push(IntervalStep::Invocations(invs));
    }

    /// Appends a set of responses as the next step.
    ///
    /// # Panics
    ///
    /// Panics if the previous step is not a set of invocations or if `resps` is empty.
    pub fn push_responses(&mut self, resps: Vec<(ProcessId, OpId, OpValue)>) {
        assert!(!resps.is_empty(), "empty response step");
        assert!(
            self.steps.len() % 2 == 1,
            "expected an invocation step at position {}",
            self.steps.len()
        );
        self.steps.push(IntervalStep::Responses(resps));
    }

    /// Flattens the interval-sequential history into an ordinary history by emitting
    /// the events of each step in the order they are stored.
    ///
    /// All flattenings of the same interval history are equivalent with identical `≺`
    /// relations (they are the equivalence class `X(λ)` of Section 7.3.3).
    pub fn flatten(&self) -> History {
        let mut events = Vec::new();
        for step in &self.steps {
            match step {
                IntervalStep::Invocations(invs) => {
                    for (p, id, op) in invs {
                        events.push(Event::invocation(*p, *id, op.clone()));
                    }
                }
                IntervalStep::Responses(resps) => {
                    for (p, id, value) in resps {
                        events.push(Event::response(*p, *id, value.clone()));
                    }
                }
            }
        }
        History::from_events(events)
    }

    /// Groups an ordinary history into its interval-sequential form by splitting its
    /// event sequence into maximal runs of invocations and of responses (Claim 7.2).
    pub fn group(history: &History) -> IntervalHistory {
        let mut steps: Vec<IntervalStep> = Vec::new();
        for event in history.events() {
            match &event.kind {
                EventKind::Invocation { op } => match steps.last_mut() {
                    Some(IntervalStep::Invocations(invs)) => {
                        invs.push((event.process, event.op_id, op.clone()));
                    }
                    _ => steps.push(IntervalStep::Invocations(vec![(
                        event.process,
                        event.op_id,
                        op.clone(),
                    )])),
                },
                EventKind::Response { value } => match steps.last_mut() {
                    Some(IntervalStep::Responses(resps)) => {
                        resps.push((event.process, event.op_id, value.clone()));
                    }
                    _ => steps.push(IntervalStep::Responses(vec![(
                        event.process,
                        event.op_id,
                        value.clone(),
                    )])),
                },
            }
        }
        IntervalHistory { steps }
    }
}

impl fmt::Display for IntervalHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step {
                IntervalStep::Invocations(invs) => {
                    write!(f, "{{ ")?;
                    for (p, id, op) in invs {
                        write!(f, "inv[{p}:{op} #{id}] ")?;
                    }
                    writeln!(f, "}}")?;
                }
                IntervalStep::Responses(resps) => {
                    write!(f, "{{ ")?;
                    for (p, id, v) in resps {
                        write!(f, "res[{p}:{v} #{id}] ")?;
                    }
                    writeln!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn group_and_flatten_round_trip() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), Operation::new("Push", OpValue::Int(1)));
        let c = b.invoke(p(1), Operation::nullary("Pop"));
        b.respond(c, OpValue::Int(1));
        b.respond(a, OpValue::Bool(true));
        let h = b.build();

        let grouped = IntervalHistory::group(&h);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped.steps()[0].len(), 2);
        let flat = grouped.flatten();
        assert!(flat.equivalent(&h));
        assert_eq!(flat.len(), h.len());
    }

    #[test]
    fn from_steps_validates_alternation() {
        let inv = IntervalStep::Invocations(vec![(p(0), OpId::new(0), Operation::nullary("Pop"))]);
        let res = IntervalStep::Responses(vec![(p(0), OpId::new(0), OpValue::Empty)]);
        let ih = IntervalHistory::from_steps(vec![inv.clone(), res.clone()]);
        assert_eq!(ih.len(), 2);
        let result = std::panic::catch_unwind(|| {
            IntervalHistory::from_steps(vec![res.clone(), inv.clone()]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn push_enforces_alternation() {
        let mut ih = IntervalHistory::new();
        ih.push_invocations(vec![(p(0), OpId::new(0), Operation::nullary("Pop"))]);
        ih.push_responses(vec![(p(0), OpId::new(0), OpValue::Empty)]);
        ih.push_invocations(vec![(p(1), OpId::new(1), Operation::nullary("Pop"))]);
        assert_eq!(ih.len(), 3);
        let flat = ih.flatten();
        assert_eq!(flat.pending_operations().count(), 1);
    }

    #[test]
    fn flatten_produces_well_formed_history() {
        let mut ih = IntervalHistory::new();
        ih.push_invocations(vec![
            (p(0), OpId::new(0), Operation::new("Push", OpValue::Int(1))),
            (p(1), OpId::new(1), Operation::nullary("Pop")),
        ]);
        ih.push_responses(vec![
            (p(0), OpId::new(0), OpValue::Bool(true)),
            (p(1), OpId::new(1), OpValue::Int(1)),
        ]);
        assert!(ih.flatten().is_well_formed());
    }
}
