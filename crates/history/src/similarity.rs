//! Similarity between histories (Definition 7.1).
//!
//! A finite history `E` is *similar to* a finite history `F` when there is a history
//! `E'` such that
//!
//! 1. `E'` is obtained from `E` by appending responses to some pending operations and
//!    removing the invocations of some (other) pending operations,
//! 2. `E'` and `F` are equivalent, and
//! 3. `≺_{E'} ⊆ ≺_F`.
//!
//! Similarity closure (together with prefix closure) is what defines the `GenLin`
//! family of objects (Definition 7.2), and it is the property that makes the views
//! mechanism a faithful sketch of tight executions (Lemma 7.4).

use crate::history::History;
use crate::op::{OpId, OpValue};
use crate::order::RealTimeOrder;
use crate::process::ProcessId;
use std::collections::{BTreeMap, BTreeSet};

/// Evidence that a history `E` is similar to a history `F`: the modifications applied
/// to `E` to obtain the intermediate history `E'` of Definition 7.1.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimilarityWitness {
    /// Responses appended to pending operations of `E` (values taken from `F`).
    pub appended_responses: BTreeMap<OpId, OpValue>,
    /// Pending operations of `E` whose invocations were removed.
    pub removed_invocations: BTreeSet<OpId>,
}

/// Decides whether `e` is similar to `f` (Definition 7.1) and, if so, returns the
/// witness describing how `E'` is obtained from `e`.
///
/// Similarity is *not* symmetric: `similar(e, f)` may hold while `similar(f, e)` does
/// not (operations of `e` may only "shrink" relative to `f`).
pub fn similar(e: &History, f: &History) -> Option<SimilarityWitness> {
    let mut witness = SimilarityWitness::default();

    // Per-process reconciliation. Each process is sequential, so at most one of its
    // operations is pending in `e`; the only allowed edits are appending a response to
    // that operation or dropping its invocation.
    let processes: BTreeSet<ProcessId> = e.processes().union(&f.processes()).copied().collect();
    for &p in &processes {
        let ep = e.project(p);
        let fp = f.project(p);
        if ep.events() == fp.events() {
            continue;
        }
        // Find the pending operation of `p` in `e`, if any.
        let pending = ep.pending_operations().next();
        match pending {
            None => return None, // no edit available, yet the projections differ
            Some(rec) => {
                // Option A: drop the pending invocation.
                let mut dropped: BTreeSet<OpId> = BTreeSet::new();
                dropped.insert(rec.id);
                let without = ep.remove_pending(&dropped);
                if without.events() == fp.events() {
                    witness.removed_invocations.insert(rec.id);
                    continue;
                }
                // Option B: append the response that `f` gives to the same operation.
                let frec = fp.operations().into_iter().find(|r| r.id == rec.id);
                if let Some(frec) = frec {
                    if let Some(value) = frec.response.clone() {
                        let mut resp = BTreeMap::new();
                        resp.insert(rec.id, value.clone());
                        if let Ok(extended) = ep.extend_with_responses(&resp) {
                            if extended.events() == fp.events() {
                                witness.appended_responses.insert(rec.id, value);
                                continue;
                            }
                        }
                    }
                }
                return None;
            }
        }
    }

    // Build E' explicitly and check the remaining conditions.
    let e_prime = apply_witness(e, &witness)?;
    if !e_prime.equivalent(f) {
        return None;
    }
    let order_e_prime = RealTimeOrder::full_order(&e_prime);
    let order_f = RealTimeOrder::full_order(f);
    if !order_e_prime.subset_of(&order_f) {
        return None;
    }
    Some(witness)
}

/// Applies a similarity witness to `e`, producing the intermediate history `E'` of
/// Definition 7.1. Returns `None` if the witness refers to operations that are not
/// pending in `e`.
pub fn apply_witness(e: &History, witness: &SimilarityWitness) -> Option<History> {
    let pending: BTreeSet<OpId> = e.pending_operations().map(|r| r.id).collect();
    if !witness.removed_invocations.is_subset(&pending) {
        return None;
    }
    if witness
        .appended_responses
        .keys()
        .any(|id| !pending.contains(id))
    {
        return None;
    }
    let reduced = e.remove_pending(&witness.removed_invocations);
    reduced
        .extend_with_responses(&witness.appended_responses)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::op::Operation;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn history_is_similar_to_itself() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), Operation::new("Push", OpValue::Int(1)));
        b.respond(a, OpValue::Bool(true));
        let h = b.build();
        let w = similar(&h, &h).expect("reflexive");
        assert!(w.appended_responses.is_empty());
        assert!(w.removed_invocations.is_empty());
    }

    #[test]
    fn pending_operation_can_be_completed() {
        // E: p1 has a pending Pop.  F: the same Pop completed with value 3.
        let mut be = HistoryBuilder::new();
        let pop = be.invoke(p(0), Operation::nullary("Pop"));
        let e = be.build();

        let mut bf = HistoryBuilder::new();
        bf.invoke_with_id(p(0), pop, Operation::nullary("Pop"));
        bf.respond(pop, OpValue::Int(3));
        let f = bf.build();

        let w = similar(&e, &f).expect("similar by appending the response");
        assert_eq!(w.appended_responses.get(&pop), Some(&OpValue::Int(3)));
    }

    #[test]
    fn pending_operation_can_be_dropped() {
        // E: p1 completes Push, p2 has a pending Pop.  F: only the Push.
        let mut be = HistoryBuilder::new();
        let push = be.invoke(p(0), Operation::new("Push", OpValue::Int(1)));
        be.respond(push, OpValue::Bool(true));
        let _pop = be.invoke(p(1), Operation::nullary("Pop"));
        let e = be.build();

        let mut bf = HistoryBuilder::new();
        bf.invoke_with_id(p(0), push, Operation::new("Push", OpValue::Int(1)));
        bf.respond(push, OpValue::Bool(true));
        let f = bf.build();

        let w = similar(&e, &f).expect("similar by dropping the pending invocation");
        assert_eq!(w.removed_invocations.len(), 1);
    }

    #[test]
    fn order_violation_is_rejected() {
        // E: A completes before B is invoked (A ≺_E B).
        // F: A and B overlap (A not before B). Then ≺_{E'} ⊄ ≺_F fails.
        let mut be = HistoryBuilder::new();
        let a = be.invoke(p(0), Operation::new("Push", OpValue::Int(1)));
        be.respond(a, OpValue::Bool(true));
        let bb = be.invoke(p(1), Operation::nullary("Pop"));
        be.respond(bb, OpValue::Int(1));
        let e = be.build();

        let mut bf = HistoryBuilder::new();
        bf.invoke_with_id(p(0), a, Operation::new("Push", OpValue::Int(1)));
        bf.invoke_with_id(p(1), bb, Operation::nullary("Pop"));
        bf.respond(a, OpValue::Bool(true));
        bf.respond(bb, OpValue::Int(1));
        let f = bf.build();

        // F is similar to E?  ≺_F is empty so F is similar to E only if ≺_F ⊆ ≺_E, which
        // holds trivially; but equivalence also holds, so F similar to E.
        assert!(similar(&f, &e).is_some());
        // E similar to F requires ≺_E ⊆ ≺_F, which fails (A before B only in E).
        assert!(similar(&e, &f).is_none());
    }

    #[test]
    fn differing_responses_are_not_similar() {
        let mut be = HistoryBuilder::new();
        let a = be.invoke(p(0), Operation::nullary("Pop"));
        be.respond(a, OpValue::Int(1));
        let e = be.build();

        let mut bf = HistoryBuilder::new();
        bf.invoke_with_id(p(0), a, Operation::nullary("Pop"));
        bf.respond(a, OpValue::Int(2));
        let f = bf.build();

        assert!(similar(&e, &f).is_none());
    }

    #[test]
    fn operations_absent_from_f_cannot_be_complete_in_e() {
        let mut be = HistoryBuilder::new();
        let a = be.invoke(p(0), Operation::nullary("Pop"));
        be.respond(a, OpValue::Int(1));
        let e = be.build();
        let f = History::new();
        assert!(similar(&e, &f).is_none());
    }

    #[test]
    fn apply_witness_rejects_non_pending_operations() {
        let mut be = HistoryBuilder::new();
        let a = be.invoke(p(0), Operation::nullary("Pop"));
        be.respond(a, OpValue::Int(1));
        let e = be.build();
        let mut w = SimilarityWitness::default();
        w.removed_invocations.insert(a);
        assert!(apply_witness(&e, &w).is_none());
    }
}
