//! # linrv-history
//!
//! Histories, events, real-time partial orders, equivalence and *similarity* for the
//! runtime verification of linearizability, following Castañeda & Rodríguez,
//! *Asynchronous Wait-Free Runtime Verification and Enforcement of Linearizability*
//! (PODC 2023, arXiv:2301.02638).
//!
//! A [`History`] is a finite sequence of invocation and response [`Event`]s produced by
//! `n` asynchronous processes interacting with a concurrent object. This crate provides
//! the history algebra the paper's definitions are built on:
//!
//! * well-formedness (per-process sequentiality, Section 2),
//! * complete/pending operations, `comp(E)`, extensions (Section 4),
//! * the real-time partial orders `<_E` (complete operations, Definition 4.2) and
//!   `≺_E` (all operations, Section 7.1),
//! * equivalence (`E|p_i = F|p_i` for every process),
//! * *similarity* between histories (Definition 7.1), the closure property that defines
//!   the `GenLin` family,
//! * interval-sequential histories (alternating invocation/response sets) used by the
//!   `X(λ)` sketch construction and by interval-linearizability,
//! * ASCII timeline rendering in the style of the paper's figures.
//!
//! ## Example
//!
//! ```
//! use linrv_history::{HistoryBuilder, ProcessId, Operation, OpValue};
//!
//! // Figure 1 (top): p1 pushes 1 while p2 pops 1 concurrently — linearizable.
//! let p1 = ProcessId::new(0);
//! let p2 = ProcessId::new(1);
//! let mut b = HistoryBuilder::new();
//! let push = b.invoke(p1, Operation::new("Push", OpValue::Int(1)));
//! let pop = b.invoke(p2, Operation::new("Pop", OpValue::Unit));
//! b.respond(pop, OpValue::Int(1));
//! b.respond(push, OpValue::Bool(true));
//! let history = b.build();
//! assert!(history.is_well_formed());
//! assert_eq!(history.complete_operations().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod display;
pub mod event;
pub mod history;
pub mod interval;
pub mod op;
pub mod order;
pub mod process;
pub mod similarity;

pub use builder::HistoryBuilder;
pub use event::{Event, EventKind};
pub use history::{History, OpRecord, OpStatus, WellFormedError};
pub use interval::{IntervalHistory, IntervalStep};
pub use op::{OpId, OpValue, Operation};
pub use order::{precedes_all, precedes_complete, RealTimeOrder};
pub use process::ProcessId;
pub use similarity::{similar, SimilarityWitness};
