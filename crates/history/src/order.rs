//! Real-time partial orders over the operations of a history.
//!
//! The paper uses two closely related orders:
//!
//! * `<_E` (Definition 4.2): defined over the *complete* operations of `E`;
//!   `op <_E op'` iff `res(op)` precedes `inv(op')` in `E`.
//! * `≺_E` (Section 7.1): the same relation extended to *all* operations,
//!   complete and pending.
//!
//! Both are irreflexive strict partial orders. Two operations unrelated by the order
//! are *concurrent*.

use crate::history::{History, OpRecord};
use crate::op::OpId;
use std::collections::{BTreeMap, BTreeSet};

/// Returns `true` when `a <_E b` in `history`: both operations are complete and the
/// response of `a` precedes the invocation of `b` (Definition 4.2).
pub fn precedes_complete(history: &History, a: OpId, b: OpId) -> bool {
    let ops: BTreeMap<OpId, OpRecord> = history
        .operations()
        .into_iter()
        .map(|r| (r.id, r))
        .collect();
    match (ops.get(&a), ops.get(&b)) {
        (Some(ra), Some(rb)) => match ra.response_index {
            Some(res_a) => ra.is_complete() && rb.is_complete() && res_a < rb.invocation_index,
            None => false,
        },
        _ => false,
    }
}

/// Returns `true` when `a ≺_E b` in `history`: the response of `a` precedes the
/// invocation of `b` (Section 7.1; `b` may be pending).
pub fn precedes_all(history: &History, a: OpId, b: OpId) -> bool {
    let ops: BTreeMap<OpId, OpRecord> = history
        .operations()
        .into_iter()
        .map(|r| (r.id, r))
        .collect();
    match (ops.get(&a), ops.get(&b)) {
        (Some(ra), Some(rb)) => match ra.response_index {
            Some(res_a) => res_a < rb.invocation_index,
            None => false,
        },
        _ => false,
    }
}

/// Which of the paper's two real-time orders to materialise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderKind {
    /// `<_E`: complete operations only.
    CompleteOnly,
    /// `≺_E`: all operations.
    All,
}

/// A materialised real-time order over the operations of a history.
///
/// The order is represented as the set of ordered pairs `(a, b)` with `a` before `b`;
/// this makes subset tests (`<_E ⊆ <_S`, `≺_{E'} ⊆ ≺_F`) direct, as used by
/// linearizability (Definition 4.2) and similarity (Definition 7.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealTimeOrder {
    pairs: BTreeSet<(OpId, OpId)>,
    ops: BTreeSet<OpId>,
}

impl RealTimeOrder {
    /// Builds `<_E` over the complete operations of `history`.
    pub fn complete_order(history: &History) -> Self {
        Self::build(history, OrderKind::CompleteOnly)
    }

    /// Builds `≺_E` over all (complete and pending) operations of `history`.
    pub fn full_order(history: &History) -> Self {
        Self::build(history, OrderKind::All)
    }

    fn build(history: &History, kind: OrderKind) -> Self {
        let records = history.operations();
        let mut pairs = BTreeSet::new();
        let mut ops = BTreeSet::new();
        for r in &records {
            if kind == OrderKind::CompleteOnly && !r.is_complete() {
                continue;
            }
            ops.insert(r.id);
        }
        for a in &records {
            let Some(res_a) = a.response_index else {
                continue;
            };
            if kind == OrderKind::CompleteOnly && !a.is_complete() {
                continue;
            }
            for b in &records {
                if a.id == b.id {
                    continue;
                }
                if kind == OrderKind::CompleteOnly && !b.is_complete() {
                    continue;
                }
                if res_a < b.invocation_index {
                    pairs.insert((a.id, b.id));
                }
            }
        }
        RealTimeOrder { pairs, ops }
    }

    /// Returns `true` when `a` is ordered before `b`.
    pub fn before(&self, a: OpId, b: OpId) -> bool {
        self.pairs.contains(&(a, b))
    }

    /// Returns `true` when the two operations are concurrent (unordered and distinct).
    pub fn concurrent(&self, a: OpId, b: OpId) -> bool {
        a != b && !self.before(a, b) && !self.before(b, a)
    }

    /// The ordered pairs of the relation.
    pub fn pairs(&self) -> &BTreeSet<(OpId, OpId)> {
        &self.pairs
    }

    /// The operations over which the relation is defined.
    pub fn operations(&self) -> &BTreeSet<OpId> {
        &self.ops
    }

    /// Returns `true` when every pair of `self` is also a pair of `other`
    /// (i.e. `self ⊆ other` as relations).
    pub fn subset_of(&self, other: &RealTimeOrder) -> bool {
        self.pairs.is_subset(&other.pairs)
    }

    /// Returns `true` when the order is total over its operations.
    pub fn is_total(&self) -> bool {
        let ops: Vec<OpId> = self.ops.iter().copied().collect();
        for (i, &a) in ops.iter().enumerate() {
            for &b in &ops[i + 1..] {
                if !self.before(a, b) && !self.before(b, a) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::op::{OpValue, Operation};
    use crate::process::ProcessId;

    /// p1: |--A--|      |--C--|
    /// p2:      |-----B-----|
    fn overlapping() -> (History, OpId, OpId, OpId) {
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p1, Operation::new("Push", OpValue::Int(1)));
        b.respond(a, OpValue::Bool(true));
        let bb = b.invoke(p2, Operation::nullary("Pop"));
        let c = b.invoke(p1, Operation::new("Push", OpValue::Int(2)));
        b.respond(bb, OpValue::Int(1));
        b.respond(c, OpValue::Bool(true));
        (b.build(), a, bb, c)
    }

    #[test]
    fn precedence_and_concurrency() {
        let (h, a, b, c) = overlapping();
        assert!(precedes_complete(&h, a, b));
        assert!(precedes_complete(&h, a, c));
        assert!(!precedes_complete(&h, b, c));
        assert!(!precedes_complete(&h, c, b));
        let order = RealTimeOrder::complete_order(&h);
        assert!(order.before(a, b));
        assert!(order.concurrent(b, c));
        assert!(!order.is_total());
    }

    #[test]
    fn pending_operations_related_only_by_full_order() {
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let mut builder = HistoryBuilder::new();
        let a = builder.invoke(p1, Operation::new("Push", OpValue::Int(1)));
        builder.respond(a, OpValue::Bool(true));
        let pending = builder.invoke(p2, Operation::nullary("Pop"));
        let h = builder.build();

        assert!(!precedes_complete(&h, a, pending));
        assert!(precedes_all(&h, a, pending));

        let complete = RealTimeOrder::complete_order(&h);
        let full = RealTimeOrder::full_order(&h);
        assert!(!complete.operations().contains(&pending));
        assert!(full.operations().contains(&pending));
        assert!(complete.subset_of(&full));
    }

    #[test]
    fn sequential_history_is_total() {
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        b.complete(p, Operation::new("Inc", OpValue::Unit), OpValue::Int(1));
        b.complete(p, Operation::new("Inc", OpValue::Unit), OpValue::Int(2));
        b.complete(p, Operation::nullary("Read"), OpValue::Int(2));
        let order = RealTimeOrder::complete_order(&b.build());
        assert!(order.is_total());
    }

    #[test]
    fn unknown_operations_are_unrelated() {
        let (h, a, _, _) = overlapping();
        assert!(!precedes_complete(&h, a, OpId::new(999)));
        assert!(!precedes_all(&h, OpId::new(999), a));
    }
}
