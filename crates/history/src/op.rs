//! Operation descriptors and values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique identifier of a high-level operation instance.
///
/// The paper assumes every `Apply(op)` is invoked with a distinct input (Section 2), so
/// each operation instance can be identified unambiguously. `OpId` plays that role: it
/// is assigned by the [`HistoryBuilder`](crate::HistoryBuilder) or by the runtime when
/// the operation is invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(u64);

impl OpId {
    /// Creates an operation identifier from a raw value.
    pub fn new(raw: u64) -> Self {
        OpId(raw)
    }

    /// Raw numeric value of the identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// A value exchanged with a concurrent object: an operation argument or a response.
///
/// Values are deliberately dynamic (rather than generic) so that histories of different
/// object types can be manipulated, compared and serialised uniformly by the verifier,
/// which treats the implementation under inspection as a black box.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpValue {
    /// No value (e.g. the argument of `Pop()`).
    Unit,
    /// Boolean value (e.g. the `true` acknowledgement of `Push`).
    Bool(bool),
    /// Signed integer value.
    Int(i64),
    /// Text value.
    Str(String),
    /// The distinguished `empty` response of queues, stacks and priority queues.
    Empty,
    /// An ERROR response produced by a self-enforced implementation.
    Error,
    /// A pair of values.
    Pair(Box<OpValue>, Box<OpValue>),
    /// A list of values.
    List(Vec<OpValue>),
}

impl OpValue {
    /// Convenience constructor for a pair.
    pub fn pair(a: OpValue, b: OpValue) -> Self {
        OpValue::Pair(Box::new(a), Box::new(b))
    }

    /// Returns the integer payload, if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            OpValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            OpValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns `true` when this is the distinguished `Empty` response.
    pub fn is_empty_response(&self) -> bool {
        matches!(self, OpValue::Empty)
    }
}

impl fmt::Display for OpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpValue::Unit => write!(f, "()"),
            OpValue::Bool(b) => write!(f, "{b}"),
            OpValue::Int(i) => write!(f, "{i}"),
            OpValue::Str(s) => write!(f, "{s:?}"),
            OpValue::Empty => write!(f, "empty"),
            OpValue::Error => write!(f, "ERROR"),
            OpValue::Pair(a, b) => write!(f, "({a}, {b})"),
            OpValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for OpValue {
    fn from(value: i64) -> Self {
        OpValue::Int(value)
    }
}

impl From<bool> for OpValue {
    fn from(value: bool) -> Self {
        OpValue::Bool(value)
    }
}

impl From<&str> for OpValue {
    fn from(value: &str) -> Self {
        OpValue::Str(value.to_owned())
    }
}

/// Description of a high-level operation: its name (e.g. `"Enqueue"`) and its argument.
///
/// Following the paper's convention (Section 2), every object exports a single
/// `Apply(op)` entry point, where `op` describes the actual operation being applied.
/// `Operation` is that description.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Operation {
    /// Name of the operation (e.g. `"Enqueue"`, `"Pop"`, `"Read"`).
    pub kind: String,
    /// Argument of the operation.
    pub arg: OpValue,
}

impl Operation {
    /// Creates an operation description with the given kind and argument.
    pub fn new(kind: impl Into<String>, arg: OpValue) -> Self {
        Operation {
            kind: kind.into(),
            arg,
        }
    }

    /// Creates an operation with no argument.
    pub fn nullary(kind: impl Into<String>) -> Self {
        Operation::new(kind, OpValue::Unit)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            OpValue::Unit => write!(f, "{}()", self.kind),
            arg => write!(f, "{}({})", self.kind, arg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_of_values() {
        assert_eq!(OpValue::Int(5).to_string(), "5");
        assert_eq!(OpValue::Empty.to_string(), "empty");
        assert_eq!(
            OpValue::pair(OpValue::Int(1), OpValue::Bool(true)).to_string(),
            "(1, true)"
        );
        assert_eq!(
            OpValue::List(vec![OpValue::Int(1), OpValue::Int(2)]).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn display_of_operations() {
        assert_eq!(Operation::nullary("Pop").to_string(), "Pop()");
        assert_eq!(
            Operation::new("Enqueue", OpValue::Int(1)).to_string(),
            "Enqueue(1)"
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(OpValue::Int(7).as_int(), Some(7));
        assert_eq!(OpValue::Bool(true).as_bool(), Some(true));
        assert_eq!(OpValue::Unit.as_int(), None);
        assert!(OpValue::Empty.is_empty_response());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(OpValue::from(3i64), OpValue::Int(3));
        assert_eq!(OpValue::from(true), OpValue::Bool(true));
        assert_eq!(OpValue::from("x"), OpValue::Str("x".into()));
    }

    #[test]
    fn op_ids_are_ordered() {
        assert!(OpId::new(1) < OpId::new(2));
        assert_eq!(OpId::new(3).raw(), 3);
        assert_eq!(OpId::new(3).to_string(), "op3");
    }
}
