//! Invocation and response events.

use crate::op::{OpId, OpValue, Operation};
use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two kinds of history events.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Invocation of `Apply(op)`.
    Invocation {
        /// Description of the invoked operation.
        op: Operation,
    },
    /// Response from `Apply(op)` with the returned value.
    Response {
        /// Value returned by the operation.
        value: OpValue,
    },
}

/// A single event of a history: an invocation of or a response from a high-level
/// operation, performed by a process (Section 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Event {
    /// Process performing the event.
    pub process: ProcessId,
    /// Identifier of the operation instance this event belongs to.
    pub op_id: OpId,
    /// Whether this is an invocation or a response, and its payload.
    pub kind: EventKind,
}

impl Event {
    /// Creates an invocation event.
    pub fn invocation(process: ProcessId, op_id: OpId, op: Operation) -> Self {
        Event {
            process,
            op_id,
            kind: EventKind::Invocation { op },
        }
    }

    /// Creates a response event.
    pub fn response(process: ProcessId, op_id: OpId, value: OpValue) -> Self {
        Event {
            process,
            op_id,
            kind: EventKind::Response { value },
        }
    }

    /// Returns `true` when this is an invocation event.
    pub fn is_invocation(&self) -> bool {
        matches!(self.kind, EventKind::Invocation { .. })
    }

    /// Returns `true` when this is a response event.
    pub fn is_response(&self) -> bool {
        matches!(self.kind, EventKind::Response { .. })
    }

    /// The operation description, when this is an invocation.
    pub fn operation(&self) -> Option<&Operation> {
        match &self.kind {
            EventKind::Invocation { op } => Some(op),
            EventKind::Response { .. } => None,
        }
    }

    /// The response value, when this is a response.
    pub fn value(&self) -> Option<&OpValue> {
        match &self.kind {
            EventKind::Invocation { .. } => None,
            EventKind::Response { value } => Some(value),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Invocation { op } => {
                write!(f, "inv[{}: {} #{}]", self.process, op, self.op_id)
            }
            EventKind::Response { value } => {
                write!(f, "res[{}: {} #{}]", self.process, value, self.op_id)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = ProcessId::new(0);
        let inv = Event::invocation(p, OpId::new(1), Operation::new("Enqueue", OpValue::Int(1)));
        let res = Event::response(p, OpId::new(1), OpValue::Bool(true));
        assert!(inv.is_invocation());
        assert!(!inv.is_response());
        assert!(res.is_response());
        assert_eq!(inv.operation().unwrap().kind, "Enqueue");
        assert_eq!(res.value().unwrap(), &OpValue::Bool(true));
        assert!(inv.value().is_none());
        assert!(res.operation().is_none());
    }

    #[test]
    fn display() {
        let p = ProcessId::new(1);
        let inv = Event::invocation(p, OpId::new(7), Operation::nullary("Pop"));
        assert!(inv.to_string().contains("Pop()"));
        assert!(inv.to_string().contains("p2"));
    }
}
