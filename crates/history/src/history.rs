//! Finite histories and their basic algebra.

use crate::event::{Event, EventKind};
use crate::op::{OpId, OpValue, Operation};
use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Completion status of an operation within a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpStatus {
    /// Both invocation and response appear in the history.
    Complete,
    /// Only the invocation appears in the history.
    Pending,
}

/// A per-operation summary extracted from a history: the invoking process, the
/// operation description, the positions of its invocation/response events and the
/// response value (if the operation is complete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Operation instance identifier.
    pub id: OpId,
    /// Invoking process.
    pub process: ProcessId,
    /// Operation description.
    pub operation: Operation,
    /// Index of the invocation event in the history.
    pub invocation_index: usize,
    /// Index of the response event in the history, when complete.
    pub response_index: Option<usize>,
    /// Response value, when complete.
    pub response: Option<OpValue>,
}

impl OpRecord {
    /// Completion status of the operation.
    pub fn status(&self) -> OpStatus {
        if self.response_index.is_some() {
            OpStatus::Complete
        } else {
            OpStatus::Pending
        }
    }

    /// Returns `true` when the operation is complete.
    pub fn is_complete(&self) -> bool {
        self.status() == OpStatus::Complete
    }
}

/// Why a sequence of events fails to be a well-formed history (Section 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// A response appears whose operation was never invoked before it.
    ResponseWithoutInvocation {
        /// Offending event index.
        index: usize,
        /// Operation identifier of the response.
        op: OpId,
    },
    /// A process invokes a new operation while a previous one of its operations is
    /// still pending (violates per-process sequentiality).
    OverlappingInvocations {
        /// Offending event index.
        index: usize,
        /// Process that violated sequentiality.
        process: ProcessId,
    },
    /// The same operation identifier is invoked twice.
    DuplicateInvocation {
        /// Offending event index.
        index: usize,
        /// Duplicated operation identifier.
        op: OpId,
    },
    /// The same operation receives two responses.
    DuplicateResponse {
        /// Offending event index.
        index: usize,
        /// Operation identifier responded to twice.
        op: OpId,
    },
    /// A response is attributed to a different process than its invocation.
    ProcessMismatch {
        /// Offending event index.
        index: usize,
        /// Operation identifier with mismatched processes.
        op: OpId,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::ResponseWithoutInvocation { index, op } => {
                write!(
                    f,
                    "event {index}: response to {op} without a prior invocation"
                )
            }
            WellFormedError::OverlappingInvocations { index, process } => {
                write!(
                    f,
                    "event {index}: {process} invoked an operation while another was pending"
                )
            }
            WellFormedError::DuplicateInvocation { index, op } => {
                write!(f, "event {index}: duplicate invocation of {op}")
            }
            WellFormedError::DuplicateResponse { index, op } => {
                write!(f, "event {index}: duplicate response for {op}")
            }
            WellFormedError::ProcessMismatch { index, op } => {
                write!(
                    f,
                    "event {index}: response to {op} by a different process than its invocation"
                )
            }
        }
    }
}

impl std::error::Error for WellFormedError {}

/// A finite history: a sequence of invocation and response events (Section 2).
///
/// Histories are the only information a verifier can obtain from a black-box
/// implementation. All of the paper's correctness machinery (linearizability,
/// similarity, the `GenLin` family, views and sketches) is defined over histories.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// Creates a history from a sequence of events.
    ///
    /// The events are not checked for well-formedness; use [`History::check_well_formed`]
    /// or [`History::is_well_formed`] for that.
    pub fn from_events(events: Vec<Event>) -> Self {
        History { events }
    }

    /// The events of the history, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events in the history.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event to the history.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Checks the well-formedness conditions of Section 2 and reports the first
    /// violation found, if any.
    ///
    /// A history is well formed when (1) each process is sequential — it invokes a new
    /// operation only after its previous one has responded — and (2) every response is
    /// preceded by a matching invocation of the same operation by the same process.
    pub fn check_well_formed(&self) -> Result<(), WellFormedError> {
        let mut pending_by_process: BTreeMap<ProcessId, OpId> = BTreeMap::new();
        let mut seen_invocations: BTreeSet<OpId> = BTreeSet::new();
        let mut seen_responses: BTreeSet<OpId> = BTreeSet::new();
        let mut invoking_process: BTreeMap<OpId, ProcessId> = BTreeMap::new();

        for (index, event) in self.events.iter().enumerate() {
            match &event.kind {
                EventKind::Invocation { .. } => {
                    if seen_invocations.contains(&event.op_id) {
                        return Err(WellFormedError::DuplicateInvocation {
                            index,
                            op: event.op_id,
                        });
                    }
                    if pending_by_process.contains_key(&event.process) {
                        return Err(WellFormedError::OverlappingInvocations {
                            index,
                            process: event.process,
                        });
                    }
                    seen_invocations.insert(event.op_id);
                    invoking_process.insert(event.op_id, event.process);
                    pending_by_process.insert(event.process, event.op_id);
                }
                EventKind::Response { .. } => {
                    if !seen_invocations.contains(&event.op_id) {
                        return Err(WellFormedError::ResponseWithoutInvocation {
                            index,
                            op: event.op_id,
                        });
                    }
                    if seen_responses.contains(&event.op_id) {
                        return Err(WellFormedError::DuplicateResponse {
                            index,
                            op: event.op_id,
                        });
                    }
                    if invoking_process.get(&event.op_id) != Some(&event.process) {
                        return Err(WellFormedError::ProcessMismatch {
                            index,
                            op: event.op_id,
                        });
                    }
                    seen_responses.insert(event.op_id);
                    pending_by_process.remove(&event.process);
                }
            }
        }
        Ok(())
    }

    /// Returns `true` when the history is well formed (Section 2).
    pub fn is_well_formed(&self) -> bool {
        self.check_well_formed().is_ok()
    }

    /// Per-operation records, keyed by operation identifier, in invocation order.
    pub fn operations(&self) -> Vec<OpRecord> {
        let mut records: Vec<OpRecord> = Vec::new();
        let mut index_of: BTreeMap<OpId, usize> = BTreeMap::new();
        for (i, event) in self.events.iter().enumerate() {
            match &event.kind {
                EventKind::Invocation { op } => {
                    index_of.insert(event.op_id, records.len());
                    records.push(OpRecord {
                        id: event.op_id,
                        process: event.process,
                        operation: op.clone(),
                        invocation_index: i,
                        response_index: None,
                        response: None,
                    });
                }
                EventKind::Response { value } => {
                    if let Some(&slot) = index_of.get(&event.op_id) {
                        records[slot].response_index = Some(i);
                        records[slot].response = Some(value.clone());
                    }
                }
            }
        }
        records
    }

    /// Record of a single operation, if it appears in the history.
    pub fn operation(&self, id: OpId) -> Option<OpRecord> {
        self.operations().into_iter().find(|r| r.id == id)
    }

    /// Iterator over the complete operations of the history.
    pub fn complete_operations(&self) -> impl Iterator<Item = OpRecord> {
        self.operations().into_iter().filter(|r| r.is_complete())
    }

    /// Iterator over the pending operations of the history.
    pub fn pending_operations(&self) -> impl Iterator<Item = OpRecord> {
        self.operations().into_iter().filter(|r| !r.is_complete())
    }

    /// `comp(E)`: the history obtained by removing the invocations of all pending
    /// operations (Section 4).
    pub fn completed(&self) -> History {
        let pending: BTreeSet<OpId> = self.pending_operations().map(|r| r.id).collect();
        History {
            events: self
                .events
                .iter()
                .filter(|e| !pending.contains(&e.op_id))
                .cloned()
                .collect(),
        }
    }

    /// `E|p_i`: the subsequence of events performed by `process` (Section 4).
    pub fn project(&self, process: ProcessId) -> History {
        History {
            events: self
                .events
                .iter()
                .filter(|e| e.process == process)
                .cloned()
                .collect(),
        }
    }

    /// The set of processes that appear in the history.
    pub fn processes(&self) -> BTreeSet<ProcessId> {
        self.events.iter().map(|e| e.process).collect()
    }

    /// Two histories are *equivalent* when every process performs the same sequence of
    /// invocations and responses in both (Section 4).
    pub fn equivalent(&self, other: &History) -> bool {
        let procs: BTreeSet<ProcessId> = self
            .processes()
            .union(&other.processes())
            .copied()
            .collect();
        procs.iter().all(|&p| {
            let a = self.project(p);
            let b = other.project(p);
            a.events == b.events
        })
    }

    /// An *extension* of `self` appends responses to some pending operations
    /// (Section 4). `responses` maps pending operation identifiers to the appended
    /// response values.
    ///
    /// # Errors
    ///
    /// Returns an error naming the offending operation if any identifier in
    /// `responses` is not a pending operation of the history.
    pub fn extend_with_responses(
        &self,
        responses: &BTreeMap<OpId, OpValue>,
    ) -> Result<History, OpId> {
        let pending: BTreeMap<OpId, OpRecord> =
            self.pending_operations().map(|r| (r.id, r)).collect();
        for id in responses.keys() {
            if !pending.contains_key(id) {
                return Err(*id);
            }
        }
        let mut extended = self.clone();
        for (id, value) in responses {
            let record = &pending[id];
            extended.push(Event::response(record.process, *id, value.clone()));
        }
        Ok(extended)
    }

    /// Removes the invocations of the given pending operations, returning the reduced
    /// history. Identifiers of operations that are not pending are ignored.
    pub fn remove_pending(&self, ops: &BTreeSet<OpId>) -> History {
        let pending: BTreeSet<OpId> = self.pending_operations().map(|r| r.id).collect();
        let to_remove: BTreeSet<OpId> = ops.intersection(&pending).copied().collect();
        History {
            events: self
                .events
                .iter()
                .filter(|e| !to_remove.contains(&e.op_id))
                .cloned()
                .collect(),
        }
    }

    /// The prefix of the history with the first `len` events.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the number of events.
    pub fn prefix(&self, len: usize) -> History {
        History {
            events: self.events[..len].to_vec(),
        }
    }

    /// Iterator over all prefixes of the history, from the empty history to the full
    /// history.
    pub fn prefixes(&self) -> impl Iterator<Item = History> + '_ {
        (0..=self.events.len()).map(move |len| self.prefix(len))
    }

    /// Returns `true` when the history is *sequential*: the real-time order `<_E` over
    /// its complete operations is total and no operation is pending (Section 4).
    pub fn is_sequential(&self) -> bool {
        if self.pending_operations().next().is_some() {
            return false;
        }
        // Sequential ⇔ events strictly alternate inv/res of the same operation.
        let mut iter = self.events.iter();
        while let Some(inv) = iter.next() {
            if !inv.is_invocation() {
                return false;
            }
            match iter.next() {
                Some(res) if res.is_response() && res.op_id == inv.op_id => {}
                _ => return false,
            }
        }
        true
    }

    /// Concatenates two histories.
    pub fn concat(&self, other: &History) -> History {
        let mut events = self.events.clone();
        events.extend(other.events.iter().cloned());
        History { events }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

impl FromIterator<Event> for History {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        History {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;

    fn sample() -> History {
        // p1: Enqueue(1):true ; p2: Dequeue():1 overlapping.
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let mut b = HistoryBuilder::new();
        let enq = b.invoke(p1, Operation::new("Enqueue", OpValue::Int(1)));
        let deq = b.invoke(p2, Operation::nullary("Dequeue"));
        b.respond(enq, OpValue::Bool(true));
        b.respond(deq, OpValue::Int(1));
        b.build()
    }

    #[test]
    fn well_formedness_of_sample() {
        assert!(sample().is_well_formed());
    }

    #[test]
    fn detects_overlapping_invocations_by_one_process() {
        let p = ProcessId::new(0);
        let mut h = History::new();
        h.push(Event::invocation(
            p,
            OpId::new(0),
            Operation::nullary("Pop"),
        ));
        h.push(Event::invocation(
            p,
            OpId::new(1),
            Operation::nullary("Pop"),
        ));
        assert!(matches!(
            h.check_well_formed(),
            Err(WellFormedError::OverlappingInvocations { .. })
        ));
    }

    #[test]
    fn detects_response_without_invocation() {
        let p = ProcessId::new(0);
        let mut h = History::new();
        h.push(Event::response(p, OpId::new(0), OpValue::Unit));
        assert!(matches!(
            h.check_well_formed(),
            Err(WellFormedError::ResponseWithoutInvocation { .. })
        ));
    }

    #[test]
    fn detects_duplicate_invocation_and_response() {
        let p = ProcessId::new(0);
        let q = ProcessId::new(1);
        let mut h = History::new();
        h.push(Event::invocation(
            p,
            OpId::new(0),
            Operation::nullary("Pop"),
        ));
        h.push(Event::invocation(
            q,
            OpId::new(0),
            Operation::nullary("Pop"),
        ));
        assert!(matches!(
            h.check_well_formed(),
            Err(WellFormedError::DuplicateInvocation { .. })
        ));

        let mut h = History::new();
        h.push(Event::invocation(
            p,
            OpId::new(0),
            Operation::nullary("Pop"),
        ));
        h.push(Event::response(p, OpId::new(0), OpValue::Empty));
        h.push(Event::invocation(
            p,
            OpId::new(1),
            Operation::nullary("Pop"),
        ));
        h.push(Event::response(p, OpId::new(0), OpValue::Empty));
        assert!(matches!(
            h.check_well_formed(),
            Err(WellFormedError::DuplicateResponse { .. })
        ));
    }

    #[test]
    fn detects_process_mismatch() {
        let p = ProcessId::new(0);
        let q = ProcessId::new(1);
        let mut h = History::new();
        h.push(Event::invocation(
            p,
            OpId::new(0),
            Operation::nullary("Pop"),
        ));
        h.push(Event::response(q, OpId::new(0), OpValue::Empty));
        assert!(matches!(
            h.check_well_formed(),
            Err(WellFormedError::ProcessMismatch { .. })
        ));
    }

    #[test]
    fn complete_and_pending_operations() {
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p1, Operation::new("Enqueue", OpValue::Int(1)));
        let _pending = b.invoke(p2, Operation::nullary("Dequeue"));
        b.respond(a, OpValue::Bool(true));
        let h = b.build();
        assert_eq!(h.complete_operations().count(), 1);
        assert_eq!(h.pending_operations().count(), 1);
        let comp = h.completed();
        assert_eq!(comp.len(), 2);
        assert_eq!(comp.pending_operations().count(), 0);
    }

    #[test]
    fn projection_and_equivalence() {
        let h = sample();
        let p1 = ProcessId::new(0);
        assert_eq!(h.project(p1).len(), 2);
        assert!(h.equivalent(&h));

        // Reordering events of different processes preserves equivalence.
        let mut events = h.events().to_vec();
        events.swap(0, 1);
        let g = History::from_events(events);
        assert!(h.equivalent(&g));
    }

    #[test]
    fn extension_appends_responses_to_pending_only() {
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        let pending = b.invoke(p, Operation::nullary("Pop"));
        let h = b.build();
        let mut resp = BTreeMap::new();
        resp.insert(pending, OpValue::Int(3));
        let ext = h.extend_with_responses(&resp).unwrap();
        assert_eq!(ext.complete_operations().count(), 1);

        let mut bad = BTreeMap::new();
        bad.insert(OpId::new(99), OpValue::Int(3));
        assert_eq!(h.extend_with_responses(&bad), Err(OpId::new(99)));
    }

    #[test]
    fn sequential_detection() {
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p, Operation::new("Push", OpValue::Int(1)));
        b.respond(a, OpValue::Bool(true));
        let c = b.invoke(p, Operation::nullary("Pop"));
        b.respond(c, OpValue::Int(1));
        assert!(b.build().is_sequential());
        assert!(!sample().is_sequential());
    }

    #[test]
    fn prefixes_enumerated() {
        let h = sample();
        assert_eq!(h.prefixes().count(), h.len() + 1);
        assert!(h.prefix(0).is_empty());
        assert_eq!(h.prefix(h.len()), h);
    }

    #[test]
    fn remove_pending_only_touches_pending_ops() {
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p1, Operation::new("Enqueue", OpValue::Int(1)));
        let pend = b.invoke(p2, Operation::nullary("Dequeue"));
        b.respond(a, OpValue::Bool(true));
        let h = b.build();
        let mut set = BTreeSet::new();
        set.insert(pend);
        set.insert(a); // complete: must be ignored
        let reduced = h.remove_pending(&set);
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced.pending_operations().count(), 0);
    }
}
