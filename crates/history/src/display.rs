//! ASCII timeline rendering of histories, in the style of the paper's figures.
//!
//! Each process gets one line; each operation is drawn as an interval
//! `|--- Op(arg):resp ---|` positioned by the indices of its invocation and response
//! events. Pending operations are drawn with an open right end.

use crate::history::History;

/// Renders a history as an ASCII timeline, one line per process.
///
/// ```
/// use linrv_history::{HistoryBuilder, Operation, OpValue, ProcessId, display};
/// let mut b = HistoryBuilder::new();
/// let a = b.invoke(ProcessId::new(0), Operation::new("Push", OpValue::Int(1)));
/// b.respond(a, OpValue::Bool(true));
/// let text = display::render_timeline(&b.build());
/// assert!(text.contains("Push(1):true"));
/// ```
pub fn render_timeline(history: &History) -> String {
    const CELL: usize = 4;
    let records = history.operations();
    let n_events = history.len().max(1);
    let width = n_events * CELL + 2;

    let mut processes: Vec<_> = history.processes().into_iter().collect();
    processes.sort();

    let mut out = String::new();
    for p in processes {
        let mut line: Vec<char> = vec![' '; width];
        let mut labels: Vec<(usize, String)> = Vec::new();
        for r in records.iter().filter(|r| r.process == p) {
            let start = r.invocation_index * CELL;
            let end = match r.response_index {
                Some(idx) => idx * CELL + CELL - 1,
                None => width - 1,
            };
            line[start] = '|';
            for cell in line.iter_mut().take(end.min(width - 1)).skip(start + 1) {
                *cell = '-';
            }
            if r.response_index.is_some() {
                line[end.min(width - 1)] = '|';
            } else {
                line[width - 1] = '>';
            }
            let label = match &r.response {
                Some(v) => format!("{}:{}", r.operation, v),
                None => format!("{}:…", r.operation),
            };
            labels.push((start, label));
        }
        let mut label_line: Vec<char> = vec![' '; width + 40];
        for (start, label) in labels {
            for (i, ch) in label.chars().enumerate() {
                if start + 1 + i < label_line.len() {
                    label_line[start + 1 + i] = ch;
                }
            }
        }
        out.push_str(&format!("{p}: "));
        out.push_str(&line.iter().collect::<String>());
        out.push('\n');
        out.push_str("    ");
        out.push_str(label_line.iter().collect::<String>().trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::op::{OpValue, Operation};
    use crate::process::ProcessId;

    #[test]
    fn renders_each_process_on_its_own_line() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(ProcessId::new(0), Operation::new("Push", OpValue::Int(1)));
        let c = b.invoke(ProcessId::new(1), Operation::nullary("Pop"));
        b.respond(c, OpValue::Int(1));
        b.respond(a, OpValue::Bool(true));
        let text = render_timeline(&b.build());
        assert!(text.contains("p1:"));
        assert!(text.contains("p2:"));
        assert!(text.contains("Push(1):true"));
        assert!(text.contains("Pop():1"));
    }

    #[test]
    fn pending_operations_render_with_open_end() {
        let mut b = HistoryBuilder::new();
        b.invoke(ProcessId::new(0), Operation::nullary("Pop"));
        let text = render_timeline(&b.build());
        assert!(text.contains('>'));
        assert!(text.contains("Pop():…"));
    }

    #[test]
    fn empty_history_renders_empty_string() {
        assert_eq!(render_timeline(&History::new()), "");
    }
}
