//! Process identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one of the `n` asynchronous processes `p_1, …, p_n` of the system
/// (Section 2 of the paper). Internally zero-based.
///
/// ```
/// use linrv_history::ProcessId;
/// let p = ProcessId::new(2);
/// assert_eq!(p.index(), 2);
/// assert_eq!(p.to_string(), "p3"); // paper numbering is one-based
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// Creates a process identifier from a zero-based index.
    pub fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Zero-based index of the process.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All process identifiers `p_0 … p_{n-1}` for a system of `n` processes.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n as u32).map(ProcessId)
    }
}

impl From<u32> for ProcessId {
    fn from(value: u32) -> Self {
        ProcessId(value)
    }
}

impl From<usize> for ProcessId {
    fn from(value: usize) -> Self {
        ProcessId(value as u32)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper numbers processes from one (p1, p2, …).
        write!(f, "p{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(9).to_string(), "p10");
    }

    #[test]
    fn all_enumerates_n_processes() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[3].index(), 3);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(3u32), ProcessId::new(3));
        assert_eq!(ProcessId::from(5usize), ProcessId::new(5));
    }
}
