//! Typed constructors for the operations of each object.
//!
//! These helpers keep operation names consistent between specifications, concurrent
//! implementations and workload generators (e.g. `"Enqueue"` vs `"enqueue"`).

use linrv_history::{OpValue, Operation};

/// Queue operations.
pub mod queue {
    use super::*;

    /// `Enqueue(v)` — always acknowledged with `true`.
    pub fn enqueue(v: i64) -> Operation {
        Operation::new("Enqueue", OpValue::Int(v))
    }

    /// `Dequeue()` — returns the oldest element or `empty`.
    pub fn dequeue() -> Operation {
        Operation::nullary("Dequeue")
    }
}

/// Stack operations.
pub mod stack {
    use super::*;

    /// `Push(v)` — always acknowledged with `true`.
    pub fn push(v: i64) -> Operation {
        Operation::new("Push", OpValue::Int(v))
    }

    /// `Pop()` — returns the newest element or `empty`.
    pub fn pop() -> Operation {
        Operation::nullary("Pop")
    }
}

/// Set operations.
pub mod set {
    use super::*;

    /// `Add(v)` — returns `true` when `v` was not present.
    pub fn add(v: i64) -> Operation {
        Operation::new("Add", OpValue::Int(v))
    }

    /// `Remove(v)` — returns `true` when `v` was present.
    pub fn remove(v: i64) -> Operation {
        Operation::new("Remove", OpValue::Int(v))
    }

    /// `Contains(v)` — returns whether `v` is present.
    pub fn contains(v: i64) -> Operation {
        Operation::new("Contains", OpValue::Int(v))
    }
}

/// Priority-queue operations.
pub mod priority_queue {
    use super::*;

    /// `Insert(v)` — always acknowledged with `true`.
    pub fn insert(v: i64) -> Operation {
        Operation::new("Insert", OpValue::Int(v))
    }

    /// `ExtractMin()` — returns the minimum element or `empty`.
    pub fn extract_min() -> Operation {
        Operation::nullary("ExtractMin")
    }
}

/// Counter operations.
pub mod counter {
    use super::*;

    /// `Inc()` — returns the value of the counter *before* the increment
    /// (fetch-and-increment).
    pub fn inc() -> Operation {
        Operation::nullary("Inc")
    }

    /// `Read()` — returns the current value.
    pub fn read() -> Operation {
        Operation::nullary("Read")
    }
}

/// Register operations.
pub mod register {
    use super::*;

    /// `Write(v)` — acknowledged with `true`.
    pub fn write(v: i64) -> Operation {
        Operation::new("Write", OpValue::Int(v))
    }

    /// `Read()` — returns the last written value (initially `0`).
    pub fn read() -> Operation {
        Operation::nullary("Read")
    }
}

/// Consensus operations.
pub mod consensus {
    use super::*;

    /// `Decide(v)` — every invocation returns the value proposed by the first
    /// `Decide` in the execution (the object "locks in" the first proposal).
    pub fn decide(v: i64) -> Operation {
        Operation::new("Decide", OpValue::Int(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_expected_names() {
        assert_eq!(queue::enqueue(1).kind, "Enqueue");
        assert_eq!(queue::dequeue().kind, "Dequeue");
        assert_eq!(stack::push(1).kind, "Push");
        assert_eq!(stack::pop().kind, "Pop");
        assert_eq!(set::add(1).kind, "Add");
        assert_eq!(set::remove(1).kind, "Remove");
        assert_eq!(set::contains(1).kind, "Contains");
        assert_eq!(priority_queue::insert(1).kind, "Insert");
        assert_eq!(priority_queue::extract_min().kind, "ExtractMin");
        assert_eq!(counter::inc().kind, "Inc");
        assert_eq!(counter::read().kind, "Read");
        assert_eq!(register::write(1).kind, "Write");
        assert_eq!(register::read().kind, "Read");
        assert_eq!(consensus::decide(1).kind, "Decide");
    }
}
