//! Sequential set specification.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};
use std::collections::BTreeSet;

/// Sequential specification of an integer set.
///
/// * `Add(v)` inserts `v`, responding `true` when `v` was absent and `false` otherwise.
/// * `Remove(v)` removes `v`, responding `true` when `v` was present.
/// * `Contains(v)` responds whether `v` is present.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetSpec;

impl SetSpec {
    /// Creates the set specification.
    pub fn new() -> Self {
        SetSpec
    }

    fn int_arg(operation: &Operation) -> Result<i64, SpecError> {
        operation
            .arg
            .as_int()
            .ok_or_else(|| SpecError::InvalidArgument {
                operation: operation.kind.clone(),
                reason: "expected an integer argument".into(),
            })
    }
}

impl SequentialSpec for SetSpec {
    type State = BTreeSet<i64>;

    fn kind(&self) -> ObjectKind {
        ObjectKind::Set
    }

    fn initial_state(&self) -> Self::State {
        BTreeSet::new()
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Add" => {
                let v = Self::int_arg(operation)?;
                let mut next = state.clone();
                let added = next.insert(v);
                Ok(vec![(next, OpValue::Bool(added))])
            }
            "Remove" => {
                let v = Self::int_arg(operation)?;
                let mut next = state.clone();
                let removed = next.remove(&v);
                Ok(vec![(next, OpValue::Bool(removed))])
            }
            "Contains" => {
                let v = Self::int_arg(operation)?;
                Ok(vec![(state.clone(), OpValue::Bool(state.contains(&v)))])
            }
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::set as ops;

    #[test]
    fn add_remove_contains() {
        let spec = SetSpec::new();
        let s0 = spec.initial_state();
        let (s1, r) = spec.step_deterministic(&s0, &ops::add(3)).unwrap();
        assert_eq!(r, OpValue::Bool(true));
        let (_, r) = spec.step_deterministic(&s1, &ops::add(3)).unwrap();
        assert_eq!(r, OpValue::Bool(false));
        let (_, r) = spec.step_deterministic(&s1, &ops::contains(3)).unwrap();
        assert_eq!(r, OpValue::Bool(true));
        let (s2, r) = spec.step_deterministic(&s1, &ops::remove(3)).unwrap();
        assert_eq!(r, OpValue::Bool(true));
        let (_, r) = spec.step_deterministic(&s2, &ops::remove(3)).unwrap();
        assert_eq!(r, OpValue::Bool(false));
    }

    #[test]
    fn unknown_and_invalid_operations() {
        let spec = SetSpec::new();
        assert!(spec
            .step(&spec.initial_state(), &Operation::nullary("Pop"))
            .is_err());
        assert!(spec
            .step(&spec.initial_state(), &Operation::nullary("Add"))
            .is_err());
    }
}
