//! The consensus problem modelled as a sequential object.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};

/// Consensus modelled as a sequential object, as in the proof of Theorem 5.1:
/// the object exports a single `Decide(v)` operation that "can be invoked several
/// times, and the first operation among all processes sets its input as the decision".
/// Every `Decide`, including the first, responds with the decided value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsensusSpec;

impl ConsensusSpec {
    /// Creates the consensus specification.
    pub fn new() -> Self {
        ConsensusSpec
    }
}

impl SequentialSpec for ConsensusSpec {
    /// `None` until the first `Decide` fixes the decision value.
    type State = Option<i64>;

    fn kind(&self) -> ObjectKind {
        ObjectKind::Consensus
    }

    fn initial_state(&self) -> Self::State {
        None
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Decide" => {
                let proposal =
                    operation
                        .arg
                        .as_int()
                        .ok_or_else(|| SpecError::InvalidArgument {
                            operation: operation.kind.clone(),
                            reason: "expected an integer proposal".into(),
                        })?;
                match state {
                    None => Ok(vec![(Some(proposal), OpValue::Int(proposal))]),
                    Some(decided) => Ok(vec![(Some(*decided), OpValue::Int(*decided))]),
                }
            }
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::consensus as ops;

    #[test]
    fn first_proposal_wins_and_sticks() {
        let spec = ConsensusSpec::new();
        let s0 = spec.initial_state();
        let (s1, r1) = spec.step_deterministic(&s0, &ops::decide(7)).unwrap();
        let (_, r2) = spec.step_deterministic(&s1, &ops::decide(9)).unwrap();
        assert_eq!(r1, OpValue::Int(7));
        assert_eq!(r2, OpValue::Int(7));
    }

    #[test]
    fn validity_a_solo_run_decides_its_own_input() {
        // Section 10: "for consensus it is impossible to detect [from (input, output)
        // pairs alone] when a process ran solo and decided a value distinct from its
        // input". The sequential spec itself enforces validity.
        let spec = ConsensusSpec::new();
        let s0 = spec.initial_state();
        assert!(spec
            .accepts(&s0, &ops::decide(3), &OpValue::Int(5))
            .is_none());
        assert!(spec
            .accepts(&s0, &ops::decide(3), &OpValue::Int(3))
            .is_some());
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let spec = ConsensusSpec::new();
        assert!(spec.step(&None, &Operation::nullary("Read")).is_err());
    }
}
