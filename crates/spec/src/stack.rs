//! Sequential LIFO stack specification.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};

/// Sequential specification of a LIFO stack.
///
/// * `Push(v)` pushes `v` and responds `true`.
/// * `Pop()` removes and returns the newest element, or responds `empty` when the
///   stack holds no elements.
///
/// The stack is the object of Figures 1 and 3 in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackSpec;

impl StackSpec {
    /// Creates the stack specification.
    pub fn new() -> Self {
        StackSpec
    }
}

impl SequentialSpec for StackSpec {
    type State = Vec<i64>;

    fn kind(&self) -> ObjectKind {
        ObjectKind::Stack
    }

    fn initial_state(&self) -> Self::State {
        Vec::new()
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Push" => {
                let v = operation
                    .arg
                    .as_int()
                    .ok_or_else(|| SpecError::InvalidArgument {
                        operation: operation.kind.clone(),
                        reason: "expected an integer argument".into(),
                    })?;
                let mut next = state.clone();
                next.push(v);
                Ok(vec![(next, OpValue::Bool(true))])
            }
            "Pop" => {
                let mut next = state.clone();
                match next.pop() {
                    Some(v) => Ok(vec![(next, OpValue::Int(v))]),
                    None => Ok(vec![(state.clone(), OpValue::Empty)]),
                }
            }
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::stack as ops;

    #[test]
    fn lifo_order() {
        let spec = StackSpec::new();
        let s0 = spec.initial_state();
        let (s1, _) = spec.step_deterministic(&s0, &ops::push(1)).unwrap();
        let (s2, _) = spec.step_deterministic(&s1, &ops::push(2)).unwrap();
        let (s3, r1) = spec.step_deterministic(&s2, &ops::pop()).unwrap();
        let (_, r2) = spec.step_deterministic(&s3, &ops::pop()).unwrap();
        assert_eq!(r1, OpValue::Int(2));
        assert_eq!(r2, OpValue::Int(1));
    }

    #[test]
    fn pop_on_empty_returns_empty() {
        let spec = StackSpec::new();
        let (_, r) = spec
            .step_deterministic(&spec.initial_state(), &ops::pop())
            .unwrap();
        assert_eq!(r, OpValue::Empty);
    }

    #[test]
    fn figure_3_top_linearization_is_a_sequential_history() {
        // ⟨Push(2):true⟩⟨Push(1):true⟩⟨Pop():1⟩⟨Pop():2⟩ — the linearization given in
        // the caption of Figure 3 (top).
        use linrv_history::{HistoryBuilder, ProcessId};
        let spec = StackSpec::new();
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        b.complete(p, ops::push(2), OpValue::Bool(true));
        b.complete(p, ops::push(1), OpValue::Bool(true));
        b.complete(p, ops::pop(), OpValue::Int(1));
        b.complete(p, ops::pop(), OpValue::Int(2));
        assert!(spec.accepts_sequential_history(&b.build()));
    }

    #[test]
    fn pop_empty_on_nonempty_stack_is_rejected() {
        // The caption of Figure 3 (bottom): the stack cannot be empty when Pop():empty
        // starts, so no sequential history may return empty while an element remains.
        let spec = StackSpec::new();
        let (s1, _) = spec
            .step_deterministic(&spec.initial_state(), &ops::push(1))
            .unwrap();
        assert!(spec.accepts(&s1, &ops::pop(), &OpValue::Empty).is_none());
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let spec = StackSpec::new();
        assert!(spec
            .step(&spec.initial_state(), &Operation::nullary("Dequeue"))
            .is_err());
    }
}
