//! Sequential min-priority-queue specification.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};
use std::collections::BTreeMap;

/// Sequential specification of a min-priority queue over integers (duplicates allowed).
///
/// * `Insert(v)` inserts `v` and responds `true`.
/// * `ExtractMin()` removes and returns the smallest element, or responds `empty`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityQueueSpec;

impl PriorityQueueSpec {
    /// Creates the priority-queue specification.
    pub fn new() -> Self {
        PriorityQueueSpec
    }
}

impl SequentialSpec for PriorityQueueSpec {
    // Multiset of elements: value → multiplicity.
    type State = BTreeMap<i64, u32>;

    fn kind(&self) -> ObjectKind {
        ObjectKind::PriorityQueue
    }

    fn initial_state(&self) -> Self::State {
        BTreeMap::new()
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Insert" => {
                let v = operation
                    .arg
                    .as_int()
                    .ok_or_else(|| SpecError::InvalidArgument {
                        operation: operation.kind.clone(),
                        reason: "expected an integer argument".into(),
                    })?;
                let mut next = state.clone();
                *next.entry(v).or_insert(0) += 1;
                Ok(vec![(next, OpValue::Bool(true))])
            }
            "ExtractMin" => {
                let mut next = state.clone();
                match next.keys().next().copied() {
                    Some(min) => {
                        let count = next.get_mut(&min).expect("key exists");
                        *count -= 1;
                        if *count == 0 {
                            next.remove(&min);
                        }
                        Ok(vec![(next, OpValue::Int(min))])
                    }
                    None => Ok(vec![(state.clone(), OpValue::Empty)]),
                }
            }
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::priority_queue as ops;

    #[test]
    fn extract_min_returns_smallest() {
        let spec = PriorityQueueSpec::new();
        let s0 = spec.initial_state();
        let (s1, _) = spec.step_deterministic(&s0, &ops::insert(5)).unwrap();
        let (s2, _) = spec.step_deterministic(&s1, &ops::insert(2)).unwrap();
        let (s3, _) = spec.step_deterministic(&s2, &ops::insert(2)).unwrap();
        let (s4, r1) = spec.step_deterministic(&s3, &ops::extract_min()).unwrap();
        let (s5, r2) = spec.step_deterministic(&s4, &ops::extract_min()).unwrap();
        let (_, r3) = spec.step_deterministic(&s5, &ops::extract_min()).unwrap();
        assert_eq!(r1, OpValue::Int(2));
        assert_eq!(r2, OpValue::Int(2));
        assert_eq!(r3, OpValue::Int(5));
    }

    #[test]
    fn extract_on_empty_returns_empty() {
        let spec = PriorityQueueSpec::new();
        let (_, r) = spec
            .step_deterministic(&spec.initial_state(), &ops::extract_min())
            .unwrap();
        assert_eq!(r, OpValue::Empty);
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let spec = PriorityQueueSpec::new();
        assert!(spec
            .step(&spec.initial_state(), &Operation::nullary("Dequeue"))
            .is_err());
    }
}
