//! The typed operation layer: compile-time-safe operations over the untyped
//! `Operation`/`OpValue` wire format.
//!
//! The paper's constructions treat the object under inspection as a black box, so
//! the wire layer ([`Operation`], [`OpValue`]) is deliberately dynamic. Call sites,
//! however, should not be stringly typed: this module pairs every specification
//! with a set of *typed operations* — one zero-cost struct per operation, carrying
//! its argument and knowing its precise response type.
//!
//! Three traits tie the layer together:
//!
//! * [`TypedOp`] — an operation that can encode itself to the wire format, decode
//!   itself back (losslessly), and decode/encode its response;
//! * [`TypedObject`] — a specification whose interface is covered by typed
//!   operations, with [`TypedObject::Op`] as the uniform enumeration of them;
//! * [`OpFor`] — the marker connecting each typed operation to the specifications
//!   it belongs to (this is what makes `session.apply(stack::Pop)` on a queue
//!   session a *compile-time* error in the facade crate).
//!
//! ```
//! use linrv_spec::typed::{queue, TypedOp};
//!
//! let op = queue::Enqueue(7);
//! let wire = op.encode();
//! assert_eq!(wire.to_string(), "Enqueue(7)");
//! assert_eq!(queue::Enqueue::try_decode(&wire), Ok(op));
//! ```

use crate::{
    ConsensusSpec, CounterSpec, PriorityQueueSpec, QueueSpec, RegisterSpec, SequentialSpec,
    SetSpec, StackSpec,
};
use linrv_history::{OpValue, Operation};
use std::fmt;

/// Errors raised when translating between the typed layer and the wire layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypedError {
    /// The wire operation's kind does not name this typed operation.
    WrongKind {
        /// The kind that was expected (e.g. `"Enqueue"`).
        expected: &'static str,
        /// The kind found on the wire.
        found: String,
    },
    /// The wire operation's argument has the wrong shape.
    BadArgument {
        /// The operation whose argument is malformed.
        operation: &'static str,
        /// The argument found on the wire.
        found: OpValue,
    },
    /// A response value does not match the operation's response type.
    BadResponse {
        /// The operation whose response is malformed.
        operation: &'static str,
        /// The response found on the wire.
        found: OpValue,
    },
}

impl fmt::Display for TypedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypedError::WrongKind { expected, found } => {
                write!(f, "expected a {expected:?} operation, found {found:?}")
            }
            TypedError::BadArgument { operation, found } => {
                write!(f, "malformed argument for {operation}: {found}")
            }
            TypedError::BadResponse { operation, found } => {
                write!(f, "malformed response for {operation}: {found}")
            }
        }
    }
}

impl std::error::Error for TypedError {}

/// A typed operation: knows its wire encoding and its precise response type.
///
/// The encoding must be lossless in both directions:
/// `Self::try_decode(&op.encode()) == Ok(op)` and
/// `op.decode_response(&op.encode_response(&r)) == Ok(r)` for every operation
/// `op` and every response `r` the specification can produce.
pub trait TypedOp: Sized + Clone + PartialEq + fmt::Debug + Send + Sync {
    /// The precise response type of this operation (e.g. `Option<i64>` for
    /// `Dequeue`, whose wire responses are `Int(v)` or `Empty`).
    type Response: Clone + PartialEq + fmt::Debug + Send + Sync;

    /// Encodes the operation to the wire format.
    fn encode(&self) -> Operation;

    /// Decodes a wire operation back to the typed form.
    ///
    /// # Errors
    ///
    /// Returns a [`TypedError`] when `op` is not an encoding of this operation.
    fn try_decode(op: &Operation) -> Result<Self, TypedError>;

    /// Decodes a wire response into the typed response.
    ///
    /// # Errors
    ///
    /// Returns a [`TypedError`] when `raw` is not a response this operation can
    /// produce (a black-box implementation may return anything).
    fn decode_response(&self, raw: &OpValue) -> Result<Self::Response, TypedError>;

    /// Encodes a typed response back to the wire format.
    fn encode_response(&self, response: &Self::Response) -> OpValue;
}

/// A specification whose interface is covered by the typed operation layer.
///
/// [`TypedObject::Op`] is the uniform enumeration of the object's operations,
/// used where a single type must range over the whole interface (round-trip
/// tests, typed history builders, workload generators).
pub trait TypedObject: SequentialSpec + Sized {
    /// The enumeration of all operations of this object.
    type Op: TypedOp + OpFor<Self>;
}

/// Marker trait: `Self` is an operation of the object specified by `S`.
///
/// Both the per-operation structs (e.g. [`queue::Enqueue`]) and the uniform
/// enumeration (e.g. [`queue::QueueOp`]) implement `OpFor<QueueSpec>`.
pub trait OpFor<S: TypedObject>: TypedOp {}

/// Implements the boilerplate shared by every typed operation struct.
///
/// `arg_op` variants take one `i64` argument encoded as `OpValue::Int`;
/// `nullary_op` variants encode with `OpValue::Unit`.
macro_rules! arg_op {
    ($(#[$doc:meta])* $name:ident, $kind:literal, $spec:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub i64);

        impl super::TypedOp for $name {
            type Response = <Self as ResponseCodec>::Typed;

            fn encode(&self) -> Operation {
                Operation::new($kind, OpValue::Int(self.0))
            }

            fn try_decode(op: &Operation) -> Result<Self, TypedError> {
                if op.kind != $kind {
                    return Err(TypedError::WrongKind {
                        expected: $kind,
                        found: op.kind.clone(),
                    });
                }
                match op.arg.as_int() {
                    Some(v) => Ok($name(v)),
                    None => Err(TypedError::BadArgument {
                        operation: $kind,
                        found: op.arg.clone(),
                    }),
                }
            }

            fn decode_response(&self, raw: &OpValue) -> Result<Self::Response, TypedError> {
                <Self as ResponseCodec>::decode($kind, raw)
            }

            fn encode_response(&self, response: &Self::Response) -> OpValue {
                <Self as ResponseCodec>::encode(response)
            }
        }

        impl super::OpFor<$spec> for $name {}
    };
}

macro_rules! nullary_op {
    ($(#[$doc:meta])* $name:ident, $kind:literal, $spec:ty) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name;

        impl super::TypedOp for $name {
            type Response = <Self as ResponseCodec>::Typed;

            fn encode(&self) -> Operation {
                Operation::nullary($kind)
            }

            fn try_decode(op: &Operation) -> Result<Self, TypedError> {
                if op.kind != $kind {
                    return Err(TypedError::WrongKind {
                        expected: $kind,
                        found: op.kind.clone(),
                    });
                }
                match op.arg {
                    OpValue::Unit => Ok($name),
                    ref other => Err(TypedError::BadArgument {
                        operation: $kind,
                        found: other.clone(),
                    }),
                }
            }

            fn decode_response(&self, raw: &OpValue) -> Result<Self::Response, TypedError> {
                <Self as ResponseCodec>::decode($kind, raw)
            }

            fn encode_response(&self, response: &Self::Response) -> OpValue {
                <Self as ResponseCodec>::encode(response)
            }
        }

        impl super::OpFor<$spec> for $name {}
    };
}

/// Implements the uniform operation enumeration of one object: dispatches every
/// [`TypedOp`] method to the per-operation structs, with `OpValue` as the uniform
/// response type (precise responses live on the per-operation structs).
macro_rules! op_enum {
    (
        $(#[$doc:meta])* $name:ident for $spec:ty {
            $($variant:ident($inner:ty)),+ $(,)?
        }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $(
                #[doc = concat!("See [`", stringify!($inner), "`].")]
                $variant($inner),
            )+
        }

        impl super::TypedOp for $name {
            type Response = OpValue;

            fn encode(&self) -> Operation {
                match self {
                    $(Self::$variant(op) => op.encode(),)+
                }
            }

            fn try_decode(op: &Operation) -> Result<Self, TypedError> {
                $(
                    match <$inner>::try_decode(op) {
                        Ok(decoded) => return Ok(Self::$variant(decoded)),
                        Err(TypedError::WrongKind { .. }) => {}
                        Err(other) => return Err(other),
                    }
                )+
                Err(TypedError::WrongKind {
                    expected: stringify!($name),
                    found: op.kind.clone(),
                })
            }

            fn decode_response(&self, raw: &OpValue) -> Result<OpValue, TypedError> {
                // Validate the shape through the precise codec, then hand back the
                // wire value unchanged (the enum is the uniform escape hatch).
                match self {
                    $(Self::$variant(op) => {
                        op.decode_response(raw)?;
                    })+
                }
                Ok(raw.clone())
            }

            fn encode_response(&self, response: &OpValue) -> OpValue {
                response.clone()
            }
        }

        impl super::OpFor<$spec> for $name {}

        impl super::TypedObject for $spec {
            type Op = $name;
        }
    };
}

/// Shared response codecs, keyed by the typed response shape.
///
/// Implementation detail of the typed operation structs (the associated `Typed`
/// type surfaces as [`TypedOp::Response`], so the trait must be public); not part
/// of the stable API.
#[doc(hidden)]
pub trait ResponseCodec {
    /// The typed response shape this codec translates.
    type Typed: Clone + PartialEq + fmt::Debug + Send + Sync;

    /// Decodes a wire response, naming `operation` in errors.
    fn decode(operation: &'static str, raw: &OpValue) -> Result<Self::Typed, TypedError>;
    /// Encodes a typed response to the wire format.
    fn encode(typed: &Self::Typed) -> OpValue;
}

/// `()` ⇄ `Bool(true)`: the acknowledgement responses of `Enqueue`, `Push`, …
macro_rules! ack_codec {
    ($name:ident) => {
        impl ResponseCodec for $name {
            type Typed = ();

            fn decode(operation: &'static str, raw: &OpValue) -> Result<(), TypedError> {
                match raw {
                    OpValue::Bool(true) => Ok(()),
                    other => Err(TypedError::BadResponse {
                        operation,
                        found: other.clone(),
                    }),
                }
            }

            fn encode(_typed: &()) -> OpValue {
                OpValue::Bool(true)
            }
        }
    };
}

/// `Option<i64>` ⇄ `Int(v)`/`Empty`: the take responses of `Dequeue`, `Pop`, …
macro_rules! take_codec {
    ($name:ident) => {
        impl ResponseCodec for $name {
            type Typed = Option<i64>;

            fn decode(operation: &'static str, raw: &OpValue) -> Result<Option<i64>, TypedError> {
                match raw {
                    OpValue::Int(v) => Ok(Some(*v)),
                    OpValue::Empty => Ok(None),
                    other => Err(TypedError::BadResponse {
                        operation,
                        found: other.clone(),
                    }),
                }
            }

            fn encode(typed: &Option<i64>) -> OpValue {
                match typed {
                    Some(v) => OpValue::Int(*v),
                    None => OpValue::Empty,
                }
            }
        }
    };
}

/// `i64` ⇄ `Int(v)`: the responses of `Read`, `Inc`, `Decide`.
macro_rules! int_codec {
    ($name:ident) => {
        impl ResponseCodec for $name {
            type Typed = i64;

            fn decode(operation: &'static str, raw: &OpValue) -> Result<i64, TypedError> {
                match raw {
                    OpValue::Int(v) => Ok(*v),
                    other => Err(TypedError::BadResponse {
                        operation,
                        found: other.clone(),
                    }),
                }
            }

            fn encode(typed: &i64) -> OpValue {
                OpValue::Int(*typed)
            }
        }
    };
}

/// `bool` ⇄ `Bool(b)`: the responses of `Add`, `Remove`, `Contains`.
macro_rules! bool_codec {
    ($name:ident) => {
        impl ResponseCodec for $name {
            type Typed = bool;

            fn decode(operation: &'static str, raw: &OpValue) -> Result<bool, TypedError> {
                match raw {
                    OpValue::Bool(b) => Ok(*b),
                    other => Err(TypedError::BadResponse {
                        operation,
                        found: other.clone(),
                    }),
                }
            }

            fn encode(typed: &bool) -> OpValue {
                OpValue::Bool(*typed)
            }
        }
    };
}

/// Typed FIFO-queue operations ([`QueueSpec`]).
pub mod queue {
    use super::*;

    arg_op! {
        /// `Enqueue(v)` — acknowledged with `()`.
        Enqueue, "Enqueue", QueueSpec
    }
    ack_codec!(Enqueue);

    nullary_op! {
        /// `Dequeue()` — `Some(oldest)` or `None` when the queue is empty.
        Dequeue, "Dequeue", QueueSpec
    }
    take_codec!(Dequeue);

    op_enum! {
        /// Any queue operation.
        QueueOp for QueueSpec {
            Enqueue(Enqueue),
            Dequeue(Dequeue),
        }
    }
}

/// Typed LIFO-stack operations ([`StackSpec`]).
pub mod stack {
    use super::*;

    arg_op! {
        /// `Push(v)` — acknowledged with `()`.
        Push, "Push", StackSpec
    }
    ack_codec!(Push);

    nullary_op! {
        /// `Pop()` — `Some(newest)` or `None` when the stack is empty.
        Pop, "Pop", StackSpec
    }
    take_codec!(Pop);

    op_enum! {
        /// Any stack operation.
        StackOp for StackSpec {
            Push(Push),
            Pop(Pop),
        }
    }
}

/// Typed integer-set operations ([`SetSpec`]).
pub mod set {
    use super::*;

    arg_op! {
        /// `Add(v)` — `true` when `v` was not already present.
        Add, "Add", SetSpec
    }
    bool_codec!(Add);

    arg_op! {
        /// `Remove(v)` — `true` when `v` was present.
        Remove, "Remove", SetSpec
    }
    bool_codec!(Remove);

    arg_op! {
        /// `Contains(v)` — whether `v` is present.
        Contains, "Contains", SetSpec
    }
    bool_codec!(Contains);

    op_enum! {
        /// Any set operation.
        SetOp for SetSpec {
            Add(Add),
            Remove(Remove),
            Contains(Contains),
        }
    }
}

/// Typed min-priority-queue operations ([`PriorityQueueSpec`]).
pub mod priority_queue {
    use super::*;

    arg_op! {
        /// `Insert(v)` — acknowledged with `()`.
        Insert, "Insert", PriorityQueueSpec
    }
    ack_codec!(Insert);

    nullary_op! {
        /// `ExtractMin()` — `Some(minimum)` or `None` when empty.
        ExtractMin, "ExtractMin", PriorityQueueSpec
    }
    take_codec!(ExtractMin);

    op_enum! {
        /// Any priority-queue operation.
        PriorityQueueOp for PriorityQueueSpec {
            Insert(Insert),
            ExtractMin(ExtractMin),
        }
    }
}

/// Typed counter operations ([`CounterSpec`]).
pub mod counter {
    use super::*;

    nullary_op! {
        /// `Inc()` — fetch-and-increment; returns the value *before* the increment.
        Inc, "Inc", CounterSpec
    }
    int_codec!(Inc);

    nullary_op! {
        /// `Read()` — the current value.
        Read, "Read", CounterSpec
    }
    int_codec!(Read);

    op_enum! {
        /// Any counter operation.
        CounterOp for CounterSpec {
            Inc(Inc),
            Read(Read),
        }
    }
}

/// Typed register operations ([`RegisterSpec`]).
pub mod register {
    use super::*;

    arg_op! {
        /// `Write(v)` — acknowledged with `()`.
        Write, "Write", RegisterSpec
    }
    ack_codec!(Write);

    nullary_op! {
        /// `Read()` — the last written value (initially `0`).
        Read, "Read", RegisterSpec
    }
    int_codec!(Read);

    op_enum! {
        /// Any register operation.
        RegisterOp for RegisterSpec {
            Write(Write),
            Read(Read),
        }
    }
}

/// Typed consensus operations ([`ConsensusSpec`]).
pub mod consensus {
    use super::*;

    arg_op! {
        /// `Decide(v)` — returns the value decided by the first proposal.
        Decide, "Decide", ConsensusSpec
    }
    int_codec!(Decide);

    op_enum! {
        /// Any consensus operation.
        ConsensusOp for ConsensusSpec {
            Decide(Decide),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn typed_encodings_match_the_untyped_constructors() {
        assert_eq!(queue::Enqueue(5).encode(), ops::queue::enqueue(5));
        assert_eq!(queue::Dequeue.encode(), ops::queue::dequeue());
        assert_eq!(stack::Push(1).encode(), ops::stack::push(1));
        assert_eq!(stack::Pop.encode(), ops::stack::pop());
        assert_eq!(set::Add(2).encode(), ops::set::add(2));
        assert_eq!(set::Remove(2).encode(), ops::set::remove(2));
        assert_eq!(set::Contains(2).encode(), ops::set::contains(2));
        assert_eq!(
            priority_queue::Insert(3).encode(),
            ops::priority_queue::insert(3)
        );
        assert_eq!(
            priority_queue::ExtractMin.encode(),
            ops::priority_queue::extract_min()
        );
        assert_eq!(counter::Inc.encode(), ops::counter::inc());
        assert_eq!(counter::Read.encode(), ops::counter::read());
        assert_eq!(register::Write(4).encode(), ops::register::write(4));
        assert_eq!(register::Read.encode(), ops::register::read());
        assert_eq!(consensus::Decide(9).encode(), ops::consensus::decide(9));
    }

    #[test]
    fn operation_round_trips() {
        let op = queue::Enqueue(42);
        assert_eq!(queue::Enqueue::try_decode(&op.encode()), Ok(op));
        let op = queue::QueueOp::Dequeue(queue::Dequeue);
        assert_eq!(queue::QueueOp::try_decode(&op.encode()), Ok(op));
    }

    #[test]
    fn response_round_trips() {
        let deq = queue::Dequeue;
        for resp in [Some(7), None] {
            let wire = deq.encode_response(&resp);
            assert_eq!(deq.decode_response(&wire), Ok(resp));
        }
        let enq = queue::Enqueue(1);
        assert_eq!(enq.decode_response(&enq.encode_response(&())), Ok(()));
        let read = counter::Read;
        assert_eq!(read.decode_response(&OpValue::Int(3)), Ok(3));
        let contains = set::Contains(1);
        assert_eq!(contains.decode_response(&OpValue::Bool(false)), Ok(false));
    }

    #[test]
    fn decode_rejects_wrong_kinds_and_shapes() {
        let err = queue::Enqueue::try_decode(&ops::queue::dequeue()).unwrap_err();
        assert!(matches!(err, TypedError::WrongKind { .. }));
        let bad = Operation::new("Enqueue", OpValue::Bool(true));
        let err = queue::Enqueue::try_decode(&bad).unwrap_err();
        assert!(matches!(err, TypedError::BadArgument { .. }));
        let err = queue::Dequeue
            .decode_response(&OpValue::Bool(true))
            .unwrap_err();
        assert!(matches!(err, TypedError::BadResponse { .. }));
        let err = queue::QueueOp::try_decode(&ops::stack::pop()).unwrap_err();
        assert!(err.to_string().contains("Pop"));
    }

    #[test]
    fn enum_decode_validates_response_shape() {
        let deq = queue::QueueOp::Dequeue(queue::Dequeue);
        assert_eq!(deq.decode_response(&OpValue::Int(5)), Ok(OpValue::Int(5)));
        assert!(deq.decode_response(&OpValue::Bool(true)).is_err());
    }

    #[test]
    fn typed_ops_agree_with_the_specification() {
        // Every typed operation must be accepted by its own spec, and the encoded
        // response of the spec's step must decode through the typed codec.
        let spec = QueueSpec::new();
        let s0 = spec.initial_state();
        let enq = queue::Enqueue(7);
        let (s1, resp) = spec.step_deterministic(&s0, &enq.encode()).unwrap();
        assert_eq!(enq.decode_response(&resp), Ok(()));
        let deq = queue::Dequeue;
        let (_, resp) = spec.step_deterministic(&s1, &deq.encode()).unwrap();
        assert_eq!(deq.decode_response(&resp), Ok(Some(7)));
    }
}
