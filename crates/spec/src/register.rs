//! Sequential read/write register specification.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};

/// Sequential specification of an integer read/write register, initially `0`.
///
/// * `Write(v)` stores `v` and responds `true`.
/// * `Read()` responds with the last written value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterSpec;

impl RegisterSpec {
    /// Creates the register specification.
    pub fn new() -> Self {
        RegisterSpec
    }
}

impl SequentialSpec for RegisterSpec {
    type State = i64;

    fn kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn initial_state(&self) -> Self::State {
        0
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Write" => {
                let v = operation
                    .arg
                    .as_int()
                    .ok_or_else(|| SpecError::InvalidArgument {
                        operation: operation.kind.clone(),
                        reason: "expected an integer argument".into(),
                    })?;
                Ok(vec![(v, OpValue::Bool(true))])
            }
            "Read" => Ok(vec![(*state, OpValue::Int(*state))]),
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::register as ops;

    #[test]
    fn reads_return_last_written_value() {
        let spec = RegisterSpec::new();
        let s0 = spec.initial_state();
        let (_, r) = spec.step_deterministic(&s0, &ops::read()).unwrap();
        assert_eq!(r, OpValue::Int(0));
        let (s1, _) = spec.step_deterministic(&s0, &ops::write(42)).unwrap();
        let (_, r) = spec.step_deterministic(&s1, &ops::read()).unwrap();
        assert_eq!(r, OpValue::Int(42));
    }

    #[test]
    fn write_requires_integer() {
        let spec = RegisterSpec::new();
        assert!(spec.step(&0, &Operation::nullary("Write")).is_err());
        assert!(spec.step(&0, &Operation::nullary("Enqueue")).is_err());
    }
}
