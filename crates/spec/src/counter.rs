//! Sequential counter specification.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};

/// Sequential specification of a fetch-and-increment counter.
///
/// * `Inc()` increments the counter and responds with its value *before* the increment.
/// * `Read()` responds with the current value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSpec;

impl CounterSpec {
    /// Creates the counter specification.
    pub fn new() -> Self {
        CounterSpec
    }
}

impl SequentialSpec for CounterSpec {
    type State = i64;

    fn kind(&self) -> ObjectKind {
        ObjectKind::Counter
    }

    fn initial_state(&self) -> Self::State {
        0
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Inc" => Ok(vec![(state + 1, OpValue::Int(*state))]),
            "Read" => Ok(vec![(*state, OpValue::Int(*state))]),
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::counter as ops;

    #[test]
    fn fetch_and_increment_semantics() {
        let spec = CounterSpec::new();
        let s0 = spec.initial_state();
        let (s1, r0) = spec.step_deterministic(&s0, &ops::inc()).unwrap();
        let (s2, r1) = spec.step_deterministic(&s1, &ops::inc()).unwrap();
        let (_, read) = spec.step_deterministic(&s2, &ops::read()).unwrap();
        assert_eq!(r0, OpValue::Int(0));
        assert_eq!(r1, OpValue::Int(1));
        assert_eq!(read, OpValue::Int(2));
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let spec = CounterSpec::new();
        assert!(spec.step(&0, &Operation::nullary("Pop")).is_err());
    }
}
