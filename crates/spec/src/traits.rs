//! The [`SequentialSpec`] trait: sequential specifications as state machines.

use linrv_history::{History, OpValue, Operation};
use std::fmt;

/// The kinds of sequential objects shipped with this crate. Used by the runtime crate
/// to pair concurrent implementations with the specification they are checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// FIFO queue.
    Queue,
    /// LIFO stack.
    Stack,
    /// Integer set with add/remove/contains.
    Set,
    /// Min-priority queue.
    PriorityQueue,
    /// Fetch-and-increment / read counter.
    Counter,
    /// Read/write register.
    Register,
    /// Consensus modelled as a sequential object with a repeatable `Decide` operation.
    Consensus,
}

impl ObjectKind {
    /// Every shipped object kind, in a stable order (useful for CLIs and tests
    /// that sweep all objects).
    pub const ALL: [ObjectKind; 7] = [
        ObjectKind::Queue,
        ObjectKind::Stack,
        ObjectKind::Set,
        ObjectKind::PriorityQueue,
        ObjectKind::Counter,
        ObjectKind::Register,
        ObjectKind::Consensus,
    ];
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectKind::Queue => "queue",
            ObjectKind::Stack => "stack",
            ObjectKind::Set => "set",
            ObjectKind::PriorityQueue => "priority-queue",
            ObjectKind::Counter => "counter",
            ObjectKind::Register => "register",
            ObjectKind::Consensus => "consensus",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for ObjectKind {
    type Err = String;

    /// Parses the kebab-case names produced by [`fmt::Display`] (plus the
    /// common aliases `pq` and `priority_queue`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "queue" => Ok(ObjectKind::Queue),
            "stack" => Ok(ObjectKind::Stack),
            "set" => Ok(ObjectKind::Set),
            "priority-queue" | "priority_queue" | "pq" => Ok(ObjectKind::PriorityQueue),
            "counter" => Ok(ObjectKind::Counter),
            "register" => Ok(ObjectKind::Register),
            "consensus" => Ok(ObjectKind::Consensus),
            other => Err(format!(
                "unknown object kind {other:?} (expected one of: queue, stack, set, \
                 priority-queue, counter, register, consensus)"
            )),
        }
    }
}

/// Errors raised when a specification is asked to take an impossible step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The operation kind is not part of the object's interface.
    UnknownOperation(String),
    /// The operation's argument has the wrong shape.
    InvalidArgument {
        /// Operation that received the bad argument.
        operation: String,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownOperation(op) => write!(f, "unknown operation {op:?}"),
            SpecError::InvalidArgument { operation, reason } => {
                write!(f, "invalid argument for {operation:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A sequential specification: a (possibly non-deterministic) state machine whose
/// transition function `δ(q, op)` returns the allowed `(q', response)` pairs
/// (Definition 4.1).
///
/// Implementations must be *total* over their interface: `δ` never rejects an enabled
/// operation of the object (e.g. `Dequeue` on an empty queue returns the distinguished
/// `empty` value rather than being undefined). Operations outside the interface return
/// [`SpecError::UnknownOperation`].
pub trait SequentialSpec: Send + Sync {
    /// The state type of the machine.
    type State: Clone + Eq + std::hash::Hash + fmt::Debug + Send + Sync;

    /// Which object this specification describes.
    fn kind(&self) -> ObjectKind;

    /// The initial state of the machine.
    fn initial_state(&self) -> Self::State;

    /// The transition function `δ`: all `(next_state, response)` pairs allowed when
    /// applying `operation` in `state`.
    ///
    /// Deterministic objects return exactly one pair.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the operation is not part of the object's
    /// interface or its argument is malformed.
    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError>;

    /// Convenience wrapper for deterministic specifications: the unique successor.
    ///
    /// # Errors
    ///
    /// Propagates [`SpecError`]s from [`SequentialSpec::step`].
    fn step_deterministic(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<(Self::State, OpValue), SpecError> {
        let mut successors = self.step(state, operation)?;
        debug_assert_eq!(
            successors.len(),
            1,
            "step_deterministic called on a non-deterministic transition"
        );
        Ok(successors.remove(0))
    }

    /// Returns `true` when applying `operation` in `state` may produce `response`,
    /// together with the successor state witnessing it.
    fn accepts(
        &self,
        state: &Self::State,
        operation: &Operation,
        response: &OpValue,
    ) -> Option<Self::State> {
        self.step(state, operation)
            .ok()?
            .into_iter()
            .find(|(_, r)| r == response)
            .map(|(s, _)| s)
    }

    /// Returns `true` when `history` is a *sequential history of the object*
    /// (Definition 4.1): it is sequential, and replaying its operations from the
    /// initial state yields exactly the recorded responses.
    fn accepts_sequential_history(&self, history: &History) -> bool {
        if !history.is_sequential() {
            return false;
        }
        let mut state = self.initial_state();
        for record in history.complete_operations() {
            let response = record.response.as_ref().expect("complete operation");
            match self.accepts(&state, &record.operation, response) {
                Some(next) => state = next,
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_kind_display() {
        assert_eq!(ObjectKind::Queue.to_string(), "queue");
        assert_eq!(ObjectKind::PriorityQueue.to_string(), "priority-queue");
    }

    #[test]
    fn object_kind_display_round_trips_through_from_str() {
        for kind in ObjectKind::ALL {
            assert_eq!(kind.to_string().parse::<ObjectKind>(), Ok(kind));
        }
        assert_eq!("pq".parse::<ObjectKind>(), Ok(ObjectKind::PriorityQueue));
        assert!("blob".parse::<ObjectKind>().unwrap_err().contains("blob"));
    }

    #[test]
    fn spec_error_display() {
        let e = SpecError::UnknownOperation("Frobnicate".into());
        assert!(e.to_string().contains("Frobnicate"));
        let e = SpecError::InvalidArgument {
            operation: "Enqueue".into(),
            reason: "expected an integer".into(),
        };
        assert!(e.to_string().contains("Enqueue"));
    }
}
