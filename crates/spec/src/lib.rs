//! # linrv-spec
//!
//! Sequential specifications of the concurrent objects studied in Castañeda &
//! Rodríguez (PODC 2023): queues, stacks, sets, priority queues, counters, registers
//! and the consensus problem modelled as a sequential object (Theorem 5.1 lists these
//! as the objects for which runtime verification of linearizability is impossible).
//!
//! A sequential specification is a state machine with a transition function
//! `δ(state, operation) → (state', response)` (Definition 4.1). The
//! [`SequentialSpec`] trait captures deterministic and non-deterministic machines
//! uniformly by letting `δ` return the *set* of allowed `(state, response)` successors.
//!
//! The specifications in this crate are consumed by `linrv-check` (membership /
//! linearizability decision procedures) and by `linrv-core` (the local `P_O` test in
//! the predictive verifier and the self-enforced implementations).
//!
//! ```
//! use linrv_spec::{QueueSpec, SequentialSpec};
//! use linrv_history::{Operation, OpValue};
//!
//! let spec = QueueSpec::new();
//! let q0 = spec.initial_state();
//! let (q1, resp) = spec
//!     .step_deterministic(&q0, &Operation::new("Enqueue", OpValue::Int(5)))
//!     .expect("enqueue always enabled");
//! assert_eq!(resp, OpValue::Bool(true));
//! let (_, resp) = spec
//!     .step_deterministic(&q1, &Operation::nullary("Dequeue"))
//!     .expect("dequeue enabled");
//! assert_eq!(resp, OpValue::Int(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consensus;
pub mod counter;
pub mod ops;
pub mod priority_queue;
pub mod queue;
pub mod register;
pub mod set;
pub mod stack;
pub mod traits;
pub mod typed;

pub use consensus::ConsensusSpec;
pub use counter::CounterSpec;
pub use priority_queue::PriorityQueueSpec;
pub use queue::QueueSpec;
pub use register::RegisterSpec;
pub use set::SetSpec;
pub use stack::StackSpec;
pub use traits::{ObjectKind, SequentialSpec, SpecError};
pub use typed::{OpFor, TypedError, TypedObject, TypedOp};
