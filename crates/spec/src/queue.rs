//! Sequential FIFO queue specification.

use crate::traits::{ObjectKind, SequentialSpec, SpecError};
use linrv_history::{OpValue, Operation};
use std::collections::VecDeque;

/// Sequential specification of a FIFO queue.
///
/// * `Enqueue(v)` appends `v` and responds `true`.
/// * `Dequeue()` removes and returns the oldest element, or responds `empty` when the
///   queue holds no elements.
///
/// This is the object used throughout the paper's impossibility argument
/// (Theorem 5.1, Figures 4–6 and 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSpec;

impl QueueSpec {
    /// Creates the queue specification.
    pub fn new() -> Self {
        QueueSpec
    }
}

impl SequentialSpec for QueueSpec {
    type State = VecDeque<i64>;

    fn kind(&self) -> ObjectKind {
        ObjectKind::Queue
    }

    fn initial_state(&self) -> Self::State {
        VecDeque::new()
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, OpValue)>, SpecError> {
        match operation.kind.as_str() {
            "Enqueue" => {
                let v = operation
                    .arg
                    .as_int()
                    .ok_or_else(|| SpecError::InvalidArgument {
                        operation: operation.kind.clone(),
                        reason: "expected an integer argument".into(),
                    })?;
                let mut next = state.clone();
                next.push_back(v);
                Ok(vec![(next, OpValue::Bool(true))])
            }
            "Dequeue" => {
                let mut next = state.clone();
                match next.pop_front() {
                    Some(v) => Ok(vec![(next, OpValue::Int(v))]),
                    None => Ok(vec![(state.clone(), OpValue::Empty)]),
                }
            }
            other => Err(SpecError::UnknownOperation(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::queue as ops;

    #[test]
    fn fifo_order() {
        let spec = QueueSpec::new();
        let s0 = spec.initial_state();
        let (s1, _) = spec.step_deterministic(&s0, &ops::enqueue(1)).unwrap();
        let (s2, _) = spec.step_deterministic(&s1, &ops::enqueue(2)).unwrap();
        let (s3, r1) = spec.step_deterministic(&s2, &ops::dequeue()).unwrap();
        let (_, r2) = spec.step_deterministic(&s3, &ops::dequeue()).unwrap();
        assert_eq!(r1, OpValue::Int(1));
        assert_eq!(r2, OpValue::Int(2));
    }

    #[test]
    fn dequeue_on_empty_returns_empty() {
        let spec = QueueSpec::new();
        let (next, r) = spec
            .step_deterministic(&spec.initial_state(), &ops::dequeue())
            .unwrap();
        assert_eq!(r, OpValue::Empty);
        assert!(next.is_empty());
    }

    #[test]
    fn unknown_operation_is_rejected() {
        let spec = QueueSpec::new();
        assert!(matches!(
            spec.step(&spec.initial_state(), &Operation::nullary("Pop")),
            Err(SpecError::UnknownOperation(_))
        ));
    }

    #[test]
    fn enqueue_requires_integer_argument() {
        let spec = QueueSpec::new();
        assert!(matches!(
            spec.step(&spec.initial_state(), &Operation::nullary("Enqueue")),
            Err(SpecError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn accepts_matches_step() {
        let spec = QueueSpec::new();
        let s0 = spec.initial_state();
        assert!(spec
            .accepts(&s0, &ops::enqueue(1), &OpValue::Bool(true))
            .is_some());
        assert!(spec
            .accepts(&s0, &ops::dequeue(), &OpValue::Int(1))
            .is_none());
        assert!(spec
            .accepts(&s0, &ops::dequeue(), &OpValue::Empty)
            .is_some());
    }

    #[test]
    fn accepts_sequential_history() {
        use linrv_history::{HistoryBuilder, ProcessId};
        let spec = QueueSpec::new();
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        b.complete(p, ops::enqueue(1), OpValue::Bool(true));
        b.complete(p, ops::dequeue(), OpValue::Int(1));
        b.complete(p, ops::dequeue(), OpValue::Empty);
        assert!(spec.accepts_sequential_history(&b.build()));

        let mut b = HistoryBuilder::new();
        b.complete(p, ops::dequeue(), OpValue::Int(7));
        assert!(!spec.accepts_sequential_history(&b.build()));
    }
}
