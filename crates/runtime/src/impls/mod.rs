//! Correct concurrent implementations used as the black box `A`.

mod atomic_counter;
mod atomic_register;
mod cas_consensus;
mod ms_queue;
mod spec_object;
mod treiber_stack;

pub use atomic_counter::AtomicCounter;
pub use atomic_register::AtomicIntRegister;
pub use cas_consensus::CasConsensus;
pub use ms_queue::MsQueue;
pub use spec_object::SpecObject;
pub use treiber_stack::TreiberStack;

use crate::object::ConcurrentObject;
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec, SetSpec,
    StackSpec,
};

/// The canonical correct *concurrent* implementation for each object kind: the
/// from-scratch lock-free/wait-free structure where one exists, the lock-based
/// [`SpecObject`] universal construction otherwise. Used by `linrv record`.
pub fn correct_object(kind: ObjectKind) -> Box<dyn ConcurrentObject> {
    match kind {
        ObjectKind::Queue => Box::new(MsQueue::new()),
        ObjectKind::Stack => Box::new(TreiberStack::new()),
        ObjectKind::Counter => Box::new(AtomicCounter::new()),
        ObjectKind::Register => Box::new(AtomicIntRegister::new()),
        ObjectKind::Consensus => Box::new(CasConsensus::new()),
        ObjectKind::Set => Box::new(SpecObject::new(SetSpec::new())),
        ObjectKind::PriorityQueue => Box::new(SpecObject::new(PriorityQueueSpec::new())),
    }
}

/// The sequential specification itself as a (lock-based) concurrent object —
/// correct by construction for every kind. Used by `linrv gen`.
pub fn spec_object(kind: ObjectKind) -> Box<dyn ConcurrentObject> {
    match kind {
        ObjectKind::Queue => Box::new(SpecObject::new(QueueSpec::new())),
        ObjectKind::Stack => Box::new(SpecObject::new(StackSpec::new())),
        ObjectKind::Set => Box::new(SpecObject::new(SetSpec::new())),
        ObjectKind::PriorityQueue => Box::new(SpecObject::new(PriorityQueueSpec::new())),
        ObjectKind::Counter => Box::new(SpecObject::new(CounterSpec::new())),
        ObjectKind::Register => Box::new(SpecObject::new(RegisterSpec::new())),
        ObjectKind::Consensus => Box::new(SpecObject::new(ConsensusSpec::new())),
    }
}
