//! Correct concurrent implementations used as the black box `A`.

mod atomic_counter;
mod atomic_register;
mod cas_consensus;
mod ms_queue;
mod spec_object;
mod treiber_stack;

pub use atomic_counter::AtomicCounter;
pub use atomic_register::AtomicIntRegister;
pub use cas_consensus::CasConsensus;
pub use ms_queue::MsQueue;
pub use spec_object::SpecObject;
pub use treiber_stack::TreiberStack;
