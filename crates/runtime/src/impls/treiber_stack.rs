//! A lock-free Treiber stack built on atomic pointers with epoch reclamation.

use crate::object::ConcurrentObject;
use crossbeam::epoch::{self, Atomic, Owned, Shared};
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::Ordering;

struct Node {
    value: i64,
    next: Atomic<Node>,
}

/// The classic Treiber stack: a singly linked list whose head is swung with
/// compare-and-swap. `Push(v)` responds `true`; `Pop()` responds the popped value or
/// `empty`.
///
/// The stack is lock-free (not wait-free): an operation may retry its CAS when another
/// operation interferes, but some operation always completes. Nodes are reclaimed with
/// crossbeam's epoch scheme.
#[derive(Debug, Default)]
pub struct TreiberStack {
    head: Atomic<Node>,
}

impl TreiberStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        TreiberStack {
            head: Atomic::null(),
        }
    }

    fn push(&self, value: i64) {
        let guard = epoch::pin();
        let mut node = Owned::new(Node {
            value,
            next: Atomic::null(),
        });
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            node.next.store(head, Ordering::Relaxed);
            match self.head.compare_exchange(
                head,
                node,
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => return,
                Err(e) => node = e.new,
            }
        }
    }

    fn pop(&self) -> Option<i64> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: `head` was loaded under the epoch guard; if non-null it points to
            // a node that cannot be freed before the guard is dropped.
            let node = unsafe { head.as_ref() }?;
            let next: Shared<'_, Node> = node.next.load(Ordering::Acquire, &guard);
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire, &guard)
                .is_ok()
            {
                let value = node.value;
                // SAFETY: the node has been unlinked by the successful CAS, so no new
                // reader can reach it; deferring destruction is safe.
                unsafe {
                    guard.defer_destroy(head);
                }
                return Some(value);
            }
        }
    }
}

impl Drop for TreiberStack {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

impl ConcurrentObject for TreiberStack {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Stack
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Push" => match op.arg.as_int() {
                Some(v) => {
                    self.push(v);
                    OpValue::Bool(true)
                }
                None => OpValue::Error,
            },
            "Pop" => match self.pop() {
                Some(v) => OpValue::Int(v),
                None => OpValue::Empty,
            },
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        "Treiber stack (lock-free)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::stack as ops;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lifo_order_single_thread() {
        let s = TreiberStack::new();
        let p = ProcessId::new(0);
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Empty);
        s.apply(p, &ops::push(1));
        s.apply(p, &ops::push(2));
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Int(2));
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Int(1));
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Empty);
    }

    #[test]
    fn invalid_operations_return_error() {
        let s = TreiberStack::new();
        let p = ProcessId::new(0);
        assert_eq!(s.apply(p, &Operation::nullary("Push")), OpValue::Error);
        assert_eq!(s.apply(p, &Operation::nullary("Dequeue")), OpValue::Error);
    }

    #[test]
    fn concurrent_pushes_and_pops_lose_nothing() {
        let s = Arc::new(TreiberStack::new());
        let per_thread = 200i64;
        let threads = 3i64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                let p = ProcessId::new(t as u32);
                let mut popped = Vec::new();
                for i in 0..per_thread {
                    s.apply(p, &ops::push(t * per_thread + i));
                    if let OpValue::Int(v) = s.apply(p, &ops::pop()) {
                        popped.push(v);
                    }
                }
                popped
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Drain what is left on the stack.
        let p = ProcessId::new(0);
        while let OpValue::Int(v) = s.apply(p, &ops::pop()) {
            all.push(v);
        }
        let unique: BTreeSet<i64> = all.iter().copied().collect();
        assert_eq!(
            all.len() as i64,
            threads * per_thread,
            "an element was lost or duplicated"
        );
        assert_eq!(unique.len() as i64, threads * per_thread);
    }
}
