//! A lock-free Michael–Scott queue built on atomic pointers with epoch reclamation.

use crate::object::ConcurrentObject;
use crossbeam::epoch::{self, Atomic, Owned};
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::Ordering;

struct Node {
    /// `None` for the sentinel node, `Some(v)` for real elements.
    value: Option<i64>,
    next: Atomic<Node>,
}

/// The classic Michael–Scott lock-free FIFO queue: a linked list with `head` and `tail`
/// pointers, a permanent sentinel node at the head, and helping on a lagging tail.
/// `Enqueue(v)` responds `true`; `Dequeue()` responds the oldest element or `empty`.
#[derive(Debug)]
pub struct MsQueue {
    head: Atomic<Node>,
    tail: Atomic<Node>,
}

impl Default for MsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl MsQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let sentinel = Owned::new(Node {
            value: None,
            next: Atomic::null(),
        });
        let guard = unsafe { epoch::unprotected() };
        let sentinel = sentinel.into_shared(guard);
        MsQueue {
            head: Atomic::from(sentinel),
            tail: Atomic::from(sentinel),
        }
    }

    fn enqueue(&self, value: i64) {
        let guard = epoch::pin();
        let node = Owned::new(Node {
            value: Some(value),
            next: Atomic::null(),
        })
        .into_shared(&guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            // SAFETY: `tail` is protected by the guard and queue nodes are only retired
            // after being unlinked from both head and tail paths.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Tail is lagging: help advance it and retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                );
                continue;
            }
            if tail_ref
                .next
                .compare_exchange(
                    epoch::Shared::null(),
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                )
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                );
                return;
            }
        }
    }

    fn dequeue(&self) -> Option<i64> {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            // SAFETY: protected by the guard, as above.
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, &guard);
            let Some(next_ref) = (unsafe { next.as_ref() }) else {
                return None; // queue is empty (only the sentinel remains)
            };
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if head == tail {
                // Tail is lagging behind a non-empty list: help it forward.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    &guard,
                );
                continue;
            }
            let value = next_ref.value;
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire, &guard)
                .is_ok()
            {
                // SAFETY: the old sentinel has been unlinked by the successful CAS.
                unsafe {
                    guard.defer_destroy(head);
                }
                return value;
            }
        }
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        while self.dequeue().is_some() {}
        // Free the remaining sentinel.
        let guard = unsafe { epoch::unprotected() };
        let head = self.head.load(Ordering::Relaxed, guard);
        if !head.is_null() {
            // SAFETY: the queue is being dropped; no concurrent access is possible.
            unsafe {
                let _ = head.into_owned();
            }
        }
    }
}

impl ConcurrentObject for MsQueue {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Queue
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Enqueue" => match op.arg.as_int() {
                Some(v) => {
                    self.enqueue(v);
                    OpValue::Bool(true)
                }
                None => OpValue::Error,
            },
            "Dequeue" => match self.dequeue() {
                Some(v) => OpValue::Int(v),
                None => OpValue::Empty,
            },
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        "Michael–Scott queue (lock-free)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::queue as ops;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = MsQueue::new();
        let p = ProcessId::new(0);
        assert_eq!(q.apply(p, &ops::dequeue()), OpValue::Empty);
        q.apply(p, &ops::enqueue(1));
        q.apply(p, &ops::enqueue(2));
        q.apply(p, &ops::enqueue(3));
        assert_eq!(q.apply(p, &ops::dequeue()), OpValue::Int(1));
        assert_eq!(q.apply(p, &ops::dequeue()), OpValue::Int(2));
        assert_eq!(q.apply(p, &ops::dequeue()), OpValue::Int(3));
        assert_eq!(q.apply(p, &ops::dequeue()), OpValue::Empty);
    }

    #[test]
    fn invalid_operations_return_error() {
        let q = MsQueue::new();
        let p = ProcessId::new(0);
        assert_eq!(q.apply(p, &Operation::nullary("Enqueue")), OpValue::Error);
        assert_eq!(q.apply(p, &Operation::nullary("Pop")), OpValue::Error);
        assert!(q.name().contains("Michael"));
    }

    #[test]
    fn per_producer_fifo_is_preserved_under_concurrency() {
        let q = Arc::new(MsQueue::new());
        let per_thread = 300i64;
        let producers = 2i64;
        let mut handles = Vec::new();
        for t in 0..producers {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                let p = ProcessId::new(t as u32);
                for i in 0..per_thread {
                    q.apply(p, &ops::enqueue(t * per_thread + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Drain sequentially: values of each producer must come out in order, and
        // nothing may be lost or duplicated.
        let p = ProcessId::new(2);
        let mut drained = Vec::new();
        while let OpValue::Int(v) = q.apply(p, &ops::dequeue()) {
            drained.push(v);
        }
        assert_eq!(drained.len() as i64, producers * per_thread);
        let unique: BTreeSet<i64> = drained.iter().copied().collect();
        assert_eq!(unique.len(), drained.len());
        for t in 0..producers {
            let of_t: Vec<i64> = drained
                .iter()
                .copied()
                .filter(|v| *v / per_thread == t)
                .collect();
            let mut sorted = of_t.clone();
            sorted.sort_unstable();
            assert_eq!(of_t, sorted, "per-producer FIFO violated");
        }
    }
}
