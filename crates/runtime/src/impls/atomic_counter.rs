//! Wait-free fetch-and-increment counter.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicI64, Ordering};

/// A wait-free counter backed by a hardware fetch-and-add.
///
/// `Inc()` responds the value *before* the increment; `Read()` responds the current
/// value. Both operations complete in a single atomic instruction, so the
/// implementation is wait-free with constant step complexity.
#[derive(Debug, Default)]
pub struct AtomicCounter {
    value: AtomicI64,
}

impl AtomicCounter {
    /// Creates a counter initialised to zero.
    pub fn new() -> Self {
        AtomicCounter {
            value: AtomicI64::new(0),
        }
    }
}

impl ConcurrentObject for AtomicCounter {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Counter
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Inc" => OpValue::Int(self.value.fetch_add(1, Ordering::AcqRel)),
            "Read" => OpValue::Int(self.value.load(Ordering::Acquire)),
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        "fetch-and-add counter (wait-free)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::counter as ops;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sequential_semantics() {
        let c = AtomicCounter::new();
        let p = ProcessId::new(0);
        assert_eq!(c.apply(p, &ops::inc()), OpValue::Int(0));
        assert_eq!(c.apply(p, &ops::inc()), OpValue::Int(1));
        assert_eq!(c.apply(p, &ops::read()), OpValue::Int(2));
        assert_eq!(c.apply(p, &Operation::nullary("Pop")), OpValue::Error);
    }

    #[test]
    fn concurrent_increments_return_distinct_values() {
        let c = Arc::new(AtomicCounter::new());
        let mut handles = Vec::new();
        for t in 0..3u32 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                let p = ProcessId::new(t);
                (0..200)
                    .map(|_| c.apply(p, &ops::inc()).as_int().unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        let all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let unique: BTreeSet<i64> = all.iter().copied().collect();
        assert_eq!(
            unique.len(),
            all.len(),
            "two increments returned the same value"
        );
        assert_eq!(
            c.apply(ProcessId::new(0), &ops::read()),
            OpValue::Int(all.len() as i64)
        );
    }
}
