//! Consensus from compare-and-swap.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicI64, Ordering};

/// Wait-free consensus built on a single compare-and-swap word (consensus number ∞,
/// Section 2 of the paper): the first `Decide(v)` installs `v`; every `Decide`
/// responds with the installed value.
///
/// The sentinel [`CasConsensus::UNDECIDED`] (`i64::MIN`) must not be proposed.
#[derive(Debug)]
pub struct CasConsensus {
    decision: AtomicI64,
}

impl CasConsensus {
    /// Sentinel stored before any decision is made. Proposals must differ from it.
    pub const UNDECIDED: i64 = i64::MIN;

    /// Creates an undecided consensus object.
    pub fn new() -> Self {
        CasConsensus {
            decision: AtomicI64::new(Self::UNDECIDED),
        }
    }
}

impl Default for CasConsensus {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentObject for CasConsensus {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Consensus
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Decide" => match op.arg.as_int() {
                Some(v) if v != Self::UNDECIDED => {
                    match self.decision.compare_exchange(
                        Self::UNDECIDED,
                        v,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => OpValue::Int(v),
                        Err(winner) => OpValue::Int(winner),
                    }
                }
                _ => OpValue::Error,
            },
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        "CAS consensus (wait-free)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::consensus as ops;
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn first_decide_wins() {
        let c = CasConsensus::new();
        let p = ProcessId::new(0);
        assert_eq!(c.apply(p, &ops::decide(4)), OpValue::Int(4));
        assert_eq!(c.apply(ProcessId::new(1), &ops::decide(9)), OpValue::Int(4));
        assert_eq!(c.apply(p, &Operation::nullary("Decide")), OpValue::Error);
        assert_eq!(c.apply(p, &Operation::nullary("Read")), OpValue::Error);
    }

    #[test]
    fn concurrent_deciders_agree_on_a_proposed_value() {
        let c = Arc::new(CasConsensus::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                c.apply(ProcessId::new(t), &ops::decide(i64::from(t) + 1))
                    .as_int()
                    .unwrap()
            }));
        }
        let decisions: BTreeSet<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(decisions.len(), 1, "processes disagreed");
        let d = *decisions.iter().next().unwrap();
        assert!((1..=4).contains(&d), "decided value was never proposed");
    }
}
