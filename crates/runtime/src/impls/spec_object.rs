//! A generic lock-based implementation driven by a sequential specification.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::{ObjectKind, SequentialSpec};
use parking_lot::Mutex;

/// A linearizable (but blocking) implementation of *any* sequential object: the shared
/// state is the specification's state machine behind a mutex, and each `apply` runs one
/// transition inside the critical section.
///
/// This is the moral equivalent of Herlihy's universal construction specialised to a
/// lock (the paper's introduction notes that universal constructions make linearizable
/// implementations easy to obtain but poorly scalable) — it serves as the always-correct
/// baseline in tests and benches.
#[derive(Debug)]
pub struct SpecObject<S: SequentialSpec> {
    spec: S,
    state: Mutex<S::State>,
}

impl<S: SequentialSpec> SpecObject<S> {
    /// Creates the object in the specification's initial state.
    pub fn new(spec: S) -> Self {
        let state = Mutex::new(spec.initial_state());
        SpecObject { spec, state }
    }
}

impl<S: SequentialSpec> ConcurrentObject for SpecObject<S> {
    fn kind(&self) -> ObjectKind {
        self.spec.kind()
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        let mut state = self.state.lock();
        match self.spec.step(&state, op) {
            Ok(mut successors) => {
                let (next, response) = successors.remove(0);
                *state = next;
                response
            }
            Err(_) => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        format!("lock-based {}", self.spec.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::{queue, stack};
    use linrv_spec::{QueueSpec, StackSpec};

    #[test]
    fn queue_fifo_behaviour() {
        let q = SpecObject::new(QueueSpec::new());
        let p = ProcessId::new(0);
        assert_eq!(q.apply(p, &queue::enqueue(1)), OpValue::Bool(true));
        assert_eq!(q.apply(p, &queue::enqueue(2)), OpValue::Bool(true));
        assert_eq!(q.apply(p, &queue::dequeue()), OpValue::Int(1));
        assert_eq!(q.apply(p, &queue::dequeue()), OpValue::Int(2));
        assert_eq!(q.apply(p, &queue::dequeue()), OpValue::Empty);
    }

    #[test]
    fn stack_lifo_behaviour_and_unknown_ops() {
        let s = SpecObject::new(StackSpec::new());
        let p = ProcessId::new(0);
        assert_eq!(s.apply(p, &stack::push(1)), OpValue::Bool(true));
        assert_eq!(s.apply(p, &stack::pop()), OpValue::Int(1));
        assert_eq!(s.apply(p, &queue::dequeue()), OpValue::Error);
        assert_eq!(s.kind(), ObjectKind::Stack);
        assert!(s.name().contains("lock-based"));
    }
}
