//! Wait-free integer read/write register.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicI64, Ordering};

/// A wait-free integer register backed by a hardware atomic word, initially `0`.
///
/// `Write(v)` responds `true`; `Read()` responds the last written value.
#[derive(Debug, Default)]
pub struct AtomicIntRegister {
    value: AtomicI64,
}

impl AtomicIntRegister {
    /// Creates a register initialised to zero.
    pub fn new() -> Self {
        AtomicIntRegister {
            value: AtomicI64::new(0),
        }
    }
}

impl ConcurrentObject for AtomicIntRegister {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Write" => match op.arg.as_int() {
                Some(v) => {
                    self.value.store(v, Ordering::Release);
                    OpValue::Bool(true)
                }
                None => OpValue::Error,
            },
            "Read" => OpValue::Int(self.value.load(Ordering::Acquire)),
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        "atomic register (wait-free)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::register as ops;

    #[test]
    fn read_returns_last_write() {
        let r = AtomicIntRegister::new();
        let p = ProcessId::new(0);
        assert_eq!(r.apply(p, &ops::read()), OpValue::Int(0));
        assert_eq!(r.apply(p, &ops::write(9)), OpValue::Bool(true));
        assert_eq!(r.apply(p, &ops::read()), OpValue::Int(9));
        assert_eq!(r.apply(p, &Operation::nullary("Write")), OpValue::Error);
        assert_eq!(r.apply(p, &Operation::nullary("Inc")), OpValue::Error);
        assert_eq!(r.kind(), ObjectKind::Register);
    }
}
