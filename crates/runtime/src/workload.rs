//! Seeded random workloads per object kind.

use linrv_history::Operation;
use linrv_spec::ops;
use linrv_spec::ObjectKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which operation mix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Enqueue/Dequeue mix (50/50).
    Queue,
    /// Push/Pop mix (50/50).
    Stack,
    /// Add/Remove/Contains mix (40/30/30) over a small key range.
    Set,
    /// Insert/ExtractMin mix (50/50).
    PriorityQueue,
    /// Inc/Read mix (70/30).
    Counter,
    /// Write/Read mix (50/50).
    Register,
    /// A single Decide per process.
    Consensus,
}

impl WorkloadKind {
    /// The canonical workload for a sequential object (inverse of
    /// [`WorkloadKind::object_kind`]).
    pub fn for_object(kind: ObjectKind) -> WorkloadKind {
        match kind {
            ObjectKind::Queue => WorkloadKind::Queue,
            ObjectKind::Stack => WorkloadKind::Stack,
            ObjectKind::Set => WorkloadKind::Set,
            ObjectKind::PriorityQueue => WorkloadKind::PriorityQueue,
            ObjectKind::Counter => WorkloadKind::Counter,
            ObjectKind::Register => WorkloadKind::Register,
            ObjectKind::Consensus => WorkloadKind::Consensus,
        }
    }

    /// The sequential object this workload targets.
    pub fn object_kind(self) -> ObjectKind {
        match self {
            WorkloadKind::Queue => ObjectKind::Queue,
            WorkloadKind::Stack => ObjectKind::Stack,
            WorkloadKind::Set => ObjectKind::Set,
            WorkloadKind::PriorityQueue => ObjectKind::PriorityQueue,
            WorkloadKind::Counter => ObjectKind::Counter,
            WorkloadKind::Register => ObjectKind::Register,
            WorkloadKind::Consensus => ObjectKind::Consensus,
        }
    }
}

/// A reproducible per-process operation sequence generator.
///
/// The same `(kind, seed, process, len)` always yields the same operations, so
/// experiments are repeatable. Inserted values are globally unique across processes
/// (encoding the process index in the value), which keeps checker instances small and
/// mirrors the paper's assumption that all `Apply` inputs are distinct.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Operation mix.
    pub kind: WorkloadKind,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        Workload { kind, seed }
    }

    /// Generates the operation sequence for one process.
    pub fn operations_for(&self, process: usize, len: usize) -> Vec<Operation> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (process as u64).wrapping_mul(0x9E37_79B9));
        let mut next_value: i64 = (process as i64) * 1_000_000 + 1;
        let mut fresh = || {
            let v = next_value;
            next_value += 1;
            v
        };
        match self.kind {
            WorkloadKind::Queue => (0..len)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        ops::queue::enqueue(fresh())
                    } else {
                        ops::queue::dequeue()
                    }
                })
                .collect(),
            WorkloadKind::Stack => (0..len)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        ops::stack::push(fresh())
                    } else {
                        ops::stack::pop()
                    }
                })
                .collect(),
            WorkloadKind::Set => (0..len)
                .map(|_| {
                    let key = rng.gen_range(0..8);
                    match rng.gen_range(0..10) {
                        0..=3 => ops::set::add(key),
                        4..=6 => ops::set::remove(key),
                        _ => ops::set::contains(key),
                    }
                })
                .collect(),
            WorkloadKind::PriorityQueue => (0..len)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        ops::priority_queue::insert(fresh())
                    } else {
                        ops::priority_queue::extract_min()
                    }
                })
                .collect(),
            WorkloadKind::Counter => (0..len)
                .map(|_| {
                    if rng.gen_bool(0.7) {
                        ops::counter::inc()
                    } else {
                        ops::counter::read()
                    }
                })
                .collect(),
            WorkloadKind::Register => (0..len)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        ops::register::write(fresh())
                    } else {
                        ops::register::read()
                    }
                })
                .collect(),
            WorkloadKind::Consensus => vec![ops::consensus::decide(process as i64 + 1); len.min(1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let w = Workload::new(WorkloadKind::Queue, 42);
        assert_eq!(w.operations_for(0, 20), w.operations_for(0, 20));
        assert_ne!(w.operations_for(0, 20), w.operations_for(1, 20));
    }

    #[test]
    fn inserted_values_are_unique_across_processes() {
        let w = Workload::new(WorkloadKind::Stack, 7);
        let a = w.operations_for(0, 50);
        let b = w.operations_for(1, 50);
        let values =
            |ops: &[Operation]| -> Vec<i64> { ops.iter().filter_map(|o| o.arg.as_int()).collect() };
        for v in values(&a) {
            assert!(!values(&b).contains(&v));
        }
    }

    #[test]
    fn consensus_workload_is_one_shot() {
        let w = Workload::new(WorkloadKind::Consensus, 1);
        assert_eq!(w.operations_for(0, 10).len(), 1);
        assert_eq!(w.operations_for(3, 10)[0], ops::consensus::decide(4));
    }

    #[test]
    fn kinds_map_to_object_kinds() {
        assert_eq!(WorkloadKind::Queue.object_kind(), ObjectKind::Queue);
        assert_eq!(WorkloadKind::Set.object_kind(), ObjectKind::Set);
        assert_eq!(WorkloadKind::Consensus.object_kind(), ObjectKind::Consensus);
        for kind in ObjectKind::ALL {
            assert_eq!(WorkloadKind::for_object(kind).object_kind(), kind);
        }
    }
}
