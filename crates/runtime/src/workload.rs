//! Seeded random workloads per object kind.

use linrv_history::Operation;
use linrv_spec::ops;
use linrv_spec::ObjectKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Which operation mix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Enqueue/Dequeue mix (default 50/50).
    Queue,
    /// Push/Pop mix (default 50/50).
    Stack,
    /// Add/Remove/Contains mix (default 40/30/30) over a small key range.
    Set,
    /// Insert/ExtractMin mix (default 50/50).
    PriorityQueue,
    /// Inc/Read mix (default 70/30).
    Counter,
    /// Write/Read mix (default 50/50).
    Register,
    /// A single Decide per process.
    Consensus,
}

impl WorkloadKind {
    /// The canonical workload for a sequential object (inverse of
    /// [`WorkloadKind::object_kind`]).
    pub fn for_object(kind: ObjectKind) -> WorkloadKind {
        match kind {
            ObjectKind::Queue => WorkloadKind::Queue,
            ObjectKind::Stack => WorkloadKind::Stack,
            ObjectKind::Set => WorkloadKind::Set,
            ObjectKind::PriorityQueue => WorkloadKind::PriorityQueue,
            ObjectKind::Counter => WorkloadKind::Counter,
            ObjectKind::Register => WorkloadKind::Register,
            ObjectKind::Consensus => WorkloadKind::Consensus,
        }
    }

    /// The sequential object this workload targets.
    pub fn object_kind(self) -> ObjectKind {
        match self {
            WorkloadKind::Queue => ObjectKind::Queue,
            WorkloadKind::Stack => ObjectKind::Stack,
            WorkloadKind::Set => ObjectKind::Set,
            WorkloadKind::PriorityQueue => ObjectKind::PriorityQueue,
            WorkloadKind::Counter => ObjectKind::Counter,
            WorkloadKind::Register => ObjectKind::Register,
            WorkloadKind::Consensus => ObjectKind::Consensus,
        }
    }
}

/// Configurable operation-ratio weights and key-selection knobs for a workload.
///
/// Every [`WorkloadKind`] samples its operations from a `Mix`: integer ratio
/// `weights` over the kind's operation classes (in declaration order — e.g.
/// `[enqueue, dequeue, _]` for queues, `[add, remove, contains]` for sets), a
/// `key_range` for keyed kinds, and a hot-key `skew` exponent. Two-class kinds
/// ignore the third weight; consensus ignores the mix entirely (one `Decide`
/// per process).
///
/// [`Mix::default_for`] reproduces the historical hardcoded mixes **sample for
/// sample**: a workload built with [`Workload::new`] draws exactly the same RNG
/// sequence as before this knob existed, so seeded traces (and the golden
/// corpus) regenerate byte-identically.
///
/// ```
/// use linrv_runtime::{Mix, Workload, WorkloadKind};
///
/// // An enqueue-only workload over a hot 4-key range.
/// let mix = Mix::default_for(WorkloadKind::Queue).with_weights([1, 0, 0]);
/// let w = Workload::new(WorkloadKind::Queue, 7).with_mix(mix);
/// assert!(w
///     .operations_for(0, 10)
///     .iter()
///     .all(|op| op.kind == "Enqueue"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Integer ratio weights over the kind's operation classes. Unused trailing
    /// classes are ignored; the weights actually in use must not all be zero.
    pub weights: [u32; 3],
    /// Number of distinct keys keyed kinds (the set) draw from. Must be
    /// positive.
    pub key_range: u32,
    /// Hot-key skew exponent: `0.0` is uniform; larger values concentrate keys
    /// near `0` (zipf-ish, via the power transform `u^(1+skew)`).
    pub skew: f64,
}

impl Mix {
    /// The historical hardcoded mix for `kind` (50/50, 70/30 for counters,
    /// 40/30/30 over 8 keys for sets — see the [`WorkloadKind`] docs).
    pub fn default_for(kind: WorkloadKind) -> Mix {
        let weights = match kind {
            WorkloadKind::Counter => [7, 3, 0],
            WorkloadKind::Set => [4, 3, 3],
            WorkloadKind::Consensus => [1, 0, 0],
            _ => [1, 1, 0],
        };
        Mix {
            weights,
            key_range: 8,
            skew: 0.0,
        }
    }

    /// Replaces the ratio weights (builder style).
    pub fn with_weights(mut self, weights: [u32; 3]) -> Mix {
        self.weights = weights;
        self
    }

    /// Replaces the key range (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `key_range` is zero.
    pub fn with_key_range(mut self, key_range: u32) -> Mix {
        assert!(key_range > 0, "key_range must be positive");
        self.key_range = key_range;
        self
    }

    /// Replaces the skew exponent (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `skew` is negative or not finite.
    pub fn with_skew(mut self, skew: f64) -> Mix {
        assert!(skew.is_finite() && skew >= 0.0, "skew must be >= 0");
        self.skew = skew;
        self
    }

    /// Picks between the kind's first two operation classes; `true` is class 0.
    ///
    /// Implemented with `gen_bool` (not `gen_range`) so default weights consume
    /// the RNG exactly like the historical `gen_bool(0.5)` / `gen_bool(0.7)`
    /// calls did.
    fn pick_first(&self, rng: &mut StdRng) -> bool {
        let total = self.weights[0] + self.weights[1];
        assert!(total > 0, "mix weights must not all be zero");
        rng.gen_bool(f64::from(self.weights[0]) / f64::from(total))
    }

    /// Picks one of the kind's three operation classes by weight.
    fn pick_class3(&self, rng: &mut StdRng) -> usize {
        let total: u32 = self.weights.iter().sum();
        assert!(total > 0, "mix weights must not all be zero");
        let roll = rng.gen_range(0..i64::from(total));
        if roll < i64::from(self.weights[0]) {
            0
        } else if roll < i64::from(self.weights[0] + self.weights[1]) {
            1
        } else {
            2
        }
    }

    /// Draws a key from `0..key_range`, hot-skewed toward `0` when `skew > 0`.
    fn key(&self, rng: &mut StdRng) -> i64 {
        let range = i64::from(self.key_range);
        if self.skew == 0.0 {
            rng.gen_range(0..range)
        } else {
            // u^(1+skew) over [0, 1) concentrates mass near zero. `powf` is the
            // one platform-dependent operation in the pipeline; skewed runs are
            // reproducible per build, unskewed runs everywhere.
            let unit = rng.gen_range(0..(1i64 << 53)) as f64 / (1u64 << 53) as f64;
            ((unit.powf(1.0 + self.skew) * range as f64) as i64).min(range - 1)
        }
    }

    /// Samples one operation of `kind` for `process` from this mix.
    ///
    /// `fresh` supplies globally unique insertion values (see
    /// [`Workload::operations_for`]). The RNG consumption per sample is fixed
    /// per kind, so mixes can be swapped without perturbing later draws.
    pub fn sample(
        &self,
        kind: WorkloadKind,
        process: usize,
        rng: &mut StdRng,
        fresh: &mut impl FnMut() -> i64,
    ) -> Operation {
        match kind {
            WorkloadKind::Queue => {
                if self.pick_first(rng) {
                    ops::queue::enqueue(fresh())
                } else {
                    ops::queue::dequeue()
                }
            }
            WorkloadKind::Stack => {
                if self.pick_first(rng) {
                    ops::stack::push(fresh())
                } else {
                    ops::stack::pop()
                }
            }
            WorkloadKind::Set => {
                let key = self.key(rng);
                match self.pick_class3(rng) {
                    0 => ops::set::add(key),
                    1 => ops::set::remove(key),
                    _ => ops::set::contains(key),
                }
            }
            WorkloadKind::PriorityQueue => {
                if self.pick_first(rng) {
                    ops::priority_queue::insert(fresh())
                } else {
                    ops::priority_queue::extract_min()
                }
            }
            WorkloadKind::Counter => {
                if self.pick_first(rng) {
                    ops::counter::inc()
                } else {
                    ops::counter::read()
                }
            }
            WorkloadKind::Register => {
                if self.pick_first(rng) {
                    ops::register::write(fresh())
                } else {
                    ops::register::read()
                }
            }
            WorkloadKind::Consensus => ops::consensus::decide(process as i64 + 1),
        }
    }
}

/// A reproducible per-process operation sequence generator.
///
/// The same `(kind, seed, mix, process, len)` always yields the same operations,
/// so experiments are repeatable. Inserted values are globally unique across
/// processes (encoding the process index in the value), which keeps checker
/// instances small and mirrors the paper's assumption that all `Apply` inputs
/// are distinct.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Operation mix.
    pub kind: WorkloadKind,
    /// RNG seed.
    pub seed: u64,
    /// Ratio weights and key knobs; defaults to [`Mix::default_for`] the kind.
    pub mix: Mix,
}

impl Workload {
    /// Creates a workload description with the kind's default [`Mix`].
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        Workload {
            kind,
            seed,
            mix: Mix::default_for(kind),
        }
    }

    /// Replaces the operation mix (builder style).
    pub fn with_mix(mut self, mix: Mix) -> Self {
        self.mix = mix;
        self
    }

    /// Generates the operation sequence for one process.
    pub fn operations_for(&self, process: usize, len: usize) -> Vec<Operation> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (process as u64).wrapping_mul(0x9E37_79B9));
        let mut next_value: i64 = (process as i64) * 1_000_000 + 1;
        let mut fresh = || {
            let v = next_value;
            next_value += 1;
            v
        };
        // Consensus workloads are one-shot regardless of the requested length.
        let len = if self.kind == WorkloadKind::Consensus {
            len.min(1)
        } else {
            len
        };
        (0..len)
            .map(|_| self.mix.sample(self.kind, process, &mut rng, &mut fresh))
            .collect()
    }
}

/// Adapts a [`Workload`] into a pull-based
/// [`OpSource`](crate::recorder::OpSource) for the controlled scheduler.
#[derive(Debug)]
pub struct WorkloadSource {
    queues: Vec<VecDeque<Operation>>,
}

impl WorkloadSource {
    /// Pre-generates each process's sequence, exactly as
    /// [`record_scheduled`](crate::recorder::record_scheduled) would.
    pub fn new(workload: &Workload, processes: usize, ops_per_process: usize) -> Self {
        WorkloadSource {
            queues: (0..processes)
                .map(|p| workload.operations_for(p, ops_per_process).into())
                .collect(),
        }
    }
}

impl crate::recorder::OpSource for WorkloadSource {
    fn next_step(&mut self, process: usize) -> Option<crate::recorder::SourceStep> {
        self.queues
            .get_mut(process)?
            .pop_front()
            .map(crate::recorder::SourceStep::Invoke)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let w = Workload::new(WorkloadKind::Queue, 42);
        assert_eq!(w.operations_for(0, 20), w.operations_for(0, 20));
        assert_ne!(w.operations_for(0, 20), w.operations_for(1, 20));
    }

    #[test]
    fn inserted_values_are_unique_across_processes() {
        let w = Workload::new(WorkloadKind::Stack, 7);
        let a = w.operations_for(0, 50);
        let b = w.operations_for(1, 50);
        let values =
            |ops: &[Operation]| -> Vec<i64> { ops.iter().filter_map(|o| o.arg.as_int()).collect() };
        for v in values(&a) {
            assert!(!values(&b).contains(&v));
        }
    }

    #[test]
    fn consensus_workload_is_one_shot() {
        let w = Workload::new(WorkloadKind::Consensus, 1);
        assert_eq!(w.operations_for(0, 10).len(), 1);
        assert_eq!(w.operations_for(3, 10)[0], ops::consensus::decide(4));
    }

    #[test]
    fn kinds_map_to_object_kinds() {
        assert_eq!(WorkloadKind::Queue.object_kind(), ObjectKind::Queue);
        assert_eq!(WorkloadKind::Set.object_kind(), ObjectKind::Set);
        assert_eq!(WorkloadKind::Consensus.object_kind(), ObjectKind::Consensus);
        for kind in ObjectKind::ALL {
            assert_eq!(WorkloadKind::for_object(kind).object_kind(), kind);
        }
    }

    #[test]
    fn default_mix_reproduces_the_historical_sampling() {
        // The historical generator (before mixes were configurable) drew
        // `gen_bool(0.5)` / `gen_bool(0.7)` / `gen_range(0..8)` +
        // `gen_range(0..10)` directly. The default mix must replay it exactly:
        // pin one sequence per shape so any change to the sampling shows up.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let w = Workload::new(WorkloadKind::Queue, 42);
        let got = w.operations_for(2, 6);
        let mut rng = StdRng::seed_from_u64(42 ^ 2u64.wrapping_mul(0x9E37_79B9));
        let mut next = 2_000_001i64;
        let want: Vec<Operation> = (0..6)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    let v = next;
                    next += 1;
                    ops::queue::enqueue(v)
                } else {
                    ops::queue::dequeue()
                }
            })
            .collect();
        assert_eq!(got, want);

        let w = Workload::new(WorkloadKind::Set, 13);
        let got = w.operations_for(1, 6);
        let mut rng = StdRng::seed_from_u64(13 ^ 0x9E37_79B9);
        let want: Vec<Operation> = (0..6)
            .map(|_| {
                let key = rng.gen_range(0..8);
                match rng.gen_range(0..10) {
                    0..=3 => ops::set::add(key),
                    4..=6 => ops::set::remove(key),
                    _ => ops::set::contains(key),
                }
            })
            .collect();
        assert_eq!(got, want);

        let w = Workload::new(WorkloadKind::Counter, 5);
        let got = w.operations_for(0, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let want: Vec<Operation> = (0..6)
            .map(|_| {
                if rng.gen_bool(0.7) {
                    ops::counter::inc()
                } else {
                    ops::counter::read()
                }
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn extreme_weights_pin_the_operation_class() {
        let only_enqueues = Workload::new(WorkloadKind::Queue, 3)
            .with_mix(Mix::default_for(WorkloadKind::Queue).with_weights([1, 0, 0]));
        assert!(only_enqueues
            .operations_for(0, 30)
            .iter()
            .all(|op| op.kind == "Enqueue"));
        let only_pops = Workload::new(WorkloadKind::Stack, 3)
            .with_mix(Mix::default_for(WorkloadKind::Stack).with_weights([0, 1, 0]));
        assert!(only_pops
            .operations_for(0, 30)
            .iter()
            .all(|op| op.kind == "Pop"));
        let no_contains = Workload::new(WorkloadKind::Set, 3)
            .with_mix(Mix::default_for(WorkloadKind::Set).with_weights([1, 1, 0]));
        assert!(no_contains
            .operations_for(0, 50)
            .iter()
            .all(|op| op.kind != "Contains"));
    }

    #[test]
    fn skewed_keys_stay_in_range_and_concentrate_low() {
        let mix = Mix::default_for(WorkloadKind::Set)
            .with_key_range(16)
            .with_skew(2.0);
        let w = Workload::new(WorkloadKind::Set, 11).with_mix(mix);
        let keys: Vec<i64> = w
            .operations_for(0, 400)
            .iter()
            .filter_map(|op| op.arg.as_int())
            .collect();
        assert!(keys.iter().all(|&k| (0..16).contains(&k)));
        // With skew 2.0 the bottom quarter of the range must dominate.
        let low = keys.iter().filter(|&&k| k < 4).count();
        assert!(
            low * 2 > keys.len(),
            "expected >50% of keys below 4, got {low}/{}",
            keys.len()
        );
    }

    #[test]
    fn workload_source_drains_the_same_sequences() {
        use crate::recorder::{OpSource, SourceStep};
        let w = Workload::new(WorkloadKind::Queue, 21);
        let mut source = WorkloadSource::new(&w, 2, 5);
        let mut drained = Vec::new();
        while let Some(SourceStep::Invoke(op)) = source.next_step(1) {
            drained.push(op);
        }
        assert_eq!(drained, w.operations_for(1, 5));
        assert!(source.next_step(1).is_none());
        assert!(source.next_step(7).is_none());
    }
}
