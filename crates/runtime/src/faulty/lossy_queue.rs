//! A queue that silently drops some enqueued elements.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// A FIFO queue that acknowledges every `Enqueue` with `true` but silently discards
/// every `drop_every`-th enqueued element. Dequeuers later observe `empty` (or the
/// wrong element order) even though the lost element was provably enqueued — a
/// linearizability violation the verifier must eventually report.
#[derive(Debug)]
pub struct LossyQueue {
    inner: Mutex<VecDeque<i64>>,
    enqueue_count: AtomicU64,
    drop_every: u64,
}

impl LossyQueue {
    /// Creates a queue that drops every `drop_every`-th enqueued element.
    ///
    /// # Panics
    ///
    /// Panics if `drop_every` is zero.
    pub fn new(drop_every: u64) -> Self {
        assert!(drop_every > 0, "drop_every must be positive");
        LossyQueue {
            inner: Mutex::new(VecDeque::new()),
            enqueue_count: AtomicU64::new(0),
            drop_every,
        }
    }
}

impl ConcurrentObject for LossyQueue {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Queue
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Enqueue" => match op.arg.as_int() {
                Some(v) => {
                    let count = self.enqueue_count.fetch_add(1, Ordering::AcqRel) + 1;
                    if count % self.drop_every != 0 {
                        self.inner.lock().push_back(v);
                    }
                    OpValue::Bool(true)
                }
                None => OpValue::Error,
            },
            "Dequeue" => match self.inner.lock().pop_front() {
                Some(v) => OpValue::Int(v),
                None => OpValue::Empty,
            },
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        format!("lossy queue (drops every {}th enqueue)", self.drop_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::queue as ops;

    #[test]
    fn drops_every_kth_element() {
        let q = LossyQueue::new(3);
        let p = ProcessId::new(0);
        for v in 1..=6 {
            assert_eq!(q.apply(p, &ops::enqueue(v)), OpValue::Bool(true));
        }
        let mut drained = Vec::new();
        while let OpValue::Int(v) = q.apply(p, &ops::dequeue()) {
            drained.push(v);
        }
        assert_eq!(drained, vec![1, 2, 4, 5], "elements 3 and 6 must be lost");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        let _ = LossyQueue::new(0);
    }
}
