//! The adversarial queue implementation from the proof of Theorem 5.1.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicBool, Ordering};

/// The non-linearizable queue used in the impossibility proof (Theorem 5.1):
///
/// * every `Enqueue` responds `true`;
/// * every `Dequeue` responds `empty` — except the **first** operation of the
///   distinguished process `p_2`, which responds `1` even though nothing was ever
///   enqueued before it.
///
/// Whether the resulting history is linearizable depends solely on the real-time order
/// of `p_2`'s first dequeue and the first `Enqueue(1)`: if the dequeue completes before
/// the enqueue starts (execution `E` of the proof), the history is not linearizable; if
/// they are re-ordered (execution `F`), it is. The two executions are indistinguishable
/// inside any verifier — the heart of the impossibility argument, reproduced
/// executably in `linrv-core::impossibility`.
#[derive(Debug)]
pub struct Theorem51Queue {
    /// Index of the distinguished process (the paper's `p_2`).
    special: ProcessId,
    special_first_done: AtomicBool,
}

impl Theorem51Queue {
    /// Creates the adversarial queue with `special` playing the role of `p_2`.
    pub fn new(special: ProcessId) -> Self {
        Theorem51Queue {
            special,
            special_first_done: AtomicBool::new(false),
        }
    }

    /// Creates the adversarial queue with the process at zero-based `index` playing
    /// the role of `p_2` (convenience for facade call sites, where process ids are
    /// implied by session registration order).
    pub fn with_special_index(index: usize) -> Self {
        Self::new(ProcessId::from(index))
    }
}

impl ConcurrentObject for Theorem51Queue {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Queue
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Enqueue" => OpValue::Bool(true),
            "Dequeue" => {
                if process == self.special
                    && self
                        .special_first_done
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    OpValue::Int(1)
                } else {
                    OpValue::Empty
                }
            }
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        "Theorem 5.1 adversarial queue".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::queue as ops;

    #[test]
    fn only_the_special_process_first_dequeue_returns_one() {
        let p1 = ProcessId::new(0);
        let p2 = ProcessId::new(1);
        let q = Theorem51Queue::new(p2);
        assert_eq!(q.apply(p1, &ops::enqueue(1)), OpValue::Bool(true));
        assert_eq!(q.apply(p1, &ops::dequeue()), OpValue::Empty);
        assert_eq!(q.apply(p2, &ops::dequeue()), OpValue::Int(1));
        assert_eq!(q.apply(p2, &ops::dequeue()), OpValue::Empty);
        assert_eq!(q.apply(p2, &Operation::nullary("Pop")), OpValue::Error);
    }
}
