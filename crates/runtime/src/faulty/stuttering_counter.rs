//! A counter that loses some increments.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A fetch-and-increment counter that *loses* every `lose_every`-th increment: the
/// operation still responds with the pre-increment value, but the counter does not
/// advance, so two `Inc` operations separated in real time can return the same value —
/// a violation the verifier must catch.
#[derive(Debug)]
pub struct StutteringCounter {
    value: AtomicI64,
    inc_count: AtomicU64,
    lose_every: u64,
}

impl StutteringCounter {
    /// Creates a counter that loses every `lose_every`-th increment.
    ///
    /// # Panics
    ///
    /// Panics if `lose_every` is zero.
    pub fn new(lose_every: u64) -> Self {
        assert!(lose_every > 0, "lose_every must be positive");
        StutteringCounter {
            value: AtomicI64::new(0),
            inc_count: AtomicU64::new(0),
            lose_every,
        }
    }
}

impl ConcurrentObject for StutteringCounter {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Counter
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Inc" => {
                let count = self.inc_count.fetch_add(1, Ordering::AcqRel) + 1;
                if count % self.lose_every == 0 {
                    OpValue::Int(self.value.load(Ordering::Acquire))
                } else {
                    OpValue::Int(self.value.fetch_add(1, Ordering::AcqRel))
                }
            }
            "Read" => OpValue::Int(self.value.load(Ordering::Acquire)),
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        format!(
            "stuttering counter (loses every {}th increment)",
            self.lose_every
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::counter as ops;

    #[test]
    fn every_kth_increment_is_lost() {
        let c = StutteringCounter::new(2);
        let p = ProcessId::new(0);
        assert_eq!(c.apply(p, &ops::inc()), OpValue::Int(0)); // effective
        assert_eq!(c.apply(p, &ops::inc()), OpValue::Int(1)); // lost
        assert_eq!(c.apply(p, &ops::inc()), OpValue::Int(1)); // effective — repeats 1
        assert_eq!(c.apply(p, &ops::read()), OpValue::Int(2));
    }
}
