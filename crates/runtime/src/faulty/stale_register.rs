//! A register whose reads are sometimes stale.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// An integer register in which every `stale_every`-th `Read` returns the *previous*
/// value instead of the current one — a new/old inversion when the overwrite strictly
/// precedes the read.
#[derive(Debug)]
pub struct StaleRegister {
    current: AtomicI64,
    previous: AtomicI64,
    read_count: AtomicU64,
    stale_every: u64,
}

impl StaleRegister {
    /// Creates a register whose every `stale_every`-th read is stale.
    ///
    /// # Panics
    ///
    /// Panics if `stale_every` is zero.
    pub fn new(stale_every: u64) -> Self {
        assert!(stale_every > 0, "stale_every must be positive");
        StaleRegister {
            current: AtomicI64::new(0),
            previous: AtomicI64::new(0),
            read_count: AtomicU64::new(0),
            stale_every,
        }
    }
}

impl ConcurrentObject for StaleRegister {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Write" => match op.arg.as_int() {
                Some(v) => {
                    let old = self.current.swap(v, Ordering::AcqRel);
                    self.previous.store(old, Ordering::Release);
                    OpValue::Bool(true)
                }
                None => OpValue::Error,
            },
            "Read" => {
                let count = self.read_count.fetch_add(1, Ordering::AcqRel) + 1;
                if count % self.stale_every == 0 {
                    OpValue::Int(self.previous.load(Ordering::Acquire))
                } else {
                    OpValue::Int(self.current.load(Ordering::Acquire))
                }
            }
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        format!(
            "stale register (every {}th read is stale)",
            self.stale_every
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::register as ops;

    #[test]
    fn every_kth_read_is_stale() {
        let r = StaleRegister::new(2);
        let p = ProcessId::new(0);
        r.apply(p, &ops::write(1));
        r.apply(p, &ops::write(2));
        assert_eq!(r.apply(p, &ops::read()), OpValue::Int(2)); // fresh
        assert_eq!(r.apply(p, &ops::read()), OpValue::Int(1)); // stale
        assert_eq!(r.apply(p, &ops::read()), OpValue::Int(2)); // fresh
    }
}
