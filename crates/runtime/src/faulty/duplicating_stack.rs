//! A stack that occasionally pops without removing.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A LIFO stack in which every `dup_every`-th `Pop` returns the top element *without
/// removing it*, so a later `Pop` returns the same element again — a duplication bug
/// producing non-linearizable histories.
#[derive(Debug)]
pub struct DuplicatingStack {
    inner: Mutex<Vec<i64>>,
    pop_count: AtomicU64,
    dup_every: u64,
}

impl DuplicatingStack {
    /// Creates a stack in which every `dup_every`-th pop duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `dup_every` is zero.
    pub fn new(dup_every: u64) -> Self {
        assert!(dup_every > 0, "dup_every must be positive");
        DuplicatingStack {
            inner: Mutex::new(Vec::new()),
            pop_count: AtomicU64::new(0),
            dup_every,
        }
    }
}

impl ConcurrentObject for DuplicatingStack {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Stack
    }

    fn apply(&self, _process: ProcessId, op: &Operation) -> OpValue {
        match op.kind.as_str() {
            "Push" => match op.arg.as_int() {
                Some(v) => {
                    self.inner.lock().push(v);
                    OpValue::Bool(true)
                }
                None => OpValue::Error,
            },
            "Pop" => {
                let count = self.pop_count.fetch_add(1, Ordering::AcqRel) + 1;
                let mut stack = self.inner.lock();
                if count % self.dup_every == 0 {
                    match stack.last() {
                        Some(v) => OpValue::Int(*v),
                        None => OpValue::Empty,
                    }
                } else {
                    match stack.pop() {
                        Some(v) => OpValue::Int(v),
                        None => OpValue::Empty,
                    }
                }
            }
            _ => OpValue::Error,
        }
    }

    fn name(&self) -> String {
        format!(
            "duplicating stack (every {}th pop duplicates)",
            self.dup_every
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::stack as ops;

    #[test]
    fn every_kth_pop_duplicates() {
        let s = DuplicatingStack::new(2);
        let p = ProcessId::new(0);
        s.apply(p, &ops::push(1));
        s.apply(p, &ops::push(2));
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Int(2)); // pop #1: normal
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Int(1)); // pop #2: duplicates 1
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Int(1)); // pop #3: normal, pops 1
        assert_eq!(s.apply(p, &ops::pop()), OpValue::Empty); // pop #4: duplicates empty
    }
}
