//! Fault-injected and adversarial implementations.
//!
//! The completeness half of the paper's verification problem (Definition 6.1(2)) is
//! only observable when the black box `A` actually misbehaves. The implementations in
//! this module misbehave *deterministically* — every `k`-th operation of a given kind
//! is corrupted — so tests and benches can rely on a violation appearing after a known
//! number of operations.

mod duplicating_stack;
mod lossy_queue;
mod mutated;
mod stale_register;
mod stuttering_counter;
mod theorem51;

pub use duplicating_stack::DuplicatingStack;
pub use lossy_queue::LossyQueue;
pub use mutated::MutatedObject;
pub use stale_register::StaleRegister;
pub use stuttering_counter::StutteringCounter;
pub use theorem51::Theorem51Queue;

use crate::impls::SpecObject;
use crate::object::ConcurrentObject;
use linrv_spec::{ConsensusSpec, ObjectKind, PriorityQueueSpec, SetSpec};

/// The canonical faulty implementation for each object kind, corrupting every
/// `every`-th operation of the relevant kind.
///
/// Kinds with a purpose-built fault injector use it (lossy queue, duplicating
/// stack, stuttering counter, stale register); the rest wrap the sequential
/// specification in a [`MutatedObject`]. Used by `linrv gen --faulty` and the
/// golden-trace corpus, so every kind has a deterministic violation source.
pub fn faulty_object(kind: ObjectKind, every: u64) -> Box<dyn ConcurrentObject> {
    match kind {
        ObjectKind::Queue => Box::new(LossyQueue::new(every)),
        ObjectKind::Stack => Box::new(DuplicatingStack::new(every)),
        ObjectKind::Counter => Box::new(StutteringCounter::new(every)),
        ObjectKind::Register => Box::new(StaleRegister::new(every)),
        ObjectKind::Set => Box::new(MutatedObject::new(SpecObject::new(SetSpec::new()), every)),
        ObjectKind::PriorityQueue => Box::new(MutatedObject::new(
            SpecObject::new(PriorityQueueSpec::new()),
            every,
        )),
        ObjectKind::Consensus => Box::new(MutatedObject::new(
            SpecObject::new(ConsensusSpec::new()),
            every,
        )),
    }
}
