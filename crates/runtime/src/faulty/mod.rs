//! Fault-injected and adversarial implementations.
//!
//! The completeness half of the paper's verification problem (Definition 6.1(2)) is
//! only observable when the black box `A` actually misbehaves. The implementations in
//! this module misbehave *deterministically* — every `k`-th operation of a given kind
//! is corrupted — so tests and benches can rely on a violation appearing after a known
//! number of operations.

mod duplicating_stack;
mod lossy_queue;
mod stale_register;
mod stuttering_counter;
mod theorem51;

pub use duplicating_stack::DuplicatingStack;
pub use lossy_queue::LossyQueue;
pub use stale_register::StaleRegister;
pub use stuttering_counter::StutteringCounter;
pub use theorem51::Theorem51Queue;
