//! A generic response-corrupting wrapper, giving every object kind a faulty
//! variant.

use crate::object::ConcurrentObject;
use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps any implementation and corrupts every `corrupt_every`-th response.
///
/// The purpose-built faulty implementations ([`LossyQueue`](crate::faulty::LossyQueue)
/// and friends) corrupt *state*, which only some object kinds have a dedicated
/// wrapper for. `MutatedObject` instead corrupts the *response value* on its
/// way out, which works for every kind — it is how the sets, priority queues
/// and consensus objects of the golden-trace corpus are made faulty.
///
/// Corruption is deterministic (a shared operation counter, like the other
/// faulty implementations) and always produces a value of the right *type* but
/// the wrong *content*, far outside the range any workload generates — so a
/// corrupted response can never be accidentally correct:
///
/// * integers gain [`MutatedObject::OFFSET`],
/// * booleans flip,
/// * the distinguished `empty` becomes the integer [`MutatedObject::OFFSET`]
///   (an element that provably never entered the object),
/// * everything else becomes `ERROR`.
#[derive(Debug)]
pub struct MutatedObject<A> {
    inner: A,
    corrupt_every: u64,
    count: AtomicU64,
}

impl<A> MutatedObject<A> {
    /// The amount added to corrupted integers; workload values stay far below
    /// it (they encode a process index times one million, plus a counter).
    pub const OFFSET: i64 = 1_000_000_000;

    /// Wraps `inner`, corrupting every `corrupt_every`-th response.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt_every` is zero.
    pub fn new(inner: A, corrupt_every: u64) -> Self {
        assert!(corrupt_every > 0, "corrupt_every must be positive");
        MutatedObject {
            inner,
            corrupt_every,
            count: AtomicU64::new(0),
        }
    }

    fn corrupt(value: OpValue) -> OpValue {
        match value {
            OpValue::Int(i) => OpValue::Int(i + Self::OFFSET),
            OpValue::Bool(b) => OpValue::Bool(!b),
            OpValue::Empty => OpValue::Int(Self::OFFSET),
            _ => OpValue::Error,
        }
    }
}

impl<A: ConcurrentObject> ConcurrentObject for MutatedObject<A> {
    fn kind(&self) -> ObjectKind {
        self.inner.kind()
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        let value = self.inner.apply(process, op);
        let count = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if count % self.corrupt_every == 0 {
            Self::corrupt(value)
        } else {
            value
        }
    }

    fn name(&self) -> String {
        format!("mutated {}", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impls::SpecObject;
    use linrv_spec::ops::set;
    use linrv_spec::SetSpec;

    #[test]
    fn every_kth_response_is_corrupted() {
        let object = MutatedObject::new(SpecObject::new(SetSpec::new()), 2);
        let p = ProcessId::new(0);
        assert_eq!(object.apply(p, &set::add(1)), OpValue::Bool(true));
        // Second response: Contains(1) is true, corrupted to false.
        assert_eq!(object.apply(p, &set::contains(1)), OpValue::Bool(false));
        assert_eq!(object.apply(p, &set::contains(1)), OpValue::Bool(true));
        assert_eq!(object.kind(), ObjectKind::Set);
        assert!(object.name().contains("mutated"));
    }

    #[test]
    fn corruption_covers_every_value_shape() {
        assert_eq!(
            MutatedObject::<()>::corrupt(OpValue::Int(5)),
            OpValue::Int(5 + MutatedObject::<()>::OFFSET)
        );
        assert_eq!(
            MutatedObject::<()>::corrupt(OpValue::Bool(true)),
            OpValue::Bool(false)
        );
        assert_eq!(
            MutatedObject::<()>::corrupt(OpValue::Empty),
            OpValue::Int(MutatedObject::<()>::OFFSET)
        );
        assert_eq!(MutatedObject::<()>::corrupt(OpValue::Unit), OpValue::Error);
    }
}
