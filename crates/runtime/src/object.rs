//! The [`ConcurrentObject`] trait: the paper's black-box implementation `A`.

use linrv_history::{OpValue, Operation, ProcessId};
use linrv_spec::ObjectKind;

/// A concurrent implementation of an object, exporting the paper's single high-level
/// entry point `Apply(op)` (Section 2).
///
/// Implementations must be safe to call concurrently from many threads: process `p_i`
/// calls `apply(p_i, op)` and blocks until the operation's response is available. The
/// trait deliberately exposes nothing else — the verifier of the paper treats `A` as a
/// black box, learning about the execution only through invocations and responses.
pub trait ConcurrentObject: Send + Sync {
    /// Which sequential object this implementation claims to implement (used to pick
    /// the specification it is checked against).
    fn kind(&self) -> ObjectKind;

    /// Applies `op` on behalf of process `process` and returns its response.
    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue;

    /// Short human-readable name of the implementation (for reports and benches).
    fn name(&self) -> String {
        format!("{} implementation", self.kind())
    }
}

impl<T: ConcurrentObject + ?Sized> ConcurrentObject for std::sync::Arc<T> {
    fn kind(&self) -> ObjectKind {
        (**self).kind()
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        (**self).apply(process, op)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: ConcurrentObject + ?Sized> ConcurrentObject for Box<T> {
    fn kind(&self) -> ObjectKind {
        (**self).kind()
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        (**self).apply(process, op)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: ConcurrentObject + ?Sized> ConcurrentObject for &T {
    fn kind(&self) -> ObjectKind {
        (**self).kind()
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        (**self).apply(process, op)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::impls::SpecObject;
    use linrv_spec::QueueSpec;
    use std::sync::Arc;

    #[test]
    fn trait_objects_compose_through_arc_and_ref() {
        let object: Arc<dyn ConcurrentObject> = Arc::new(SpecObject::new(QueueSpec::new()));
        assert_eq!(object.kind(), ObjectKind::Queue);
        let by_ref: &dyn ConcurrentObject = &object;
        assert_eq!(by_ref.kind(), ObjectKind::Queue);
        assert!(object.name().contains("queue"));
    }
}
