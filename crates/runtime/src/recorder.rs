//! Ground-truth execution recorder.
//!
//! The recorder drives `n` threads of operations against a [`ConcurrentObject`] and
//! logs every invocation and response into a single totally ordered history. No process
//! *inside* an asynchronous system could build this log — that is precisely the
//! impossibility of Theorem 5.1 — so the recorder serialises its log appends through a
//! mutex and exists purely as experimental scaffolding (testing soundness of the
//! verifier against correct objects, measuring detection latency against faulty ones).
//!
//! Because an operation's invocation is logged slightly *before* `apply` is entered and
//! its response slightly *after* `apply` returns, the recorded intervals are stretched
//! relative to the true execution, exactly like the paper's detected history `E'`
//! (Figure 5). Stretching only removes real-time constraints, so a linearizable object
//! always yields a linearizable recorded history (the property soundness tests rely
//! on).

use crate::object::ConcurrentObject;
use crate::workload::Workload;
use linrv_history::{Event, History, OpId, OpValue, Operation, ProcessId};
use linrv_trace::EventSink;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options controlling a recorded run.
#[derive(Debug, Clone, Copy)]
pub struct RecorderOptions {
    /// Number of processes (threads).
    pub processes: usize,
    /// Operations each process performs.
    pub ops_per_process: usize,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions {
            processes: 3,
            ops_per_process: 50,
        }
    }
}

/// Result of a recorded run.
#[derive(Debug, Clone)]
pub struct RecordedExecution {
    /// The recorded (stretched) real-time history.
    pub history: History,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Total number of operations performed.
    pub operations: usize,
}

/// Shared event log with globally ordered appends.
///
/// When a trace sink is attached, every append is forwarded to it *inside* the
/// log's critical section, so the trace's event order is exactly the recorded
/// history's order.
struct EventLog<'s> {
    events: Mutex<Vec<Event>>,
    next_op: AtomicU64,
    sink: Option<&'s dyn EventSink>,
}

impl<'s> EventLog<'s> {
    fn new(sink: Option<&'s dyn EventSink>) -> Self {
        EventLog {
            events: Mutex::new(Vec::new()),
            next_op: AtomicU64::new(0),
            sink,
        }
    }

    fn fresh_op(&self) -> OpId {
        OpId::new(self.next_op.fetch_add(1, Ordering::Relaxed))
    }

    fn log(&self, event: Event) {
        let mut events = self.events.lock();
        if let Some(sink) = self.sink {
            sink.event(&event);
        }
        events.push(event);
    }

    fn log_invocation(&self, process: ProcessId, id: OpId, op: &Operation) {
        self.log(Event::invocation(process, id, op.clone()));
    }

    fn log_response(&self, process: ProcessId, id: OpId, value: &OpValue) {
        self.log(Event::response(process, id, value.clone()));
    }
}

/// Runs `workload` against `object` with the given options and returns the recorded
/// history.
pub fn record_execution(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
) -> RecordedExecution {
    record_threaded(object, workload, options, None)
}

/// [`record_execution`], additionally streaming every logged event into `sink`
/// (e.g. a [`linrv_trace::SharedTraceWriter`]) as it is appended.
pub fn record_execution_traced(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    sink: &dyn EventSink,
) -> RecordedExecution {
    record_threaded(object, workload, options, Some(sink))
}

fn record_threaded(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    sink: Option<&dyn EventSink>,
) -> RecordedExecution {
    let log = EventLog::new(sink);
    let started = Instant::now();
    let operations = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for proc_index in 0..options.processes {
            let log = &log;
            let object = &object;
            handles.push(scope.spawn(move || {
                let process = ProcessId::new(proc_index as u32);
                let ops = workload.operations_for(proc_index, options.ops_per_process);
                for op in &ops {
                    let id = log.fresh_op();
                    log.log_invocation(process, id, op);
                    let response = object.apply(process, op);
                    log.log_response(process, id, &response);
                }
                ops.len()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    });
    let duration = started.elapsed();
    let history = History::from_events(log.events.into_inner());
    RecordedExecution {
        history,
        duration,
        operations,
    }
}

/// One process's progress through its operation sequence in a scheduled run.
enum Phase {
    /// Between operations; the front of the queue is the next one to invoke.
    Idle,
    /// Invocation logged, `apply` not called yet.
    Invoked(OpId, Operation),
    /// `apply` returned; the response has not been logged yet.
    Applied(OpId, OpValue),
}

/// Runs `workload` against `object` under a **deterministic seeded scheduler**
/// and returns the recorded history.
///
/// Unlike [`record_execution`], no threads are involved: a single loop driven
/// by an RNG seeded with `schedule_seed` repeatedly picks one enabled process
/// and advances it by one step — log its invocation, call `apply`, or log its
/// response. Splitting each operation into three separately scheduled steps
/// still produces overlapping intervals (an operation stays pending while
/// others are scheduled), but the interleaving — and therefore the recorded
/// history — is **bit-for-bit reproducible** from `(workload, options,
/// schedule_seed)`. This is what makes `linrv gen`/`linrv record` deterministic
/// per `--seed`, and what the golden-trace corpus is generated with.
///
/// The `apply` calls themselves are serialised, so the recorded history of a
/// correct (linearizable) implementation is always linearizable, while the
/// deterministically fault-injected implementations in [`crate::faulty`] still
/// misbehave on schedule.
pub fn record_scheduled(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    schedule_seed: u64,
) -> RecordedExecution {
    record_scheduled_impl(object, workload, options, schedule_seed, None)
}

/// [`record_scheduled`], additionally streaming every logged event into `sink`
/// as it is appended.
pub fn record_scheduled_traced(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    schedule_seed: u64,
    sink: &dyn EventSink,
) -> RecordedExecution {
    record_scheduled_impl(object, workload, options, schedule_seed, Some(sink))
}

fn record_scheduled_impl(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    schedule_seed: u64,
    sink: Option<&dyn EventSink>,
) -> RecordedExecution {
    let log = EventLog::new(sink);
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut pending: Vec<VecDeque<Operation>> = (0..options.processes)
        .map(|i| workload.operations_for(i, options.ops_per_process).into())
        .collect();
    let mut phases: Vec<Phase> = (0..options.processes).map(|_| Phase::Idle).collect();
    let mut operations = 0usize;
    loop {
        // Deterministic scheduling: enumerate the processes that can take a
        // step (in process order), then let the seeded RNG pick one.
        let enabled: Vec<usize> = (0..options.processes)
            .filter(|&i| !matches!(phases[i], Phase::Idle) || !pending[i].is_empty())
            .collect();
        if enabled.is_empty() {
            break;
        }
        let process_index = enabled[rng.gen_range(0..enabled.len())];
        let process = ProcessId::new(process_index as u32);
        phases[process_index] = match std::mem::replace(&mut phases[process_index], Phase::Idle) {
            Phase::Idle => {
                let op = pending[process_index]
                    .pop_front()
                    .expect("enabled idle process has a next operation");
                let id = log.fresh_op();
                log.log_invocation(process, id, &op);
                Phase::Invoked(id, op)
            }
            Phase::Invoked(id, op) => {
                let value = object.apply(process, &op);
                Phase::Applied(id, value)
            }
            Phase::Applied(id, value) => {
                log.log_response(process, id, &value);
                operations += 1;
                Phase::Idle
            }
        };
    }
    RecordedExecution {
        history: History::from_events(log.events.into_inner()),
        duration: started.elapsed(),
        operations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::LossyQueue;
    use crate::impls::{AtomicCounter, MsQueue, SpecObject, TreiberStack};
    use crate::workload::WorkloadKind;
    use linrv_check::{GenLinObject, LinSpec};
    use linrv_spec::{CounterSpec, QueueSpec, StackSpec};

    #[test]
    fn recorded_histories_are_well_formed() {
        let queue = MsQueue::new();
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 3),
            RecorderOptions {
                processes: 3,
                ops_per_process: 20,
            },
        );
        assert!(run.history.is_well_formed());
        assert_eq!(run.operations, 60);
        assert_eq!(run.history.len(), 120);
        assert_eq!(run.history.pending_operations().count(), 0);
    }

    #[test]
    fn correct_queue_produces_linearizable_recorded_history() {
        let queue = SpecObject::new(QueueSpec::new());
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 11),
            RecorderOptions {
                processes: 2,
                ops_per_process: 15,
            },
        );
        assert!(LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn correct_stack_produces_linearizable_recorded_history() {
        let stack = TreiberStack::new();
        let run = record_execution(
            &stack,
            Workload::new(WorkloadKind::Stack, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 15,
            },
        );
        assert!(LinSpec::new(StackSpec::new()).contains(&run.history));
    }

    #[test]
    fn correct_counter_produces_linearizable_recorded_history() {
        let counter = AtomicCounter::new();
        let run = record_execution(
            &counter,
            Workload::new(WorkloadKind::Counter, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 12,
            },
        );
        assert!(LinSpec::new(CounterSpec::new()).contains(&run.history));
    }

    #[test]
    fn scheduled_runs_are_bit_for_bit_deterministic() {
        let options = RecorderOptions {
            processes: 3,
            ops_per_process: 40,
        };
        let runs: Vec<History> = (0..2)
            .map(|_| {
                let queue = MsQueue::new();
                record_scheduled(&queue, Workload::new(WorkloadKind::Queue, 42), options, 42)
                    .history
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        // A different schedule seed yields a different interleaving.
        let queue = MsQueue::new();
        let other =
            record_scheduled(&queue, Workload::new(WorkloadKind::Queue, 42), options, 43).history;
        assert_ne!(runs[0], other);
    }

    #[test]
    fn scheduled_histories_are_well_formed_overlapping_and_linearizable() {
        for kind in [WorkloadKind::Queue, WorkloadKind::Stack, WorkloadKind::Set] {
            let object = crate::impls::spec_object(kind.object_kind());
            let run = record_scheduled(
                &*object,
                Workload::new(kind, 7),
                RecorderOptions {
                    processes: 3,
                    ops_per_process: 25,
                },
                7,
            );
            assert!(run.history.is_well_formed());
            assert_eq!(run.operations, 75);
            assert_eq!(run.history.pending_operations().count(), 0);
        }
        let run = record_scheduled(
            &SpecObject::new(QueueSpec::new()),
            Workload::new(WorkloadKind::Queue, 3),
            RecorderOptions {
                processes: 2,
                ops_per_process: 20,
            },
            3,
        );
        assert!(LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn scheduled_faulty_objects_produce_violations() {
        let queue = LossyQueue::new(2);
        let run = record_scheduled(
            &queue,
            Workload::new(WorkloadKind::Queue, 9),
            RecorderOptions {
                processes: 2,
                ops_per_process: 30,
            },
            9,
        );
        assert!(!LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn traced_runs_stream_exactly_the_recorded_events() {
        use linrv_trace::{read_history, SharedTraceWriter, TraceFormat, TraceHeader};
        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Jsonl,
            &TraceHeader::new(linrv_spec::ObjectKind::Queue),
        )
        .unwrap();
        let queue = MsQueue::new();
        let run = record_execution_traced(
            &queue,
            Workload::new(WorkloadKind::Queue, 5),
            RecorderOptions {
                processes: 3,
                ops_per_process: 10,
            },
            &sink,
        );
        let bytes = sink.finish().unwrap();
        let (_, traced) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(traced, run.history);

        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Binary,
            &TraceHeader::new(linrv_spec::ObjectKind::Queue),
        )
        .unwrap();
        let queue = MsQueue::new();
        let run = record_scheduled_traced(
            &queue,
            Workload::new(WorkloadKind::Queue, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 10,
            },
            5,
            &sink,
        );
        let bytes = sink.finish().unwrap();
        let (_, traced) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(traced, run.history);
    }

    #[test]
    fn every_kind_has_correct_and_faulty_factories() {
        use linrv_spec::ObjectKind;
        for kind in ObjectKind::ALL {
            assert_eq!(crate::impls::correct_object(kind).kind(), kind);
            assert_eq!(crate::impls::spec_object(kind).kind(), kind);
            assert_eq!(crate::faulty::faulty_object(kind, 3).kind(), kind);
        }
    }

    #[test]
    fn lossy_queue_eventually_produces_a_non_linearizable_history() {
        // Single-process run: the recorded history is exactly the real one, and losing
        // an enqueued element while later observing `empty` is a violation.
        let queue = LossyQueue::new(2);
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 9),
            RecorderOptions {
                processes: 1,
                ops_per_process: 30,
            },
        );
        assert!(!LinSpec::new(QueueSpec::new()).contains(&run.history));
    }
}
