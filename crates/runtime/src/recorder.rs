//! Ground-truth execution recorder.
//!
//! The recorder drives `n` threads of operations against a [`ConcurrentObject`] and
//! logs every invocation and response into a single totally ordered history. No process
//! *inside* an asynchronous system could build this log — that is precisely the
//! impossibility of Theorem 5.1 — so the recorder serialises its log appends through a
//! mutex and exists purely as experimental scaffolding (testing soundness of the
//! verifier against correct objects, measuring detection latency against faulty ones).
//!
//! Because an operation's invocation is logged slightly *before* `apply` is entered and
//! its response slightly *after* `apply` returns, the recorded intervals are stretched
//! relative to the true execution, exactly like the paper's detected history `E'`
//! (Figure 5). Stretching only removes real-time constraints, so a linearizable object
//! always yields a linearizable recorded history (the property soundness tests rely
//! on).

use crate::object::ConcurrentObject;
use crate::workload::Workload;
use linrv_history::{Event, History, OpId, OpValue, Operation, ProcessId};
use linrv_trace::EventSink;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options controlling a recorded run.
#[derive(Debug, Clone, Copy)]
pub struct RecorderOptions {
    /// Number of processes (threads).
    pub processes: usize,
    /// Operations each process performs.
    pub ops_per_process: usize,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions {
            processes: 3,
            ops_per_process: 50,
        }
    }
}

/// Result of a recorded run.
#[derive(Debug, Clone)]
pub struct RecordedExecution {
    /// The recorded (stretched) real-time history.
    pub history: History,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Total number of operations performed.
    pub operations: usize,
}

/// Shared event log with globally ordered appends.
///
/// When a trace sink is attached, every append is forwarded to it *inside* the
/// log's critical section, so the trace's event order is exactly the recorded
/// history's order.
struct EventLog<'s> {
    events: Mutex<Vec<Event>>,
    next_op: AtomicU64,
    sink: Option<&'s dyn EventSink>,
}

impl<'s> EventLog<'s> {
    fn new(sink: Option<&'s dyn EventSink>) -> Self {
        EventLog {
            events: Mutex::new(Vec::new()),
            next_op: AtomicU64::new(0),
            sink,
        }
    }

    fn fresh_op(&self) -> OpId {
        OpId::new(self.next_op.fetch_add(1, Ordering::Relaxed))
    }

    fn log(&self, event: Event) {
        let mut events = self.events.lock();
        if let Some(sink) = self.sink {
            sink.event(&event);
        }
        events.push(event);
    }

    fn log_invocation(&self, process: ProcessId, id: OpId, op: &Operation) {
        self.log(Event::invocation(process, id, op.clone()));
    }

    fn log_response(&self, process: ProcessId, id: OpId, value: &OpValue) {
        self.log(Event::response(process, id, value.clone()));
    }
}

/// Runs `workload` against `object` with the given options and returns the recorded
/// history.
pub fn record_execution(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
) -> RecordedExecution {
    record_threaded(object, workload, options, None)
}

/// [`record_execution`], additionally streaming every logged event into `sink`
/// (e.g. a [`linrv_trace::SharedTraceWriter`]) as it is appended.
pub fn record_execution_traced(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    sink: &dyn EventSink,
) -> RecordedExecution {
    record_threaded(object, workload, options, Some(sink))
}

fn record_threaded(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    sink: Option<&dyn EventSink>,
) -> RecordedExecution {
    let log = EventLog::new(sink);
    let started = Instant::now();
    let operations = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for proc_index in 0..options.processes {
            let log = &log;
            let object = &object;
            handles.push(scope.spawn(move || {
                let process = ProcessId::new(proc_index as u32);
                let ops = workload.operations_for(proc_index, options.ops_per_process);
                for op in &ops {
                    let id = log.fresh_op();
                    log.log_invocation(process, id, op);
                    let response = object.apply(process, op);
                    log.log_response(process, id, &response);
                }
                ops.len()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    });
    let duration = started.elapsed();
    let history = History::from_events(log.events.into_inner());
    RecordedExecution {
        history,
        duration,
        operations,
    }
}

/// One process's progress through its operation sequence in a scheduled run.
enum Phase {
    /// Between operations; the front of the queue is the next one to invoke.
    Idle,
    /// Invocation logged, `apply` not called yet.
    Invoked(OpId, Operation),
    /// `apply` returned; the response has not been logged yet.
    Applied(OpId, OpValue),
}

/// Runs `workload` against `object` under a **deterministic seeded scheduler**
/// and returns the recorded history.
///
/// Unlike [`record_execution`], no threads are involved: a single loop driven
/// by an RNG seeded with `schedule_seed` repeatedly picks one enabled process
/// and advances it by one step — log its invocation, call `apply`, or log its
/// response. Splitting each operation into three separately scheduled steps
/// still produces overlapping intervals (an operation stays pending while
/// others are scheduled), but the interleaving — and therefore the recorded
/// history — is **bit-for-bit reproducible** from `(workload, options,
/// schedule_seed)`. This is what makes `linrv gen`/`linrv record` deterministic
/// per `--seed`, and what the golden-trace corpus is generated with.
///
/// The `apply` calls themselves are serialised, so the recorded history of a
/// correct (linearizable) implementation is always linearizable, while the
/// deterministically fault-injected implementations in [`crate::faulty`] still
/// misbehave on schedule.
pub fn record_scheduled(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    schedule_seed: u64,
) -> RecordedExecution {
    record_scheduled_impl(object, workload, options, schedule_seed, None)
}

/// [`record_scheduled`], additionally streaming every logged event into `sink`
/// as it is appended.
pub fn record_scheduled_traced(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    schedule_seed: u64,
    sink: &dyn EventSink,
) -> RecordedExecution {
    record_scheduled_impl(object, workload, options, schedule_seed, Some(sink))
}

fn record_scheduled_impl(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
    schedule_seed: u64,
    sink: Option<&dyn EventSink>,
) -> RecordedExecution {
    let log = EventLog::new(sink);
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut pending: Vec<VecDeque<Operation>> = (0..options.processes)
        .map(|i| workload.operations_for(i, options.ops_per_process).into())
        .collect();
    let mut phases: Vec<Phase> = (0..options.processes).map(|_| Phase::Idle).collect();
    let mut operations = 0usize;
    loop {
        // Deterministic scheduling: enumerate the processes that can take a
        // step (in process order), then let the seeded RNG pick one.
        let enabled: Vec<usize> = (0..options.processes)
            .filter(|&i| !matches!(phases[i], Phase::Idle) || !pending[i].is_empty())
            .collect();
        if enabled.is_empty() {
            break;
        }
        let process_index = enabled[rng.gen_range(0..enabled.len())];
        let process = ProcessId::new(process_index as u32);
        phases[process_index] = match std::mem::replace(&mut phases[process_index], Phase::Idle) {
            Phase::Idle => {
                let op = pending[process_index]
                    .pop_front()
                    .expect("enabled idle process has a next operation");
                let id = log.fresh_op();
                log.log_invocation(process, id, &op);
                Phase::Invoked(id, op)
            }
            Phase::Invoked(id, op) => {
                let value = object.apply(process, &op);
                Phase::Applied(id, value)
            }
            Phase::Applied(id, value) => {
                log.log_response(process, id, &value);
                operations += 1;
                Phase::Idle
            }
        };
    }
    RecordedExecution {
        history: History::from_events(log.events.into_inner()),
        duration: started.elapsed(),
        operations,
    }
}

/// One step pulled from an [`OpSource`].
#[derive(Debug, Clone, PartialEq)]
pub enum SourceStep {
    /// Invoke this operation next.
    Invoke(Operation),
    /// Stay quiescent for this many scheduler steps before pulling again
    /// (burst/quiescence timing; clamped to [`MAX_IDLE_TICKS`]).
    Pause(u64),
}

/// A pull-based source of per-process operations for
/// [`record_scheduled_controlled`], generalising [`Workload`] (which
/// pre-computes each process's sequence — see
/// [`WorkloadSource`](crate::workload::WorkloadSource)) to lazy, stateful
/// generators.
pub trait OpSource {
    /// The next step for `process`: an operation, a pause, or `None` when the
    /// process has no further operations.
    fn next_step(&mut self, process: usize) -> Option<SourceStep>;
}

/// A fault command applied to the controlled scheduler (see [`ScheduleFaults`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCmd {
    /// Crash the process **mid-operation**: if an operation is in flight it
    /// never completes (its invocation stays pending forever); if the process
    /// is between operations it crashes right after logging its next
    /// invocation. Crashed processes take no further steps.
    Crash(usize),
    /// Withhold scheduling from the process for this many scheduler steps
    /// (stretching its current interval, as in Figures 5–6 of the paper;
    /// clamped to [`MAX_IDLE_TICKS`]).
    Stall(usize, u64),
}

/// Deterministic fault hooks consulted by [`record_scheduled_controlled`] once
/// per scheduler step. Implementations must be pure functions of the step
/// number (plus their own seeded state) for runs to stay reproducible.
pub trait ScheduleFaults {
    /// The commands to apply at `step`, before any process is granted.
    fn at_step(&mut self, step: u64) -> Vec<FaultCmd>;
}

/// The trivial [`ScheduleFaults`]: no faults, ever.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl ScheduleFaults for NoFaults {
    fn at_step(&mut self, _step: u64) -> Vec<FaultCmd> {
        Vec::new()
    }
}

/// Upper bound on a single pause/stall duration, so a pathological
/// `Pause(u64::MAX)` cannot spin the scheduler forever.
pub const MAX_IDLE_TICKS: u64 = 1 << 16;

/// Result of a controlled scheduled run.
#[derive(Debug, Clone)]
pub struct ControlledRun {
    /// The recorded execution (crashed processes leave pending operations).
    pub execution: RecordedExecution,
    /// Processes crashed by a [`FaultCmd::Crash`], in crash order. Each has
    /// exactly one pending operation in the history, unless it was already
    /// exhausted when the crash arrived.
    pub crashed: Vec<usize>,
    /// Total scheduler steps taken (grants plus idle ticks).
    pub steps: u64,
}

/// Per-process scheduler state of a controlled run.
struct ProcState {
    phase: Phase,
    /// Pulled from the source but not yet invoked.
    next: Option<Operation>,
    exhausted: bool,
    crashed: bool,
    /// A crash arrived while idle: die right after the next invocation logs.
    crash_on_invoke: bool,
    /// Stalled or pausing until this scheduler step.
    wake_at: u64,
}

impl ProcState {
    fn live(&self) -> bool {
        !(self.crashed
            || self.exhausted && self.next.is_none() && matches!(self.phase, Phase::Idle))
    }
}

/// [`record_scheduled`] with **pull-based operations and fault injection**: the
/// deterministic seeded scheduler, extended with per-step [`ScheduleFaults`]
/// hooks (process crash mid-operation, stall/pause) and an [`OpSource`] in
/// place of a pre-computed [`Workload`].
///
/// The interleaving is bit-for-bit reproducible from `(source, processes,
/// schedule_seed, faults)`: the RNG is consumed exactly once per grant, fault
/// hooks run at every step, and pauses/stalls advance the step counter without
/// touching the RNG. With [`NoFaults`] and a
/// [`WorkloadSource`](crate::workload::WorkloadSource) the recorded history is
/// identical to [`record_scheduled`]'s (property-tested below), so scenario
/// runs and plain seeded runs share one scheduler semantics.
pub fn record_scheduled_controlled(
    object: &(impl ConcurrentObject + ?Sized),
    source: &mut dyn OpSource,
    processes: usize,
    schedule_seed: u64,
    faults: &mut dyn ScheduleFaults,
    sink: Option<&dyn EventSink>,
) -> ControlledRun {
    let log = EventLog::new(sink);
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(schedule_seed);
    let mut procs: Vec<ProcState> = (0..processes)
        .map(|_| ProcState {
            phase: Phase::Idle,
            next: None,
            exhausted: false,
            crashed: false,
            crash_on_invoke: false,
            wake_at: 0,
        })
        .collect();
    let mut crashed = Vec::new();
    let mut operations = 0usize;
    let mut step: u64 = 0;
    loop {
        for cmd in faults.at_step(step) {
            match cmd {
                FaultCmd::Crash(p) if p < processes && !procs[p].crashed => {
                    if matches!(procs[p].phase, Phase::Idle) {
                        procs[p].crash_on_invoke = true;
                    } else {
                        procs[p].crashed = true;
                        crashed.push(p);
                    }
                }
                FaultCmd::Stall(p, ticks) if p < processes => {
                    let until = step.saturating_add(ticks.clamp(1, MAX_IDLE_TICKS));
                    procs[p].wake_at = procs[p].wake_at.max(until);
                }
                _ => {}
            }
        }
        // Refill: awake idle processes pull their next step from the source.
        // Pauses are consumed here (extending `wake_at`) so a paused process
        // simply drops out of the enabled set below.
        for (p, state) in procs.iter_mut().enumerate() {
            let ready = !state.crashed
                && !state.exhausted
                && state.next.is_none()
                && matches!(state.phase, Phase::Idle)
                && step >= state.wake_at;
            if !ready {
                continue;
            }
            match source.next_step(p) {
                None => state.exhausted = true,
                Some(SourceStep::Invoke(op)) => state.next = Some(op),
                Some(SourceStep::Pause(ticks)) => {
                    state.wake_at = step.saturating_add(ticks.clamp(1, MAX_IDLE_TICKS));
                }
            }
        }
        let enabled: Vec<usize> = (0..processes)
            .filter(|&p| {
                let state = &procs[p];
                !state.crashed
                    && step >= state.wake_at
                    && (!matches!(state.phase, Phase::Idle) || state.next.is_some())
            })
            .collect();
        if enabled.is_empty() {
            // Nothing runnable: done, unless someone is merely stalled/paused —
            // then tick the clock forward (no RNG consumption on idle ticks).
            if procs.iter().any(ProcState::live) {
                step += 1;
                continue;
            }
            break;
        }
        let process_index = enabled[rng.gen_range(0..enabled.len())];
        let process = ProcessId::new(process_index as u32);
        let state = &mut procs[process_index];
        state.phase = match std::mem::replace(&mut state.phase, Phase::Idle) {
            Phase::Idle => {
                let op = state.next.take().expect("enabled idle process has an op");
                let id = log.fresh_op();
                log.log_invocation(process, id, &op);
                if state.crash_on_invoke {
                    state.crashed = true;
                    crashed.push(process_index);
                }
                Phase::Invoked(id, op)
            }
            Phase::Invoked(id, op) => {
                let value = object.apply(process, &op);
                Phase::Applied(id, value)
            }
            Phase::Applied(id, value) => {
                log.log_response(process, id, &value);
                operations += 1;
                Phase::Idle
            }
        };
        step += 1;
    }
    ControlledRun {
        execution: RecordedExecution {
            history: History::from_events(log.events.into_inner()),
            duration: started.elapsed(),
            operations,
        },
        crashed,
        steps: step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::LossyQueue;
    use crate::impls::{AtomicCounter, MsQueue, SpecObject, TreiberStack};
    use crate::workload::WorkloadKind;
    use linrv_check::{GenLinObject, LinSpec};
    use linrv_spec::{CounterSpec, QueueSpec, StackSpec};

    #[test]
    fn recorded_histories_are_well_formed() {
        let queue = MsQueue::new();
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 3),
            RecorderOptions {
                processes: 3,
                ops_per_process: 20,
            },
        );
        assert!(run.history.is_well_formed());
        assert_eq!(run.operations, 60);
        assert_eq!(run.history.len(), 120);
        assert_eq!(run.history.pending_operations().count(), 0);
    }

    #[test]
    fn correct_queue_produces_linearizable_recorded_history() {
        let queue = SpecObject::new(QueueSpec::new());
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 11),
            RecorderOptions {
                processes: 2,
                ops_per_process: 15,
            },
        );
        assert!(LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn correct_stack_produces_linearizable_recorded_history() {
        let stack = TreiberStack::new();
        let run = record_execution(
            &stack,
            Workload::new(WorkloadKind::Stack, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 15,
            },
        );
        assert!(LinSpec::new(StackSpec::new()).contains(&run.history));
    }

    #[test]
    fn correct_counter_produces_linearizable_recorded_history() {
        let counter = AtomicCounter::new();
        let run = record_execution(
            &counter,
            Workload::new(WorkloadKind::Counter, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 12,
            },
        );
        assert!(LinSpec::new(CounterSpec::new()).contains(&run.history));
    }

    #[test]
    fn scheduled_runs_are_bit_for_bit_deterministic() {
        let options = RecorderOptions {
            processes: 3,
            ops_per_process: 40,
        };
        let runs: Vec<History> = (0..2)
            .map(|_| {
                let queue = MsQueue::new();
                record_scheduled(&queue, Workload::new(WorkloadKind::Queue, 42), options, 42)
                    .history
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        // A different schedule seed yields a different interleaving.
        let queue = MsQueue::new();
        let other =
            record_scheduled(&queue, Workload::new(WorkloadKind::Queue, 42), options, 43).history;
        assert_ne!(runs[0], other);
    }

    #[test]
    fn scheduled_histories_are_well_formed_overlapping_and_linearizable() {
        for kind in [WorkloadKind::Queue, WorkloadKind::Stack, WorkloadKind::Set] {
            let object = crate::impls::spec_object(kind.object_kind());
            let run = record_scheduled(
                &*object,
                Workload::new(kind, 7),
                RecorderOptions {
                    processes: 3,
                    ops_per_process: 25,
                },
                7,
            );
            assert!(run.history.is_well_formed());
            assert_eq!(run.operations, 75);
            assert_eq!(run.history.pending_operations().count(), 0);
        }
        let run = record_scheduled(
            &SpecObject::new(QueueSpec::new()),
            Workload::new(WorkloadKind::Queue, 3),
            RecorderOptions {
                processes: 2,
                ops_per_process: 20,
            },
            3,
        );
        assert!(LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn scheduled_faulty_objects_produce_violations() {
        let queue = LossyQueue::new(2);
        let run = record_scheduled(
            &queue,
            Workload::new(WorkloadKind::Queue, 9),
            RecorderOptions {
                processes: 2,
                ops_per_process: 30,
            },
            9,
        );
        assert!(!LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn traced_runs_stream_exactly_the_recorded_events() {
        use linrv_trace::{read_history, SharedTraceWriter, TraceFormat, TraceHeader};
        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Jsonl,
            &TraceHeader::new(linrv_spec::ObjectKind::Queue),
        )
        .unwrap();
        let queue = MsQueue::new();
        let run = record_execution_traced(
            &queue,
            Workload::new(WorkloadKind::Queue, 5),
            RecorderOptions {
                processes: 3,
                ops_per_process: 10,
            },
            &sink,
        );
        let bytes = sink.finish().unwrap();
        let (_, traced) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(traced, run.history);

        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Binary,
            &TraceHeader::new(linrv_spec::ObjectKind::Queue),
        )
        .unwrap();
        let queue = MsQueue::new();
        let run = record_scheduled_traced(
            &queue,
            Workload::new(WorkloadKind::Queue, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 10,
            },
            5,
            &sink,
        );
        let bytes = sink.finish().unwrap();
        let (_, traced) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(traced, run.history);
    }

    #[test]
    fn every_kind_has_correct_and_faulty_factories() {
        use linrv_spec::ObjectKind;
        for kind in ObjectKind::ALL {
            assert_eq!(crate::impls::correct_object(kind).kind(), kind);
            assert_eq!(crate::impls::spec_object(kind).kind(), kind);
            assert_eq!(crate::faulty::faulty_object(kind, 3).kind(), kind);
        }
    }

    #[test]
    fn controlled_scheduler_with_no_faults_matches_record_scheduled() {
        use crate::workload::WorkloadSource;
        for (seed, schedule) in [(42, 42), (7, 1), (0, 999)] {
            let options = RecorderOptions {
                processes: 3,
                ops_per_process: 30,
            };
            let workload = Workload::new(WorkloadKind::Queue, seed);
            let queue = MsQueue::new();
            let plain = record_scheduled(&queue, workload, options, schedule);
            let queue = MsQueue::new();
            let mut source = WorkloadSource::new(&workload, 3, 30);
            let controlled =
                record_scheduled_controlled(&queue, &mut source, 3, schedule, &mut NoFaults, None);
            assert_eq!(plain.history, controlled.execution.history);
            assert_eq!(plain.operations, controlled.execution.operations);
            assert!(controlled.crashed.is_empty());
        }
    }

    /// A fixed schedule of fault commands, keyed by step.
    struct At(Vec<(u64, FaultCmd)>);

    impl ScheduleFaults for At {
        fn at_step(&mut self, step: u64) -> Vec<FaultCmd> {
            self.0
                .iter()
                .filter(|(s, _)| *s == step)
                .map(|(_, cmd)| *cmd)
                .collect()
        }
    }

    #[test]
    fn crashing_a_process_leaves_exactly_one_pending_operation() {
        use crate::workload::WorkloadSource;
        let workload = Workload::new(WorkloadKind::Queue, 5);
        let queue = SpecObject::new(QueueSpec::new());
        let mut source = WorkloadSource::new(&workload, 3, 20);
        let mut faults = At(vec![(10, FaultCmd::Crash(1))]);
        let run = record_scheduled_controlled(&queue, &mut source, 3, 5, &mut faults, None);
        assert_eq!(run.crashed, vec![1]);
        let pending: Vec<_> = run.execution.history.pending_operations().collect();
        assert_eq!(pending.len(), 1, "crash mid-op leaves one pending op");
        assert_eq!(pending[0].process.index(), 1);
        assert!(run.execution.history.is_well_formed());
        // The survivors finish their full sequences.
        assert!(LinSpec::new(QueueSpec::new()).contains(&run.execution.history));
    }

    #[test]
    fn stalls_and_pauses_keep_runs_deterministic_and_complete() {
        use crate::workload::WorkloadSource;
        let histories: Vec<History> = (0..2)
            .map(|_| {
                let workload = Workload::new(WorkloadKind::Stack, 9);
                let stack = TreiberStack::new();
                let mut source = WorkloadSource::new(&workload, 2, 15);
                let mut faults = At(vec![
                    (3, FaultCmd::Stall(0, 17)),
                    (20, FaultCmd::Stall(1, 5)),
                ]);
                record_scheduled_controlled(&stack, &mut source, 2, 9, &mut faults, None)
                    .execution
                    .history
            })
            .collect();
        assert_eq!(histories[0], histories[1]);
        assert_eq!(histories[0].pending_operations().count(), 0);
        assert!(LinSpec::new(StackSpec::new()).contains(&histories[0]));
        // Stalling changed the interleaving relative to a fault-free run.
        let workload = Workload::new(WorkloadKind::Stack, 9);
        let stack = TreiberStack::new();
        let mut source = WorkloadSource::new(&workload, 2, 15);
        let plain = record_scheduled_controlled(&stack, &mut source, 2, 9, &mut NoFaults, None);
        assert_ne!(histories[0], plain.execution.history);
    }

    #[test]
    fn pauses_from_the_source_are_honoured() {
        struct Pausing {
            emitted: usize,
        }
        impl OpSource for Pausing {
            fn next_step(&mut self, process: usize) -> Option<SourceStep> {
                if process != 0 || self.emitted >= 4 {
                    return None;
                }
                self.emitted += 1;
                Some(if self.emitted == 2 {
                    SourceStep::Pause(50)
                } else {
                    SourceStep::Invoke(
                        crate::workload::Workload::new(WorkloadKind::Counter, 1)
                            .operations_for(0, 1)[0]
                            .clone(),
                    )
                })
            }
        }
        let counter = AtomicCounter::new();
        let mut source = Pausing { emitted: 0 };
        let run = record_scheduled_controlled(&counter, &mut source, 1, 3, &mut NoFaults, None);
        // 3 Invokes and 1 Pause: all operations complete, and the pause shows
        // up as idle scheduler ticks (steps > 3 ops * 3 grants).
        assert_eq!(run.execution.operations, 3);
        assert!(
            run.steps > 9 + 49,
            "pause must cost idle ticks: {}",
            run.steps
        );
    }

    #[test]
    fn lossy_queue_eventually_produces_a_non_linearizable_history() {
        // Single-process run: the recorded history is exactly the real one, and losing
        // an enqueued element while later observing `empty` is a violation.
        let queue = LossyQueue::new(2);
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 9),
            RecorderOptions {
                processes: 1,
                ops_per_process: 30,
            },
        );
        assert!(!LinSpec::new(QueueSpec::new()).contains(&run.history));
    }
}
