//! Ground-truth execution recorder.
//!
//! The recorder drives `n` threads of operations against a [`ConcurrentObject`] and
//! logs every invocation and response into a single totally ordered history. No process
//! *inside* an asynchronous system could build this log — that is precisely the
//! impossibility of Theorem 5.1 — so the recorder serialises its log appends through a
//! mutex and exists purely as experimental scaffolding (testing soundness of the
//! verifier against correct objects, measuring detection latency against faulty ones).
//!
//! Because an operation's invocation is logged slightly *before* `apply` is entered and
//! its response slightly *after* `apply` returns, the recorded intervals are stretched
//! relative to the true execution, exactly like the paper's detected history `E'`
//! (Figure 5). Stretching only removes real-time constraints, so a linearizable object
//! always yields a linearizable recorded history (the property soundness tests rely
//! on).

use crate::object::ConcurrentObject;
use crate::workload::Workload;
use linrv_history::{Event, History, OpId, OpValue, Operation, ProcessId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options controlling a recorded run.
#[derive(Debug, Clone, Copy)]
pub struct RecorderOptions {
    /// Number of processes (threads).
    pub processes: usize,
    /// Operations each process performs.
    pub ops_per_process: usize,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions {
            processes: 3,
            ops_per_process: 50,
        }
    }
}

/// Result of a recorded run.
#[derive(Debug, Clone)]
pub struct RecordedExecution {
    /// The recorded (stretched) real-time history.
    pub history: History,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Total number of operations performed.
    pub operations: usize,
}

/// Shared event log with globally ordered appends.
struct EventLog {
    events: Mutex<Vec<Event>>,
    next_op: AtomicU64,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            events: Mutex::new(Vec::new()),
            next_op: AtomicU64::new(0),
        }
    }

    fn fresh_op(&self) -> OpId {
        OpId::new(self.next_op.fetch_add(1, Ordering::Relaxed))
    }

    fn log_invocation(&self, process: ProcessId, id: OpId, op: &Operation) {
        self.events
            .lock()
            .push(Event::invocation(process, id, op.clone()));
    }

    fn log_response(&self, process: ProcessId, id: OpId, value: &OpValue) {
        self.events
            .lock()
            .push(Event::response(process, id, value.clone()));
    }
}

/// Runs `workload` against `object` with the given options and returns the recorded
/// history.
pub fn record_execution(
    object: &(impl ConcurrentObject + ?Sized),
    workload: Workload,
    options: RecorderOptions,
) -> RecordedExecution {
    let log = EventLog::new();
    let started = Instant::now();
    let operations = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for proc_index in 0..options.processes {
            let log = &log;
            let object = &object;
            handles.push(scope.spawn(move || {
                let process = ProcessId::new(proc_index as u32);
                let ops = workload.operations_for(proc_index, options.ops_per_process);
                for op in &ops {
                    let id = log.fresh_op();
                    log.log_invocation(process, id, op);
                    let response = object.apply(process, op);
                    log.log_response(process, id, &response);
                }
                ops.len()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    });
    let duration = started.elapsed();
    let history = History::from_events(log.events.into_inner());
    RecordedExecution {
        history,
        duration,
        operations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faulty::LossyQueue;
    use crate::impls::{AtomicCounter, MsQueue, SpecObject, TreiberStack};
    use crate::workload::WorkloadKind;
    use linrv_check::{GenLinObject, LinSpec};
    use linrv_spec::{CounterSpec, QueueSpec, StackSpec};

    #[test]
    fn recorded_histories_are_well_formed() {
        let queue = MsQueue::new();
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 3),
            RecorderOptions {
                processes: 3,
                ops_per_process: 20,
            },
        );
        assert!(run.history.is_well_formed());
        assert_eq!(run.operations, 60);
        assert_eq!(run.history.len(), 120);
        assert_eq!(run.history.pending_operations().count(), 0);
    }

    #[test]
    fn correct_queue_produces_linearizable_recorded_history() {
        let queue = SpecObject::new(QueueSpec::new());
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 11),
            RecorderOptions {
                processes: 2,
                ops_per_process: 15,
            },
        );
        assert!(LinSpec::new(QueueSpec::new()).contains(&run.history));
    }

    #[test]
    fn correct_stack_produces_linearizable_recorded_history() {
        let stack = TreiberStack::new();
        let run = record_execution(
            &stack,
            Workload::new(WorkloadKind::Stack, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 15,
            },
        );
        assert!(LinSpec::new(StackSpec::new()).contains(&run.history));
    }

    #[test]
    fn correct_counter_produces_linearizable_recorded_history() {
        let counter = AtomicCounter::new();
        let run = record_execution(
            &counter,
            Workload::new(WorkloadKind::Counter, 5),
            RecorderOptions {
                processes: 2,
                ops_per_process: 12,
            },
        );
        assert!(LinSpec::new(CounterSpec::new()).contains(&run.history));
    }

    #[test]
    fn lossy_queue_eventually_produces_a_non_linearizable_history() {
        // Single-process run: the recorded history is exactly the real one, and losing
        // an enqueued element while later observing `empty` is a violation.
        let queue = LossyQueue::new(2);
        let run = record_execution(
            &queue,
            Workload::new(WorkloadKind::Queue, 9),
            RecorderOptions {
                processes: 1,
                ops_per_process: 30,
            },
        );
        assert!(!LinSpec::new(QueueSpec::new()).contains(&run.history));
    }
}
