//! # linrv-runtime
//!
//! Concurrent shared-memory object implementations and the execution harness used to
//! exercise the runtime-verification constructions of Castañeda & Rodríguez
//! (PODC 2023).
//!
//! The paper treats the implementation under inspection, `A`, as a **black box**: the
//! verifier only sees invocations and responses. This crate supplies a zoo of such
//! black boxes:
//!
//! * **Correct implementations** — a lock-free Treiber stack and Michael–Scott queue
//!   built from scratch on atomic pointers with epoch reclamation, wait-free atomic
//!   counter/register, CAS-based consensus, and a generic lock-based object driven by
//!   any sequential specification (the "universal construction" baseline the paper's
//!   introduction mentions).
//! * **Fault-injected implementations** — a lossy queue, a duplicating stack, a
//!   stuttering counter, a stale register, and the adversarial implementation from the
//!   proof of Theorem 5.1. These produce non-linearizable histories on demand, which
//!   the completeness experiments (E10) rely on.
//! * **Recorder** — drives `n` threads of operations against an implementation and
//!   records the ground-truth real-time history (something no process inside the
//!   system could do; the recorder exists only for experiments).
//! * **Workloads** — seeded random operation mixes per object kind.

#![warn(missing_docs)]
// The lock-free structures under `impls/` genuinely need unsafe (epoch-based
// reclamation over raw pointers); everything else in the crate is safe code.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod faulty;
pub mod impls;
pub mod object;
pub mod recorder;
pub mod workload;

pub use object::ConcurrentObject;
pub use recorder::{
    record_execution, record_execution_traced, record_scheduled, record_scheduled_controlled,
    record_scheduled_traced, ControlledRun, FaultCmd, NoFaults, OpSource, RecordedExecution,
    RecorderOptions, ScheduleFaults, SourceStep, MAX_IDLE_TICKS,
};
pub use workload::{Mix, Workload, WorkloadKind, WorkloadSource};
