//! The [`Monitor`]: a verified wrapper around one black-box implementation,
//! handing out per-process [`Session`] handles.

use crate::builder::{CertificatePolicy, Mode, MonitorBuilder, SnapshotBackend};
use crate::session::Session;
use linrv_check::LinSpec;
use linrv_core::certificate::Certificate;
use linrv_core::enforce::SelfEnforced;
use linrv_core::registry::RegistryFull;
use linrv_core::verifier::VerifierOutcome;
use linrv_history::{History, ProcessId};
use linrv_runtime::ConcurrentObject;
use linrv_spec::TypedObject;
use parking_lot::Mutex;
use std::sync::Arc;

/// The shared state behind a [`Monitor`] and its [`Session`]s.
pub(crate) struct MonitorInner<A, S: TypedObject> {
    pub(crate) enforced: SelfEnforced<A, LinSpec<S>>,
    pub(crate) mode: Mode,
    pub(crate) policy: CertificatePolicy,
    pub(crate) backend: SnapshotBackend,
    /// Certificate captured at the first rejection, when the policy asks for it.
    pub(crate) first_violation: Mutex<Option<Certificate>>,
    /// Trace tap installed by `MonitorBuilder::trace_to`, fed from every session.
    pub(crate) sink: Option<std::sync::Arc<dyn linrv_trace::EventSink>>,
}

impl<A: ConcurrentObject, S: TypedObject> MonitorInner<A, S> {
    /// Captures the first-violation certificate if the policy requires it.
    pub(crate) fn note_violation(&self, process: ProcessId) {
        if linrv_obs::enabled() {
            crate::metrics::violations().inc();
            linrv_obs::event("monitor.violation", || {
                format!("violation verdict surfaced at {process}")
            });
        }
        if self.policy == CertificatePolicy::OnViolation {
            let mut slot = self.first_violation.lock();
            if slot.is_none() {
                *slot = Some(self.enforced.certificate_as(process));
            }
        }
    }

    /// Forwards one event to the trace tap, when one is installed.
    pub(crate) fn tap(&self, event: &linrv_history::Event) {
        if let Some(sink) = &self.sink {
            sink.event(event);
        }
    }
}

/// The asynchronous verdict of a monitor over the computation it has seen so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every response exchanged so far is certified linearizable.
    Correct,
    /// The computation is not linearizable; the witness is a genuine history of
    /// the wrapped implementation (predictive soundness, Theorem 8.1).
    Violation {
        /// The non-linearizable witness history.
        witness: History,
    },
}

impl Verdict {
    /// Returns `true` when no violation has been detected.
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct)
    }

    /// The witness history, when a violation was detected.
    pub fn witness(&self) -> Option<&History> {
        match self {
            Verdict::Violation { witness } => Some(witness),
            Verdict::Correct => None,
        }
    }
}

/// A runtime-verification monitor wrapping one black-box implementation `A`
/// against the sequential specification `S`.
///
/// Obtain one through [`Monitor::builder`]; obtain per-process handles through
/// [`Monitor::register`]. The monitor is cheaply cloneable (it is an `Arc`
/// internally) and all methods take `&self`, so it can be shared freely across
/// threads.
pub struct Monitor<A, S: TypedObject> {
    inner: Arc<MonitorInner<A, S>>,
}

impl<A, S: TypedObject> Clone for Monitor<A, S> {
    fn clone(&self) -> Self {
        Monitor {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: TypedObject> Monitor<(), S> {
    /// Starts the fluent configuration chain (see [`MonitorBuilder`]).
    ///
    /// The implementation type is fixed later, by [`MonitorBuilder::build`]; this
    /// constructor lives on `Monitor<(), _>` only so that type inference never
    /// asks for it.
    pub fn builder(spec: S) -> MonitorBuilder<S> {
        MonitorBuilder::new(spec)
    }
}

impl<A: ConcurrentObject, S: TypedObject> Monitor<A, S> {
    pub(crate) fn from_inner(inner: MonitorInner<A, S>) -> Self {
        Monitor {
            inner: Arc::new(inner),
        }
    }

    /// Registers a new per-process session.
    ///
    /// Each session exclusively owns one of the monitor's `capacity()` process
    /// slots until it is dropped (slots are recycled). Call sites never handle
    /// process ids; the session threads its own id through every operation.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when all slots are held by live sessions.
    pub fn register(&self) -> Result<Session<A, S>, RegistryFull> {
        let process = self.inner.enforced.register()?;
        Ok(Session::new(Arc::clone(&self.inner), process))
    }

    /// Maximum number of concurrently registered sessions.
    pub fn capacity(&self) -> usize {
        self.inner.enforced.processes()
    }

    /// Number of currently registered sessions.
    pub fn registered(&self) -> usize {
        self.inner.enforced.drv().registry().registered()
    }

    /// The monitor's verification mode.
    pub fn mode(&self) -> Mode {
        self.inner.mode
    }

    /// The snapshot construction the monitor was built with.
    pub fn snapshot_backend(&self) -> SnapshotBackend {
        self.inner.backend
    }

    /// Recomputes the verdict over everything published so far (Figure 12,
    /// verifier role). In [`Mode::Observe`] this is the *only* place verdicts are
    /// computed; in [`Mode::Enforce`] it is a cheap way to poll global health
    /// without issuing an operation.
    ///
    /// # Panics
    ///
    /// Panics when the published tuples violate the view properties of
    /// Remark 7.2, which cannot happen unless the shared state was corrupted.
    pub fn check(&self) -> Verdict {
        match self
            .inner
            .enforced
            .verifier()
            .verdict_from_scan(ProcessId::new(0))
        {
            VerifierOutcome::Ok => Verdict::Correct,
            VerifierOutcome::Error { witness } => {
                // In Observe mode this is where violations surface, so this is
                // also where the OnViolation policy captures its certificate.
                self.inner.note_violation(ProcessId::new(0));
                Verdict::Violation { witness }
            }
            VerifierOutcome::InvalidViews(err) => {
                panic!("published tuples violate the view properties: {err}")
            }
        }
    }

    /// Produces a certificate of the computation so far (Theorem 8.2 (3)).
    pub fn certificate(&self) -> Certificate {
        self.inner.enforced.certificate()
    }

    /// The certificate captured at the first rejection, when the monitor was
    /// built with [`CertificatePolicy::OnViolation`].
    pub fn first_violation(&self) -> Option<Certificate> {
        self.inner.first_violation.lock().clone()
    }

    /// Short human-readable name (implementation + object).
    pub fn name(&self) -> String {
        self.inner.enforced.name()
    }

    /// Escape hatch: the underlying self-enforced wrapper of the raw API.
    ///
    /// Everything the facade does can also be done here, at the price of manual
    /// `ProcessId` threading and untyped `Operation`/`OpValue` handling.
    pub fn as_raw(&self) -> &SelfEnforced<A, LinSpec<S>> {
        &self.inner.enforced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Mode;
    use linrv_runtime::faulty::LossyQueue;
    use linrv_runtime::impls::MsQueue;
    use linrv_spec::QueueSpec;

    #[test]
    fn sessions_recycle_capacity() {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(1)
            .build(MsQueue::new());
        let first = monitor.register().unwrap();
        assert_eq!(monitor.registered(), 1);
        assert!(monitor.register().is_err(), "capacity is exhausted");
        drop(first);
        assert_eq!(monitor.registered(), 0);
        let second = monitor.register().unwrap();
        second.enqueue(1).unwrap();
        assert_eq!(second.dequeue().unwrap(), Some(1));
    }

    #[test]
    fn monitor_clones_share_state() {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(2)
            .build(MsQueue::new());
        let clone = monitor.clone();
        let session = clone.register().unwrap();
        session.enqueue(9).unwrap();
        assert_eq!(monitor.registered(), 1);
        assert!(monitor.check().is_correct());
        assert_eq!(monitor.certificate().operations(), 1);
        assert!(monitor.name().contains("queue"));
    }

    #[test]
    fn observe_mode_defers_verdicts_to_check() {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(1)
            .mode(Mode::Observe)
            .build(LossyQueue::new(2));
        let session = monitor.register().unwrap();
        for i in 0..6 {
            session.enqueue(i).expect("observe mode never rejects");
        }
        let mut drained = 0;
        while session
            .dequeue()
            .expect("observe mode never rejects")
            .is_some()
        {
            drained += 1;
        }
        assert!(drained < 6, "the lossy queue must lose elements");
        let verdict = monitor.check();
        assert!(!verdict.is_correct());
        assert!(verdict.witness().is_some());
    }

    #[test]
    fn first_violation_certificate_is_captured_on_demand_only_when_asked() {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(1)
            .certificates(crate::CertificatePolicy::OnViolation)
            .build(LossyQueue::new(2));
        let session = monitor.register().unwrap();
        for i in 0..6 {
            let _ = session.enqueue(i);
        }
        let mut rejected = false;
        for _ in 0..6 {
            if session.dequeue().is_err() {
                rejected = true;
            }
        }
        assert!(rejected);
        let cert = monitor.first_violation().expect("captured at rejection");
        assert!(!cert.is_correct());

        // Observe mode: check() is where violations surface, so check() captures.
        let observed = Monitor::builder(QueueSpec::new())
            .processes(1)
            .mode(Mode::Observe)
            .certificates(crate::CertificatePolicy::OnViolation)
            .build(LossyQueue::new(2));
        let session = observed.register().unwrap();
        for i in 0..6 {
            session.enqueue(i).unwrap();
        }
        while session.dequeue().unwrap().is_some() {}
        assert!(observed.first_violation().is_none(), "not yet checked");
        assert!(!observed.check().is_correct());
        let cert = observed
            .first_violation()
            .expect("captured by the failing check");
        assert!(!cert.is_correct());

        // Default policy: no automatic capture.
        let quiet = Monitor::builder(QueueSpec::new())
            .processes(1)
            .build(LossyQueue::new(2));
        let session = quiet.register().unwrap();
        for i in 0..6 {
            let _ = session.enqueue(i);
        }
        for _ in 0..6 {
            let _ = session.dequeue();
        }
        assert!(quiet.first_violation().is_none());
    }
}
