//! Per-process [`Session`] handles: typed, id-free operations against a
//! [`Monitor`](crate::Monitor).

use crate::builder::Mode;
use crate::monitor::MonitorInner;
use linrv_core::drv::Announced;
use linrv_core::enforce::EnforcedResponse;
use linrv_core::verifier::VerifierOutcome;
use linrv_history::{Event, History, OpValue, Operation, ProcessId};
use linrv_runtime::ConcurrentObject;
use linrv_spec::typed::{
    consensus, counter, priority_queue, queue, register, set, stack, TypedError,
};
use linrv_spec::{OpFor, TypedObject, TypedOp};
use std::fmt;
use std::sync::Arc;

/// Why a typed operation did not return a verified response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// Runtime verification failed: the computation including this response is
    /// not linearizable ([`Mode::Enforce`] only). Corresponds to the paper's
    /// `ERROR` response (Figure 11).
    Violation {
        /// The response the underlying implementation produced.
        underlying: OpValue,
        /// A non-linearizable history of the wrapped implementation witnessing
        /// the violation (predictive soundness).
        witness: History,
    },
    /// The underlying implementation returned a value outside the operation's
    /// response type (e.g. a `Dequeue` answered with `true`). Possible in both
    /// modes — a black box can return anything.
    Malformed {
        /// The response the underlying implementation produced.
        underlying: OpValue,
        /// What went wrong while decoding it.
        error: TypedError,
    },
}

impl Rejected {
    /// Returns `true` when the rejection carries a linearizability witness.
    pub fn is_violation(&self) -> bool {
        matches!(self, Rejected::Violation { .. })
    }

    /// The witness history, when verification failed.
    pub fn witness(&self) -> Option<&History> {
        match self {
            Rejected::Violation { witness, .. } => Some(witness),
            Rejected::Malformed { .. } => None,
        }
    }

    /// The raw response of the underlying implementation (always available).
    pub fn underlying(&self) -> &OpValue {
        match self {
            Rejected::Violation { underlying, .. } | Rejected::Malformed { underlying, .. } => {
                underlying
            }
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::Violation { underlying, .. } => write!(
                f,
                "response {underlying} rejected by runtime verification \
                 (non-linearizable; witness attached)"
            ),
            Rejected::Malformed { underlying, error } => {
                write!(f, "response {underlying} is malformed: {error}")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// An operation that has been announced in the snapshot object but not yet run
/// (Figure 7, Lines 01–02). Produced by [`Session::stage`].
///
/// Deliberately neither `Clone` nor `Copy`: each announcement corresponds to
/// exactly one operation instance, so the token must be consumed exactly once.
#[derive(Debug)]
pub struct Staged<Op: TypedOp> {
    pub(crate) op: Op,
    pub(crate) announced: Announced,
    /// Identity of the monitor the operation was announced in (the address of
    /// its shared state), so tokens cannot cross monitors.
    pub(crate) monitor_brand: usize,
}

/// An operation whose underlying call has run but whose view has not been
/// collected yet (Figure 7, Lines 03–04). Produced by [`Session::execute`].
///
/// Like [`Staged`], deliberately not `Clone`: committing the same operation
/// twice would publish two result tuples for one announced operation.
#[derive(Debug)]
pub struct Executed<Op: TypedOp> {
    pub(crate) op: Op,
    pub(crate) announced: Announced,
    pub(crate) value: OpValue,
    pub(crate) monitor_brand: usize,
}

/// A per-process handle on a [`Monitor`](crate::Monitor).
///
/// Each session exclusively owns one process slot; the slot returns to the pool
/// when the session is dropped — unless the session still has a staged
/// operation outstanding (a crashed process, see [`Session::stage`]), in which
/// case the slot is retired. Sessions are `Send` (move one into each worker
/// thread) but deliberately not `Clone` — two clones would violate the paper's
/// assumption that each process is sequential.
pub struct Session<A: ConcurrentObject, S: TypedObject> {
    monitor: Arc<MonitorInner<A, S>>,
    process: ProcessId,
    /// Number of staged operations not yet committed (0 or 1): the paper's
    /// processes are sequential, so a session must finish one operation before
    /// starting the next.
    outstanding: std::sync::atomic::AtomicUsize,
}

impl<A: ConcurrentObject, S: TypedObject> Session<A, S> {
    pub(crate) fn new(monitor: Arc<MonitorInner<A, S>>, process: ProcessId) -> Self {
        Session {
            monitor,
            process,
            outstanding: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Claims the session's one-operation-at-a-time slot; panics when an
    /// operation is already in flight.
    fn claim_sequential(&self, starting: &str) {
        use std::sync::atomic::Ordering;
        assert!(
            self.outstanding
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            "process sequentiality violated: cannot {starting} while another \
             operation of this session is in flight; finish it first (an \
             announced operation can never be withdrawn — abandoning it means \
             the process crashed, which retires the session's slot on drop)"
        );
    }

    /// The identity of this session's monitor, branding phase tokens.
    fn brand(&self) -> usize {
        Arc::as_ptr(&self.monitor) as *const () as usize
    }

    /// Applies a typed operation end to end: announce, run, collect, verify (per
    /// the monitor's [`Mode`]), decode.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails (Enforce mode) or the
    /// underlying response does not decode.
    ///
    /// # Panics
    ///
    /// Panics when a staged operation of this session has not been committed yet
    /// (processes are sequential).
    pub fn apply<Op: OpFor<S>>(&self, op: Op) -> Result<Op::Response, Rejected> {
        let _span = linrv_obs::Span::start(crate::metrics::op_ns());
        if linrv_obs::enabled() {
            crate::metrics::ops_total().inc();
        }
        let staged = self.stage(op);
        let executed = self.execute(staged);
        self.commit(executed)
    }

    /// Phase 1 of the DRV transform (Figure 7, Lines 01–02): announce the
    /// operation. Exposed so tests and figure reproductions can interleave the
    /// phases deterministically; ordinary call sites use [`Session::apply`].
    ///
    /// An announcement can never be withdrawn (other processes may already have
    /// scanned it). Dropping the returned [`Staged`] without committing it
    /// models a process that crashed mid-operation: this session refuses to
    /// start further operations, and its slot is *retired* instead of recycled
    /// when the session is dropped.
    ///
    /// # Panics
    ///
    /// Panics when a previously staged operation of this session has not been
    /// committed yet (processes are sequential).
    pub fn stage<Op: OpFor<S>>(&self, op: Op) -> Staged<Op> {
        self.claim_sequential("stage a new operation");
        let announced = self
            .monitor
            .enforced
            .drv()
            .announce(self.process, &op.encode());
        // The trace tap records the announced wire operation: the trace is the
        // history of the wrapped implementation, typed sugar erased.
        self.monitor.tap(&Event::invocation(
            self.process,
            announced.pair.op_id,
            announced.pair.operation.clone(),
        ));
        Staged {
            op,
            announced,
            monitor_brand: self.brand(),
        }
    }

    /// Phase 2 (Figure 7, Lines 03–04): run the operation on the wrapped
    /// implementation.
    ///
    /// # Panics
    ///
    /// Panics when `staged` was produced by a session of a different monitor.
    pub fn execute<Op: OpFor<S>>(&self, staged: Staged<Op>) -> Executed<Op> {
        assert_eq!(
            staged.monitor_brand,
            self.brand(),
            "execute called with an operation staged on a different monitor"
        );
        let value = self.monitor.enforced.drv().call_inner(&staged.announced);
        Executed {
            op: staged.op,
            announced: staged.announced,
            value,
            monitor_brand: staged.monitor_brand,
        }
    }

    /// Phase 3 (Figure 7, Lines 05–07 + Figures 10–12): collect the view, publish
    /// the tuple, verify per the monitor's mode and decode the response.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails (Enforce mode) or the
    /// underlying response does not decode.
    ///
    /// # Panics
    ///
    /// Panics when `executed` was staged on a different monitor or by a session
    /// owning a different process slot.
    pub fn commit<Op: OpFor<S>>(&self, executed: Executed<Op>) -> Result<Op::Response, Rejected> {
        let Executed {
            op,
            announced,
            value,
            monitor_brand,
        } = executed;
        assert_eq!(
            monitor_brand,
            self.brand(),
            "commit called with an operation staged on a different monitor"
        );
        assert_eq!(
            announced.pair.process, self.process,
            "commit called with an operation staged by a different session"
        );
        let response = self.monitor.enforced.drv().collect(announced, value);
        // Trace the *underlying* response — even when Enforce mode is about to
        // reject it, the trace documents what the implementation actually did.
        self.monitor.tap(&Event::response(
            self.process,
            response.pair.op_id,
            response.value.clone(),
        ));
        let verifier = self.monitor.enforced.verifier();
        let outcome = match self.monitor.mode {
            Mode::Observe => {
                verifier.record(self.process, response.tuple());
                VerifierOutcome::Ok
            }
            Mode::Enforce => verifier.observe(self.process, response.tuple()),
        };
        // The operation is complete only once its tuple is published; clearing
        // the sequentiality flag any earlier would let a concurrent stage() on a
        // shared &Session overlap two operations of one process.
        self.outstanding
            .store(0, std::sync::atomic::Ordering::Release);
        match outcome {
            VerifierOutcome::Ok => {
                if linrv_obs::enabled() {
                    crate::metrics::verdict_ok().inc();
                }
            }
            VerifierOutcome::Error { witness } => {
                self.monitor.note_violation(self.process);
                return Err(Rejected::Violation {
                    underlying: response.value,
                    witness,
                });
            }
            VerifierOutcome::InvalidViews(err) => {
                panic!("DRV wrapper produced invalid views: {err}")
            }
        }
        op.decode_response(&response.value).map_err(|error| {
            if linrv_obs::enabled() {
                crate::metrics::malformed().inc();
            }
            Rejected::Malformed {
                underlying: response.value,
                error,
            }
        })
    }

    /// Escape hatch: applies an untyped wire operation through the raw API,
    /// returning the raw self-enforced response. The monitor's [`Mode`] is still
    /// honoured (Observe mode publishes without gating).
    ///
    /// # Panics
    ///
    /// Panics when another operation of this session is still in flight
    /// (processes are sequential).
    pub fn apply_raw(&self, op: &Operation) -> EnforcedResponse {
        let _span = linrv_obs::Span::start(crate::metrics::op_ns());
        if linrv_obs::enabled() {
            crate::metrics::ops_total().inc();
        }
        self.claim_sequential("apply a raw operation");
        let response = self.apply_raw_inner(op);
        self.outstanding
            .store(0, std::sync::atomic::Ordering::Release);
        response
    }

    fn apply_raw_inner(&self, op: &Operation) -> EnforcedResponse {
        // Spelled out as the three DRV phases (rather than delegating to
        // `apply_verified`) so the trace tap sees the operation id and the
        // underlying response, exactly like the typed path.
        let drv = self.monitor.enforced.drv();
        let announced = drv.announce(self.process, op);
        self.monitor.tap(&Event::invocation(
            self.process,
            announced.pair.op_id,
            announced.pair.operation.clone(),
        ));
        let value = drv.call_inner(&announced);
        let response = drv.collect(announced, value);
        self.monitor.tap(&Event::response(
            self.process,
            response.pair.op_id,
            response.value.clone(),
        ));
        let verifier = self.monitor.enforced.verifier();
        match self.monitor.mode {
            Mode::Enforce => match verifier.observe(self.process, response.tuple()) {
                VerifierOutcome::Ok => {
                    if linrv_obs::enabled() {
                        crate::metrics::verdict_ok().inc();
                    }
                    EnforcedResponse {
                        value: response.value.clone(),
                        underlying: response.value,
                        witness: None,
                    }
                }
                VerifierOutcome::Error { witness } => {
                    self.monitor.note_violation(self.process);
                    EnforcedResponse {
                        value: OpValue::Error,
                        underlying: response.value,
                        witness: Some(witness),
                    }
                }
                VerifierOutcome::InvalidViews(err) => {
                    panic!("DRV wrapper produced invalid views: {err}")
                }
            },
            Mode::Observe => {
                verifier.record(self.process, response.tuple());
                if linrv_obs::enabled() {
                    crate::metrics::verdict_ok().inc();
                }
                EnforcedResponse {
                    value: response.value.clone(),
                    underlying: response.value,
                    witness: None,
                }
            }
        }
    }

    /// The zero-based index of the process slot this session owns. Useful for
    /// labelling output; never needed to issue operations.
    pub fn slot(&self) -> usize {
        self.process.index()
    }
}

impl<A: ConcurrentObject, S: TypedObject> Drop for Session<A, S> {
    fn drop(&mut self) {
        // A session dropped with a staged-but-uncommitted operation is a crashed
        // process: its announcement stays visible forever, so handing the slot to
        // a new session would make that session's history ill-formed (two
        // concurrent operations by one process). Retire the slot instead.
        if self.outstanding.load(std::sync::atomic::Ordering::Acquire) == 0 {
            self.monitor.enforced.release(self.process);
        }
    }
}

impl<A: ConcurrentObject, S: TypedObject> fmt::Debug for Session<A, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("process", &self.process)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Typed convenience methods, one impl block per shipped specification.
// ---------------------------------------------------------------------------

impl<A: ConcurrentObject> Session<A, linrv_spec::QueueSpec> {
    /// `Enqueue(v)` (verified).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn enqueue(&self, v: i64) -> Result<(), Rejected> {
        self.apply(queue::Enqueue(v))
    }

    /// `Dequeue()` (verified): `Some(oldest)` or `None` when empty.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn dequeue(&self) -> Result<Option<i64>, Rejected> {
        self.apply(queue::Dequeue)
    }
}

impl<A: ConcurrentObject> Session<A, linrv_spec::StackSpec> {
    /// `Push(v)` (verified).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn push(&self, v: i64) -> Result<(), Rejected> {
        self.apply(stack::Push(v))
    }

    /// `Pop()` (verified): `Some(newest)` or `None` when empty.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn pop(&self) -> Result<Option<i64>, Rejected> {
        self.apply(stack::Pop)
    }
}

impl<A: ConcurrentObject> Session<A, linrv_spec::SetSpec> {
    /// `Add(v)` (verified): `true` when `v` was absent.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn add(&self, v: i64) -> Result<bool, Rejected> {
        self.apply(set::Add(v))
    }

    /// `Remove(v)` (verified): `true` when `v` was present.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn remove(&self, v: i64) -> Result<bool, Rejected> {
        self.apply(set::Remove(v))
    }

    /// `Contains(v)` (verified).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn contains(&self, v: i64) -> Result<bool, Rejected> {
        self.apply(set::Contains(v))
    }
}

impl<A: ConcurrentObject> Session<A, linrv_spec::PriorityQueueSpec> {
    /// `Insert(v)` (verified).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn insert(&self, v: i64) -> Result<(), Rejected> {
        self.apply(priority_queue::Insert(v))
    }

    /// `ExtractMin()` (verified): `Some(minimum)` or `None` when empty.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn extract_min(&self) -> Result<Option<i64>, Rejected> {
        self.apply(priority_queue::ExtractMin)
    }
}

impl<A: ConcurrentObject> Session<A, linrv_spec::CounterSpec> {
    /// `Inc()` (verified): fetch-and-increment, returning the pre-increment value.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn inc(&self) -> Result<i64, Rejected> {
        self.apply(counter::Inc)
    }

    /// `Read()` (verified): the current value.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn read(&self) -> Result<i64, Rejected> {
        self.apply(counter::Read)
    }
}

impl<A: ConcurrentObject> Session<A, linrv_spec::RegisterSpec> {
    /// `Write(v)` (verified).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn write(&self, v: i64) -> Result<(), Rejected> {
        self.apply(register::Write(v))
    }

    /// `Read()` (verified): the last written value (initially `0`).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn read(&self) -> Result<i64, Rejected> {
        self.apply(register::Read)
    }
}

impl<A: ConcurrentObject> Session<A, linrv_spec::ConsensusSpec> {
    /// `Decide(v)` (verified): the value decided by the first proposal.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when verification fails or the response is malformed.
    pub fn decide(&self, v: i64) -> Result<i64, Rejected> {
        self.apply(consensus::Decide(v))
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use linrv_history::{OpValue, Operation};
    use linrv_runtime::faulty::{DuplicatingStack, StaleRegister};
    use linrv_runtime::impls::{
        AtomicCounter, AtomicIntRegister, MsQueue, SpecObject, TreiberStack,
    };

    #[test]
    fn typed_methods_cover_all_specs() {
        let queue = Monitor::builder(QueueSpec::new())
            .processes(1)
            .build(MsQueue::new());
        let q = queue.register().unwrap();
        q.enqueue(1).unwrap();
        assert_eq!(q.dequeue().unwrap(), Some(1));
        assert_eq!(q.dequeue().unwrap(), None);

        let stack = Monitor::builder(StackSpec::new())
            .processes(1)
            .build(TreiberStack::new());
        let s = stack.register().unwrap();
        s.push(2).unwrap();
        assert_eq!(s.pop().unwrap(), Some(2));

        let set = Monitor::builder(SetSpec::new())
            .processes(1)
            .build(SpecObject::new(SetSpec::new()));
        let s = set.register().unwrap();
        assert!(s.add(3).unwrap());
        assert!(s.contains(3).unwrap());
        assert!(s.remove(3).unwrap());
        assert!(!s.contains(3).unwrap());

        let pq = Monitor::builder(PriorityQueueSpec::new())
            .processes(1)
            .build(SpecObject::new(PriorityQueueSpec::new()));
        let s = pq.register().unwrap();
        s.insert(9).unwrap();
        s.insert(4).unwrap();
        assert_eq!(s.extract_min().unwrap(), Some(4));

        let counter = Monitor::builder(CounterSpec::new())
            .processes(1)
            .build(AtomicCounter::new());
        let c = counter.register().unwrap();
        assert_eq!(c.inc().unwrap(), 0);
        assert_eq!(c.read().unwrap(), 1);

        let register = Monitor::builder(RegisterSpec::new())
            .processes(1)
            .build(AtomicIntRegister::new());
        let r = register.register().unwrap();
        r.write(7).unwrap();
        assert_eq!(r.read().unwrap(), 7);

        let consensus = Monitor::builder(ConsensusSpec::new())
            .processes(1)
            .build(SpecObject::new(ConsensusSpec::new()));
        let c = consensus.register().unwrap();
        assert_eq!(c.decide(5).unwrap(), 5);
        assert_eq!(
            c.decide(8).unwrap(),
            5,
            "consensus locks the first proposal"
        );
    }

    #[test]
    fn rejections_carry_the_underlying_response_and_witness() {
        let monitor = Monitor::builder(StackSpec::new())
            .processes(1)
            .build(DuplicatingStack::new(2));
        let session = monitor.register().unwrap();
        session.push(1).unwrap();
        session.push(2).unwrap();
        let mut rejection = None;
        for _ in 0..4 {
            if let Err(r) = session.pop() {
                rejection = Some(r);
                break;
            }
        }
        let rejection = rejection.expect("duplicated pop must be rejected");
        assert!(rejection.is_violation());
        assert!(rejection.witness().is_some());
        assert!(rejection.to_string().contains("rejected"));
        assert!(matches!(rejection.underlying(), OpValue::Int(_)));
    }

    #[test]
    fn stale_register_reads_are_rejected_with_the_stale_value_attached() {
        let monitor = Monitor::builder(RegisterSpec::new())
            .processes(1)
            .build(StaleRegister::new(2));
        let session = monitor.register().unwrap();
        session.write(1).unwrap();
        session.write(2).unwrap();
        let mut saw_rejection = false;
        for _ in 0..4 {
            if session.read().is_err() {
                saw_rejection = true;
            }
        }
        assert!(saw_rejection, "stale read was never rejected");
    }

    #[test]
    fn staged_phases_compose_like_apply() {
        use linrv_spec::typed::queue::{Dequeue, Enqueue};
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(2)
            .build(MsQueue::new());
        let producer = monitor.register().unwrap();
        let consumer = monitor.register().unwrap();

        // Announce the dequeue before the enqueue runs: in the sketch the two
        // operations overlap, so the early dequeue of 1 is enforced correct.
        let staged_deq = consumer.stage(Dequeue);
        let staged_enq = producer.stage(Enqueue(1));
        let exec_enq = producer.execute(staged_enq);
        let exec_deq = consumer.execute(staged_deq);
        producer.commit(exec_enq).unwrap();
        let got = consumer.commit(exec_deq).unwrap();
        assert!(got.is_none() || got == Some(1));
        assert!(monitor.check().is_correct());
    }

    #[test]
    fn abandoning_a_staged_operation_retires_the_slot() {
        use linrv_spec::typed::queue::{Dequeue, Enqueue};
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(2)
            .build(MsQueue::new());
        let crasher = monitor.register().unwrap();
        let _abandoned = crasher.stage(Dequeue);
        drop(crasher);
        // The crashed process's slot is retired, not recycled: its announcement
        // can never be withdrawn, so a new session on the same slot would have an
        // ill-formed history.
        assert_eq!(monitor.registered(), 1);
        let healthy = monitor.register().expect("the other slot is free");
        assert_ne!(healthy.slot(), 0, "slot 0 must stay retired");
        // The healthy session keeps verifying correctly: the abandoned operation
        // is merely pending in the sketch (Figure 9), not a violation.
        healthy
            .apply(Enqueue(1))
            .expect("correct queue, no false alarm");
        assert!(monitor.check().is_correct());
        assert!(monitor.register().is_err(), "both slots accounted for");
    }

    #[test]
    #[should_panic(expected = "process sequentiality violated")]
    fn staging_twice_without_committing_panics() {
        use linrv_spec::typed::queue::Dequeue;
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(1)
            .build(MsQueue::new());
        let session = monitor.register().unwrap();
        let _first = session.stage(Dequeue);
        let _second = session.stage(Dequeue);
    }

    #[test]
    fn apply_raw_is_the_untyped_escape_hatch() {
        let monitor = Monitor::builder(QueueSpec::new())
            .processes(1)
            .build(MsQueue::new());
        let session = monitor.register().unwrap();
        let response = session.apply_raw(&Operation::new("Enqueue", OpValue::Int(3)));
        assert!(response.is_verified());
        assert_eq!(response.value, OpValue::Bool(true));
        assert_eq!(session.slot(), 0);
    }
}
