//! # linrv — the typed, session-based facade
//!
//! One import surface over the whole runtime-verification stack of Castañeda &
//! Rodríguez (PODC 2023): wrap any black-box concurrent object so that its
//! responses are **runtime verified** for linearizability, without stringly-typed
//! operations or manual process-id threading.
//!
//! Three pillars:
//!
//! * [`MonitorBuilder`] — one fluent chain selects the sequential specification,
//!   the snapshot backend ([`SnapshotBackend`]), the verification mode
//!   ([`Mode::Enforce`] gates responses, [`Mode::Observe`] verifies off the
//!   critical path) and the certificate policy ([`CertificatePolicy`]).
//! * [`Session`] — per-process handles obtained from [`Monitor::register`]. Each
//!   session exclusively owns one process slot of the paper's constructions
//!   (capacity-bounded, recycled on drop), so call sites never see a process id.
//! * **Typed operations** — `session.enqueue(7)` / `session.dequeue()` and
//!   friends for all seven shipped specifications, returning
//!   `Result<T, `[`Rejected`]`>` with precise response types. The typed layer
//!   ([`linrv_spec::typed`]) encodes to the untyped `Operation`/`OpValue` wire
//!   format, which remains fully available as the escape hatch (see [`raw`],
//!   [`Session::apply_raw`] and [`Monitor::as_raw`]).
//!
//! ## Quick start
//!
//! This is the README front-page example, compiled as a doc-test:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use linrv::prelude::*;
//! use linrv::runtime::impls::MsQueue;
//!
//! // Wrap a lock-free queue so that every response is runtime verified.
//! let monitor = Monitor::builder(QueueSpec::new())
//!     .processes(2)
//!     .snapshot(SnapshotBackend::Afek)
//!     .mode(Mode::Enforce)
//!     .build(MsQueue::new());
//!
//! // Sessions own their process slot: no id threading at call sites.
//! let session = monitor.register()?;
//! session.enqueue(7)?;
//! assert_eq!(session.dequeue()?, Some(7));
//!
//! // A certificate of the whole computation, on demand (Theorem 8.2 (3)).
//! assert!(monitor.certificate().is_correct());
//! # Ok(())
//! # }
//! ```
//!
//! ## Raw API vs typed API
//!
//! | Concern | Raw ([`raw`], `linrv-core`) | Typed (this crate) |
//! | ------- | --------------------------- | ------------------ |
//! | Construction | `SelfEnforced::new(a, LinSpec::new(spec), n)` | [`Monitor::builder`]`(spec).processes(n).build(a)` |
//! | Process identity | caller threads `ProcessId` manually | [`Session`] owns its slot; [`Monitor::register`] |
//! | Operations | `Operation::new("Enqueue", OpValue::Int(5))` | `session.enqueue(5)` |
//! | Responses | `OpValue` inspected at runtime | precise types (`Option<i64>`, `bool`, …) |
//! | Errors | `OpValue::Error` sentinel + witness field | `Result<_, `[`Rejected`]`>` |
//! | Verification placement | pick `SelfEnforced` vs `decoupled` by hand | [`Mode::Enforce`] / [`Mode::Observe`] |
//! | Availability | always (re-exported here) | seven shipped specs + any [`TypedObject`](spec::TypedObject) |
//!
//! The two layers interoperate freely: typed operations are *encodings* — a typed
//! session run and a raw run with the same wire operations produce identical
//! verdicts (property-tested in `tests-integration`).
//!
//! ## Monitoring many objects
//!
//! One [`Monitor`] verifies one object. Services hosting many logical objects
//! (a register per key, a queue per tenant) should use the `linrv-pool` crate:
//! its `MonitorPool` shards object ids, creates these monitors lazily, drains
//! their events through bounded queues into a work-stealing pool of checker
//! threads, and garbage-collects checked history prefixes so per-object memory
//! stays bounded. `linrv_pool::prelude` re-exports everything from
//! [`prelude`], so it is a drop-in superset of this facade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod metrics;
mod monitor;
mod session;
mod typed_history;

pub use builder::{CertificatePolicy, Mode, MonitorBuilder, SnapshotBackend, DEFAULT_CAPACITY};
pub use monitor::{Monitor, Verdict};
pub use session::{Executed, Rejected, Session, Staged};
pub use typed_history::{TypedCall, TypedHistoryBuilder};

// Re-exported constituent crates, for everything the facade does not wrap.
pub use linrv_check as check;
pub use linrv_history as history;
pub use linrv_runtime as runtime;
pub use linrv_snapshot as snapshot;
pub use linrv_spec as spec;
pub use linrv_trace as trace;

pub use linrv_core::registry::RegistryFull;
pub use linrv_history::display::render_timeline;

use linrv_check::{GenLinObject, StrategyChecker};
use linrv_history::History;
use linrv_spec::SequentialSpec;

/// The raw, untyped API: the paper's constructions exactly as `linrv-core`
/// exposes them, for call sites that need manual `ProcessId` threading, custom
/// snapshot wiring or untyped `Operation`s.
pub mod raw {
    pub use linrv_check::{CheckerConfig, CheckerStrategy, GenLinObject, LinSpec, StrategyChecker};
    pub use linrv_core as core;
    pub use linrv_core::{
        decoupled, Certificate, DecoupledProducer, DecoupledVerifier, Drv, DrvResponse,
        EnforcedResponse, ProcessRegistry, RegistryFull, SelfEnforced, Verifier, VerifierOutcome,
    };
    pub use linrv_history::{History, HistoryBuilder, OpId, OpValue, Operation, ProcessId};
    pub use linrv_runtime::{
        record_scheduled_controlled, ConcurrentObject, ControlledRun, FaultCmd, Mix, NoFaults,
        OpSource, ScheduleFaults, SourceStep, Workload, WorkloadKind, WorkloadSource,
        MAX_IDLE_TICKS,
    };
    pub use linrv_snapshot::Snapshot;
}

/// The names most programs want in scope.
pub mod prelude {
    pub use crate::builder::{CertificatePolicy, Mode, MonitorBuilder, SnapshotBackend};
    pub use crate::monitor::{Monitor, Verdict};
    pub use crate::session::{Rejected, Session};
    pub use crate::typed_history::TypedHistoryBuilder;
    pub use crate::RegistryFull;
    pub use linrv_spec::{
        ConsensusSpec, CounterSpec, PriorityQueueSpec, QueueSpec, RegisterSpec, SetSpec, StackSpec,
    };
    pub use linrv_spec::{OpFor, TypedObject, TypedOp};
}

/// Decides whether `history` is linearizable with respect to `spec`
/// (Definition 4.2), without constructing a monitor.
///
/// ```
/// use linrv::spec::typed::queue::{Dequeue, Enqueue};
/// use linrv::spec::QueueSpec;
/// use linrv::TypedHistoryBuilder;
///
/// let mut b = TypedHistoryBuilder::<QueueSpec>::new();
/// b.complete(0, Enqueue(1), ());
/// b.complete(1, Dequeue, Some(1));
/// assert!(linrv::is_linearizable(QueueSpec::new(), &b.build()));
/// ```
pub fn is_linearizable<S: SequentialSpec>(spec: S, history: &History) -> bool {
    // Strategy dispatch: the log-linear specialized monitor when the object
    // kind has one and the history is unambiguous, the general search else.
    StrategyChecker::new(spec).contains(history)
}

// The README's examples are compiled as doc-tests by the `linrv-pool` crate
// (its `ReadmeDoctests` harness): the README also shows the multi-object pool
// quickstart, which needs `linrv_pool` in scope — a crate that depends on this
// one and therefore cannot be doc-tested from here.
