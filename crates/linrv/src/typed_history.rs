//! Typed construction of histories: write down the interleavings of the paper's
//! figures without touching the wire layer.

use linrv_history::{History, HistoryBuilder, OpId};
use linrv_spec::{OpFor, TypedObject, TypedOp};
use std::marker::PhantomData;

/// Token for an invocation appended by [`TypedHistoryBuilder::invoke`], consumed
/// by [`TypedHistoryBuilder::respond`]. Carries the typed operation so the
/// response can be encoded without re-stating it.
#[derive(Debug, Clone)]
pub struct TypedCall<Op: TypedOp> {
    id: OpId,
    op: Op,
}

/// A [`HistoryBuilder`] that speaks the typed operation layer of one object.
///
/// Processes are named by their zero-based index; operation identifiers are
/// assigned automatically.
///
/// ```
/// use linrv::TypedHistoryBuilder;
/// use linrv::spec::typed::stack::{Push, Pop};
/// use linrv::spec::StackSpec;
///
/// // Figure 1 (top): the pop responds inside the push's interval — linearizable.
/// let mut b = TypedHistoryBuilder::<StackSpec>::new();
/// let push = b.invoke(0, Push(1));
/// let pop = b.invoke(1, Pop);
/// b.respond(pop, Some(1));
/// b.respond(push, ());
/// let history = b.build();
/// assert!(history.is_well_formed());
/// assert!(linrv::is_linearizable(StackSpec::new(), &history));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TypedHistoryBuilder<S: TypedObject> {
    inner: HistoryBuilder,
    _spec: PhantomData<S>,
}

impl<S: TypedObject> TypedHistoryBuilder<S> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TypedHistoryBuilder {
            inner: HistoryBuilder::new(),
            _spec: PhantomData,
        }
    }

    /// Appends an invocation by the process at zero-based index `process`.
    pub fn invoke<Op: OpFor<S>>(&mut self, process: u32, op: Op) -> TypedCall<Op> {
        let id = self.inner.invoke(process.into(), op.encode());
        TypedCall { id, op }
    }

    /// Appends the response of a previously invoked operation.
    pub fn respond<Op: OpFor<S>>(&mut self, call: TypedCall<Op>, response: Op::Response) {
        self.inner
            .respond(call.id, call.op.encode_response(&response));
    }

    /// Appends a complete operation (invocation immediately followed by its
    /// response).
    pub fn complete<Op: OpFor<S>>(&mut self, process: u32, op: Op, response: Op::Response) {
        let call = self.invoke(process, op);
        self.respond(call, response);
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns `true` when no event has been appended.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Finishes the builder and returns the history.
    pub fn build(self) -> History {
        self.inner.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_linearizable;
    use linrv_spec::typed::queue::{Dequeue, Enqueue};
    use linrv_spec::QueueSpec;

    #[test]
    fn builds_the_same_history_as_the_untyped_builder() {
        let mut typed = TypedHistoryBuilder::<QueueSpec>::new();
        let enq = typed.invoke(0, Enqueue(1));
        let deq = typed.invoke(1, Dequeue);
        typed.respond(deq, Some(1));
        typed.respond(enq, ());
        assert_eq!(typed.len(), 4);
        assert!(!typed.is_empty());
        let typed = typed.build();

        let mut raw = linrv_history::HistoryBuilder::new();
        let enq = raw.invoke(
            linrv_history::ProcessId::new(0),
            linrv_spec::ops::queue::enqueue(1),
        );
        let deq = raw.invoke(
            linrv_history::ProcessId::new(1),
            linrv_spec::ops::queue::dequeue(),
        );
        raw.respond(deq, linrv_history::OpValue::Int(1));
        raw.respond(enq, linrv_history::OpValue::Bool(true));
        assert_eq!(typed, raw.build());
    }

    #[test]
    fn complete_and_membership() {
        let mut b = TypedHistoryBuilder::<QueueSpec>::new();
        b.complete(0, Enqueue(5), ());
        b.complete(0, Dequeue, Some(5));
        b.complete(1, Dequeue, None);
        assert!(is_linearizable(QueueSpec::new(), &b.build()));

        let mut bad = TypedHistoryBuilder::<QueueSpec>::new();
        bad.complete(0, Dequeue, Some(5));
        assert!(!is_linearizable(QueueSpec::new(), &bad.build()));
    }
}
