//! The fluent [`MonitorBuilder`]: spec, snapshot backend, mode and certificate
//! policy in one chain.

use crate::monitor::{Monitor, MonitorInner};
use linrv_check::LinSpec;
use linrv_core::enforce::SelfEnforced;
use linrv_core::view::{TupleSet, View};
use linrv_runtime::ConcurrentObject;
use linrv_snapshot::{AfekSnapshot, DoubleCollectSnapshot, LockedSnapshot, Snapshot};
use linrv_spec::TypedObject;
use linrv_trace::EventSink;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// Which atomic-snapshot construction the monitor's base objects use.
///
/// The paper's constructions only require a linearizable snapshot object
/// (Definition 7.3); the choice trades progress guarantees for step complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotBackend {
    /// The wait-free helping construction of Afek et al. — the paper's reference
    /// base object. `O(n²)` reads per operation. The default.
    #[default]
    Afek,
    /// Plain double-collect: linearizable but only lock-free (a scan can be
    /// starved by writers). Cheaper in the uncontended case.
    DoubleCollect,
    /// A mutex-protected array: trivially linearizable but blocking. The
    /// differential-testing oracle; not wait-free.
    Locked,
}

/// Whether verification gates responses or merely observes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Self-enforced (Figure 11): the membership test runs on the critical path
    /// of every operation and incorrect responses are replaced by a rejection
    /// carrying a witness. The default.
    #[default]
    Enforce,
    /// Verifier-only (Figure 12, decoupled): operations publish their view tuples
    /// and return immediately; verdicts are computed asynchronously via
    /// [`Monitor::check`]. A violation may thus be observed only after the
    /// offending response was already returned.
    Observe,
}

/// When the monitor captures execution certificates (Section 8.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertificatePolicy {
    /// Certificates are only produced when asked for via
    /// [`Monitor::certificate`]. The default.
    #[default]
    OnDemand,
    /// Additionally, the first rejected operation (Enforce mode) captures a
    /// certificate of the violating computation, retrievable later via
    /// [`Monitor::first_violation`] — useful when the rejected caller is not the
    /// component doing the forensics.
    OnViolation,
}

/// Fluent configuration of a [`Monitor`].
///
/// ```
/// use linrv::prelude::*;
/// use linrv::runtime::impls::MsQueue;
///
/// let monitor = Monitor::builder(QueueSpec::new())
///     .processes(4)
///     .snapshot(SnapshotBackend::Locked)
///     .mode(Mode::Observe)
///     .certificates(CertificatePolicy::OnViolation)
///     .build(MsQueue::new());
/// assert_eq!(monitor.capacity(), 4);
/// ```
#[derive(Clone)]
pub struct MonitorBuilder<S> {
    spec: S,
    capacity: usize,
    backend: SnapshotBackend,
    mode: Mode,
    policy: CertificatePolicy,
    sink: Option<Arc<dyn EventSink>>,
}

impl<S: fmt::Debug> fmt::Debug for MonitorBuilder<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorBuilder")
            .field("spec", &self.spec)
            .field("capacity", &self.capacity)
            .field("backend", &self.backend)
            .field("mode", &self.mode)
            .field("policy", &self.policy)
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

/// Default number of process slots when [`MonitorBuilder::processes`] is not
/// called.
pub const DEFAULT_CAPACITY: usize = 8;

impl<S: TypedObject> MonitorBuilder<S> {
    /// Starts a builder for monitors verifying against `spec`.
    pub fn new(spec: S) -> Self {
        MonitorBuilder {
            spec,
            capacity: DEFAULT_CAPACITY,
            backend: SnapshotBackend::default(),
            mode: Mode::default(),
            policy: CertificatePolicy::default(),
            sink: None,
        }
    }

    /// Sets the maximum number of concurrently registered sessions (the `n` of the
    /// paper's constructions; the snapshot base objects have one entry each).
    /// Defaults to [`DEFAULT_CAPACITY`].
    pub fn processes(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Selects the snapshot construction used by the DRV wrapper and the verifier.
    /// Defaults to [`SnapshotBackend::Afek`].
    pub fn snapshot(mut self, backend: SnapshotBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects whether verification gates responses ([`Mode::Enforce`]) or runs
    /// off the critical path ([`Mode::Observe`]). Defaults to [`Mode::Enforce`].
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects when certificates are captured automatically. Defaults to
    /// [`CertificatePolicy::OnDemand`].
    pub fn certificates(mut self, policy: CertificatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Streams every session operation into `sink` as a pair of history
    /// events — the invocation when it is announced, the response (the
    /// *underlying* implementation's value, before any Enforce-mode gating)
    /// when its view is collected. With a
    /// [`SharedTraceWriter`](linrv_trace::SharedTraceWriter) sink this captures
    /// live monitor traffic as a portable trace that `linrv check` can re-verify
    /// offline.
    ///
    /// The recorded order is the order in which the sink is reached, which can
    /// differ from the true real-time order by at most the paper's
    /// stretching/shrinking of intervals (Figures 5–6) — exactly the slack the
    /// verifier is proven sound against.
    pub fn trace_to(mut self, sink: impl EventSink + 'static) -> Self {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Wraps the black-box implementation `inner` and finishes the monitor.
    pub fn build<A: ConcurrentObject>(self, inner: A) -> Monitor<A, S> {
        let n = self.capacity;
        let (announcements, results): (Arc<dyn Snapshot<View>>, Arc<dyn Snapshot<TupleSet>>) =
            match self.backend {
                SnapshotBackend::Afek => (
                    Arc::new(AfekSnapshot::new(n, View::new())),
                    Arc::new(AfekSnapshot::new(n, TupleSet::new())),
                ),
                SnapshotBackend::DoubleCollect => (
                    Arc::new(DoubleCollectSnapshot::new(n, View::new())),
                    Arc::new(DoubleCollectSnapshot::new(n, TupleSet::new())),
                ),
                SnapshotBackend::Locked => (
                    Arc::new(LockedSnapshot::new(n, View::new())),
                    Arc::new(LockedSnapshot::new(n, TupleSet::new())),
                ),
            };
        let enforced =
            SelfEnforced::with_snapshots(inner, LinSpec::new(self.spec), announcements, results);
        Monitor::from_inner(MonitorInner {
            enforced,
            mode: self.mode,
            policy: self.policy,
            backend: self.backend,
            first_violation: Mutex::new(None),
            sink: self.sink,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_runtime::impls::MsQueue;
    use linrv_spec::QueueSpec;

    #[test]
    fn defaults_are_documented() {
        let builder = MonitorBuilder::new(QueueSpec::new());
        let monitor = builder.build(MsQueue::new());
        assert_eq!(monitor.capacity(), DEFAULT_CAPACITY);
        assert_eq!(monitor.mode(), Mode::Enforce);
        assert_eq!(monitor.snapshot_backend(), SnapshotBackend::Afek);
    }

    #[test]
    fn trace_to_captures_live_session_traffic() {
        use linrv_history::Operation;
        use linrv_trace::{read_history, SharedTraceWriter, TraceFormat, TraceHeader};
        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Jsonl,
            &TraceHeader::new(linrv_spec::ObjectKind::Queue),
        )
        .unwrap();
        let monitor = crate::Monitor::builder(QueueSpec::new())
            .processes(1)
            .trace_to(sink.clone())
            .build(MsQueue::new());
        let session = monitor.register().unwrap();
        session.enqueue(1).unwrap();
        assert_eq!(session.dequeue().unwrap(), Some(1));
        // The raw escape hatch is traced too.
        let raw = session.apply_raw(&Operation::nullary("Dequeue"));
        assert!(raw.is_verified());
        drop(session);
        let bytes = sink.finish().unwrap();
        let (header, history) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(header.kind, linrv_spec::ObjectKind::Queue);
        assert_eq!(history.len(), 6, "three operations, two events each");
        assert!(history.is_well_formed());
        assert!(crate::is_linearizable(QueueSpec::new(), &history));
    }

    #[test]
    fn trace_records_the_underlying_value_of_rejected_responses() {
        use linrv_history::OpValue;
        use linrv_runtime::faulty::LossyQueue;
        use linrv_trace::{read_history, SharedTraceWriter, TraceFormat, TraceHeader};
        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Binary,
            &TraceHeader::new(linrv_spec::ObjectKind::Queue),
        )
        .unwrap();
        let monitor = crate::Monitor::builder(QueueSpec::new())
            .processes(1)
            .trace_to(sink.clone())
            .build(LossyQueue::new(2));
        let session = monitor.register().unwrap();
        for i in 0..6 {
            let _ = session.enqueue(i);
        }
        let mut rejected = false;
        for _ in 0..6 {
            if session.dequeue().is_err() {
                rejected = true;
            }
        }
        assert!(rejected, "the lossy queue must be caught");
        drop(session);
        let bytes = sink.finish().unwrap();
        let (_, history) = read_history(bytes.as_slice()).unwrap();
        assert_eq!(history.len(), 24);
        // The trace documents what the implementation did, not the ERROR the
        // session returned: no Error values appear.
        assert!(history
            .events()
            .iter()
            .all(|e| e.value() != Some(&OpValue::Error)));
        // Offline re-checking the trace finds the violation again.
        assert!(!crate::is_linearizable(QueueSpec::new(), &history));
    }

    #[test]
    fn every_backend_builds() {
        for backend in [
            SnapshotBackend::Afek,
            SnapshotBackend::DoubleCollect,
            SnapshotBackend::Locked,
        ] {
            let monitor = MonitorBuilder::new(QueueSpec::new())
                .processes(2)
                .snapshot(backend)
                .build(MsQueue::new());
            let session = monitor.register().unwrap();
            session.enqueue(1).unwrap();
            assert_eq!(session.dequeue().unwrap(), Some(1));
            assert_eq!(monitor.snapshot_backend(), backend);
        }
    }
}
