//! Session-level metrics: per-operation latency and verdict counts.
//!
//! One histogram sample per [`Session`](crate::Session) operation
//! (`apply`/`apply_raw`, end to end across the three DRV phases plus
//! verification and decoding) and one counter bump per verdict. All sites
//! are gated on [`linrv_obs::enabled`], so a monitor that nobody is watching
//! pays one relaxed load per operation.

use linrv_obs::{Counter, Histogram, MetricKind, Registry};
use std::sync::OnceLock;

const OP_NS: &str = "linrv_session_op_ns";
const OP_NS_HELP: &str = "session operation latency end to end (announce..decode), nanoseconds";
const OPS: &str = "linrv_session_ops_total";
const OPS_HELP: &str = "session operations applied (typed and raw)";
const OK: &str = "linrv_session_verdict_ok_total";
const OK_HELP: &str = "operations whose response was verified (or recorded in Observe mode)";
const VIOLATIONS: &str = "linrv_session_violations_total";
const VIOLATIONS_HELP: &str = "violation verdicts surfaced (Enforce rejections and failing checks)";
const MALFORMED: &str = "linrv_session_malformed_total";
const MALFORMED_HELP: &str = "responses rejected because they did not decode to the typed response";

/// End-to-end session operation latency histogram.
pub fn op_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(OP_NS, OP_NS_HELP))
}

/// Session operations started.
pub fn ops_total() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(OPS, OPS_HELP))
}

/// Verified (or Observe-recorded) responses.
pub fn verdict_ok() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(OK, OK_HELP))
}

/// Violation verdicts surfaced by this monitor.
pub fn violations() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(VIOLATIONS, VIOLATIONS_HELP))
}

/// Malformed (undecodable) responses.
pub fn malformed() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(MALFORMED, MALFORMED_HELP))
}

/// Declares every session family in the global registry so exports list
/// them even before any recording.
pub fn declare() {
    let registry = Registry::global();
    registry.declare(OP_NS, MetricKind::Histogram, OP_NS_HELP);
    registry.declare(OPS, MetricKind::Counter, OPS_HELP);
    registry.declare(OK, MetricKind::Counter, OK_HELP);
    registry.declare(VIOLATIONS, MetricKind::Counter, VIOLATIONS_HELP);
    registry.declare(MALFORMED, MetricKind::Counter, MALFORMED_HELP);
}
