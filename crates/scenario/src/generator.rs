//! Composable workload generators.
//!
//! A [`Generator`] produces one process's operation stream, one step at a
//! time: either an operation to invoke next or a pause (a number of scheduler
//! steps to stay quiescent). Generators are deterministic functions of the
//! per-process [`GenCtx`] — same seed, same stream — which is what makes whole
//! fuzz sweeps replayable bit for bit.
//!
//! The leaves sample the runtime's configurable [`Mix`] ([`op_mix`], with
//! [`fill`]/[`drain`] as the phased special cases); the combinators compose
//! them Jepsen-style: [`seq`] for phases, [`mix`] for weighted interleaving,
//! [`take`] for budgets, [`stagger`] for burst/quiescence timing.

use linrv_history::Operation;
use linrv_runtime::{Mix, OpSource, SourceStep, WorkloadKind, MAX_IDLE_TICKS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-process generator context: the seeded RNG and the fresh-value counter.
///
/// Seeding mirrors [`linrv_runtime::Workload::operations_for`]: the RNG is
/// derived from the scenario seed and the process index, and inserted values
/// encode the process (globally unique across processes).
#[derive(Debug)]
pub struct GenCtx {
    process: usize,
    rng: StdRng,
    next_value: i64,
}

impl GenCtx {
    /// A context for `process` under the scenario `seed`.
    pub fn new(seed: u64, process: usize) -> Self {
        GenCtx {
            process,
            rng: StdRng::seed_from_u64(seed ^ (process as u64).wrapping_mul(0x9E37_79B9)),
            next_value: (process as i64) * 1_000_000 + 1,
        }
    }

    /// The process this context belongs to.
    pub fn process(&self) -> usize {
        self.process
    }

    /// The next globally unique insertion value.
    pub fn fresh_value(&mut self) -> i64 {
        let v = self.next_value;
        self.next_value += 1;
        v
    }

    /// The context's RNG (for combinators that need randomness of their own).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Samples one operation of `kind` from `mix` (splitting the context's
    /// borrows so the mix can draw keys and fresh values in one call).
    pub fn sample(&mut self, kind: WorkloadKind, mix: &Mix) -> Operation {
        let GenCtx {
            process,
            rng,
            next_value,
        } = self;
        let mut fresh = || {
            let v = *next_value;
            *next_value += 1;
            v
        };
        mix.sample(kind, *process, rng, &mut fresh)
    }
}

/// One step of a generator's stream.
#[derive(Debug, Clone, PartialEq)]
pub enum GenStep {
    /// Invoke this operation next.
    Op(Operation),
    /// Stay quiescent for this many scheduler steps.
    Pause(u64),
}

/// A composable per-process operation stream.
///
/// `next_step` returns `None` when the stream is exhausted; infinite streams
/// (the leaves) are bounded by wrapping them in [`take`].
pub trait Generator: Send {
    /// The next step of the stream, or `None` when exhausted.
    fn next_step(&mut self, ctx: &mut GenCtx) -> Option<GenStep>;
}

/// The uniform boxed generator the combinators compose.
pub type BoxGenerator = Box<dyn Generator>;

// --- leaves ------------------------------------------------------------------

struct OpMix {
    kind: WorkloadKind,
    mix: Mix,
}

impl Generator for OpMix {
    fn next_step(&mut self, ctx: &mut GenCtx) -> Option<GenStep> {
        Some(GenStep::Op(ctx.sample(self.kind, &self.mix)))
    }
}

/// An endless stream sampling `mix` over `kind`'s operations.
pub fn op_mix(kind: WorkloadKind, mix: Mix) -> BoxGenerator {
    Box::new(OpMix { kind, mix })
}

/// An endless stream of `kind`'s first operation class only (enqueue, push,
/// add, insert, inc, write — the "fill" phase of a phased schedule).
pub fn fill(kind: WorkloadKind) -> BoxGenerator {
    op_mix(kind, Mix::default_for(kind).with_weights([1, 0, 0]))
}

/// An endless stream of `kind`'s second operation class only (dequeue, pop,
/// remove, extract-min, read — the "drain" phase of a phased schedule).
pub fn drain(kind: WorkloadKind) -> BoxGenerator {
    // Consensus has a single operation class; its mix is ignored anyway, but
    // the weights must stay non-degenerate for the two-class kinds.
    op_mix(kind, Mix::default_for(kind).with_weights([0, 1, 0]))
}

// --- combinators -------------------------------------------------------------

struct Seq {
    parts: Vec<BoxGenerator>,
    current: usize,
}

impl Generator for Seq {
    fn next_step(&mut self, ctx: &mut GenCtx) -> Option<GenStep> {
        while self.current < self.parts.len() {
            if let Some(step) = self.parts[self.current].next_step(ctx) {
                return Some(step);
            }
            self.current += 1;
        }
        None
    }
}

/// Runs `parts` one after another: each part drains fully before the next
/// starts (phased schedules like fill-then-drain).
pub fn seq(parts: Vec<BoxGenerator>) -> BoxGenerator {
    Box::new(Seq { parts, current: 0 })
}

struct WeightedMix {
    parts: Vec<(u32, BoxGenerator)>,
}

impl Generator for WeightedMix {
    fn next_step(&mut self, ctx: &mut GenCtx) -> Option<GenStep> {
        while !self.parts.is_empty() {
            let total: u32 = self.parts.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "mix weights must not all be zero");
            let roll = ctx.rng().gen_range(0..i64::from(total));
            let mut acc = 0i64;
            let mut chosen = self.parts.len() - 1;
            for (i, (w, _)) in self.parts.iter().enumerate() {
                acc += i64::from(*w);
                if roll < acc {
                    chosen = i;
                    break;
                }
            }
            match self.parts[chosen].1.next_step(ctx) {
                Some(step) => return Some(step),
                // An exhausted part leaves the rotation; its weight is
                // redistributed implicitly.
                None => {
                    self.parts.remove(chosen);
                }
            }
        }
        None
    }
}

/// Interleaves `parts` at random, proportionally to their weights; exhausted
/// parts drop out. Exhausted when every part is.
pub fn mix(parts: Vec<(u32, BoxGenerator)>) -> BoxGenerator {
    Box::new(WeightedMix { parts })
}

struct Take {
    inner: BoxGenerator,
    remaining: usize,
}

impl Generator for Take {
    fn next_step(&mut self, ctx: &mut GenCtx) -> Option<GenStep> {
        if self.remaining == 0 {
            return None;
        }
        let step = self.inner.next_step(ctx)?;
        if matches!(step, GenStep::Op(_)) {
            self.remaining -= 1;
        }
        Some(step)
    }
}

/// At most `n` operations from `inner` (pauses pass through uncounted).
pub fn take(inner: BoxGenerator, n: usize) -> BoxGenerator {
    Box::new(Take {
        inner,
        remaining: n,
    })
}

struct Stagger {
    inner: BoxGenerator,
    burst: u64,
    pause: u64,
    issued: u64,
}

impl Generator for Stagger {
    fn next_step(&mut self, ctx: &mut GenCtx) -> Option<GenStep> {
        if self.issued == self.burst {
            self.issued = 0;
            return Some(GenStep::Pause(self.pause));
        }
        let step = self.inner.next_step(ctx)?;
        if matches!(step, GenStep::Op(_)) {
            self.issued += 1;
        }
        Some(step)
    }
}

/// Burst/quiescence timing: `burst` operations from `inner`, then a pause of
/// `pause` scheduler steps, repeating.
///
/// # Panics
///
/// Panics if `burst` is zero (the stream would emit pauses forever).
pub fn stagger(inner: BoxGenerator, burst: u64, pause: u64) -> BoxGenerator {
    assert!(burst > 0, "stagger burst must be positive");
    Box::new(Stagger {
        inner,
        burst,
        pause,
        issued: 0,
    })
}

// --- scheduler adaptor -------------------------------------------------------

/// Adapts one generator per process into the controlled scheduler's
/// [`OpSource`].
pub struct GeneratorSource {
    procs: Vec<(GenCtx, BoxGenerator)>,
}

impl GeneratorSource {
    /// One context per generator, seeded per process from the scenario `seed`.
    pub fn new(seed: u64, generators: Vec<BoxGenerator>) -> Self {
        GeneratorSource {
            procs: generators
                .into_iter()
                .enumerate()
                .map(|(p, g)| (GenCtx::new(seed, p), g))
                .collect(),
        }
    }

    /// The next *operation* for `process`, skipping over pauses (for drivers
    /// without a scheduler clock, like the pool runner).
    pub fn next_op(&mut self, process: usize) -> Option<Operation> {
        loop {
            let (ctx, generator) = self.procs.get_mut(process)?;
            match generator.next_step(ctx)? {
                GenStep::Op(op) => return Some(op),
                GenStep::Pause(_) => continue,
            }
        }
    }
}

impl OpSource for GeneratorSource {
    fn next_step(&mut self, process: usize) -> Option<SourceStep> {
        let (ctx, generator) = self.procs.get_mut(process)?;
        Some(match generator.next_step(ctx)? {
            GenStep::Op(op) => SourceStep::Invoke(op),
            GenStep::Pause(ticks) => SourceStep::Pause(ticks.min(MAX_IDLE_TICKS)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_ops(generator: &mut BoxGenerator, ctx: &mut GenCtx, cap: usize) -> Vec<Operation> {
        let mut ops = Vec::new();
        for _ in 0..cap {
            match generator.next_step(ctx) {
                Some(GenStep::Op(op)) => ops.push(op),
                Some(GenStep::Pause(_)) => continue,
                None => break,
            }
        }
        ops
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for _ in 0..2 {
            let make = || {
                take(
                    stagger(
                        op_mix(WorkloadKind::Queue, Mix::default_for(WorkloadKind::Queue)),
                        3,
                        8,
                    ),
                    20,
                )
            };
            let mut a = make();
            let mut b = make();
            let mut ctx_a = GenCtx::new(99, 1);
            let mut ctx_b = GenCtx::new(99, 1);
            assert_eq!(
                drain_ops(&mut a, &mut ctx_a, 100),
                drain_ops(&mut b, &mut ctx_b, 100)
            );
        }
    }

    #[test]
    fn seq_runs_phases_in_order() {
        let mut g = seq(vec![
            take(fill(WorkloadKind::Stack), 3),
            take(drain(WorkloadKind::Stack), 2),
        ]);
        let mut ctx = GenCtx::new(7, 0);
        let ops = drain_ops(&mut g, &mut ctx, 100);
        assert_eq!(
            ops.iter().map(|o| o.kind.as_str()).collect::<Vec<_>>(),
            ["Push", "Push", "Push", "Pop", "Pop"]
        );
        assert!(g.next_step(&mut ctx).is_none());
    }

    #[test]
    fn mix_interleaves_until_all_parts_drain() {
        let mut g = mix(vec![
            (3, take(fill(WorkloadKind::Queue), 5)),
            (1, take(drain(WorkloadKind::Queue), 5)),
        ]);
        let mut ctx = GenCtx::new(3, 0);
        let ops = drain_ops(&mut g, &mut ctx, 100);
        assert_eq!(ops.len(), 10);
        assert_eq!(ops.iter().filter(|o| o.kind == "Enqueue").count(), 5);
        assert_eq!(ops.iter().filter(|o| o.kind == "Dequeue").count(), 5);
    }

    #[test]
    fn stagger_inserts_pauses_between_bursts() {
        let mut g = stagger(fill(WorkloadKind::Counter), 2, 10);
        let mut ctx = GenCtx::new(1, 0);
        let mut shape = Vec::new();
        for _ in 0..9 {
            match g.next_step(&mut ctx).unwrap() {
                GenStep::Op(_) => shape.push('o'),
                GenStep::Pause(t) => {
                    assert_eq!(t, 10);
                    shape.push('-');
                }
            }
        }
        assert_eq!(shape.iter().collect::<String>(), "oo-oo-oo-");
    }

    #[test]
    fn take_counts_operations_not_pauses() {
        let mut g = take(stagger(fill(WorkloadKind::Register), 1, 4), 3);
        let mut ctx = GenCtx::new(5, 2);
        let ops = drain_ops(&mut g, &mut ctx, 100);
        assert_eq!(ops.len(), 3);
        assert!(ops.iter().all(|o| o.kind == "Write"));
    }

    #[test]
    fn generator_source_adapts_per_process_streams() {
        let mut source = GeneratorSource::new(
            11,
            vec![
                take(fill(WorkloadKind::Queue), 2),
                take(drain(WorkloadKind::Queue), 2),
            ],
        );
        assert!(matches!(
            OpSource::next_step(&mut source, 0),
            Some(SourceStep::Invoke(op)) if op.kind == "Enqueue"
        ));
        assert!(matches!(
            OpSource::next_step(&mut source, 1),
            Some(SourceStep::Invoke(op)) if op.kind == "Dequeue"
        ));
        assert_eq!(source.next_op(0).unwrap().kind, "Enqueue");
        assert!(source.next_op(0).is_none());
        assert!(OpSource::next_step(&mut source, 5).is_none());
    }
}
