//! Scenario execution: replays a derived [`Scenario`] against its target and
//! checks the resulting history.
//!
//! Scheduler-targeted scenarios run through the runtime's deterministic
//! controlled scheduler, so a scenario's history is a pure function of its
//! seed. Pool-targeted scenarios drive a [`linrv_pool::MonitorPool`] through
//! pool sessions on a single thread (one operation in flight at a time), which
//! keeps them equally deterministic while exercising session recycling and
//! retirement.

use crate::generator::GeneratorSource;
use crate::nemesis::{ChurnPlan, PlannedFaults};
use crate::scenario::{Scenario, Target};
use linrv_check::{Verdict, Violation};
use linrv_history::{Event, History, OpId, ProcessId};
use linrv_pool::{PoolBuilder, PoolSession};
use linrv_runtime::faulty::MutatedObject;
use linrv_runtime::{impls, record_scheduled_controlled, ConcurrentObject};
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec,
    SequentialSpec, SetSpec, StackSpec, TypedObject, TypedOp,
};

/// Derives the interleaving seed from the scenario seed (the same mixing the
/// `gen`/`record` commands use, so the two RNG streams never correlate).
fn schedule_seed(seed: u64) -> u64 {
    seed ^ 0x5EED_01A7_C0DE
}

/// The outcome of one executed scenario.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scenario's label (`kind/generator/nemesis`).
    pub label: String,
    /// The checked object kind.
    pub kind: ObjectKind,
    /// The recorded history (pool scenarios: the driving mirror, which the
    /// monitor's internal history refines).
    pub history: History,
    /// The checker's verdict on `history` (pool scenarios: the pool's own
    /// verdict, with the violating witness when one exists).
    pub verdict: Verdict,
    /// Processes crashed mid-operation (each leaves one pending invocation).
    pub crashed: Vec<usize>,
}

impl RunOutcome {
    /// `true` when the scenario produced a non-linearizable history.
    pub fn violated(&self) -> bool {
        self.verdict.is_violation()
    }
}

/// Checks `history` against the sequential specification of `kind` using the
/// strategy checker (specialized log-linear monitors with general fallback).
///
/// The dispatch itself lives in `linrv-forensics` (the forensics pipeline
/// re-runs it on every candidate edit); this re-export keeps the scenario
/// engine's historical entry point.
pub use linrv_forensics::check_history;

/// Executes `scenario` end to end and checks the result.
pub fn run_scenario(scenario: &Scenario) -> RunOutcome {
    match scenario.target() {
        Target::Scheduler => run_scheduler_scenario(scenario),
        Target::Pool => run_pool_scenario(scenario),
    }
}

fn run_scheduler_scenario(scenario: &Scenario) -> RunOutcome {
    let kind = scenario.kind.object_kind();
    let plan = scenario.nemesis().plan(scenario.seed, scenario.shape());
    let object: Box<dyn ConcurrentObject> = match plan.inject_every {
        Some(every) => Box::new(MutatedObject::new(impls::spec_object(kind), every)),
        None => impls::spec_object(kind),
    };
    let mut source = GeneratorSource::new(scenario.seed, scenario.generators());
    let mut faults = PlannedFaults::new(plan.commands);
    let run = record_scheduled_controlled(
        &object,
        &mut source,
        scenario.processes,
        schedule_seed(scenario.seed),
        &mut faults,
        None,
    );
    let verdict = check_history(kind, &run.execution.history);
    RunOutcome {
        label: scenario.label(),
        kind,
        history: run.execution.history,
        verdict,
        crashed: run.crashed,
    }
}

fn run_pool_scenario(scenario: &Scenario) -> RunOutcome {
    match scenario.kind.object_kind() {
        ObjectKind::Queue => run_pool_with(scenario, QueueSpec::new()),
        ObjectKind::Stack => run_pool_with(scenario, StackSpec::new()),
        ObjectKind::Set => run_pool_with(scenario, SetSpec::new()),
        ObjectKind::PriorityQueue => run_pool_with(scenario, PriorityQueueSpec::new()),
        ObjectKind::Counter => run_pool_with(scenario, CounterSpec::new()),
        ObjectKind::Register => run_pool_with(scenario, RegisterSpec::new()),
        ObjectKind::Consensus => run_pool_with(scenario, ConsensusSpec::new()),
    }
}

/// Drives the scenario's generators through pool sessions of one shared
/// object of a [`MonitorPool`](linrv_pool::MonitorPool), recycling sessions
/// per the churn plan and crashing one mid-operation (stage, never commit,
/// drop) to exercise slot retirement. The pool hosts the correct (spec-backed)
/// implementation, so the monitor must converge with no violation.
fn run_pool_with<S>(scenario: &Scenario, spec: S) -> RunOutcome
where
    S: TypedObject + SequentialSpec + Clone + Send + Sync + 'static,
{
    let kind = spec.kind();
    let plan = scenario.nemesis().plan(scenario.seed, scenario.shape());
    let churn = plan.churn.unwrap_or(ChurnPlan {
        recycle_every: usize::MAX,
        crash_one: false,
    });
    let pool = PoolBuilder::new(spec)
        .shards(2)
        .workers(1)
        .build(move |_object| impls::spec_object(kind));

    let mut source = GeneratorSource::new(scenario.seed, scenario.generators());
    type Sess<S> = PoolSession<Box<dyn ConcurrentObject>, S>;
    let mut sessions: Vec<Option<Sess<S>>> = (0..scenario.processes).map(|_| None).collect();
    // Mirror history of everything we drove, with per-incarnation process ids:
    // a crashed session's slot is retired, so its successor must not share a
    // process id with the still-pending announced operation.
    let mut events: Vec<Event> = Vec::new();
    let mut incarnation: Vec<usize> = vec![0; scenario.processes];
    let mut next_id = 0u64;
    let mut crashed = Vec::new();
    let mut applied: Vec<usize> = vec![0; scenario.processes];
    let crash_at = scenario.ops_per_process / 2;
    let mut live = true;
    while live {
        live = false;
        for process in 0..scenario.processes {
            let Some(op) = source.next_op(process) else {
                continue;
            };
            live = true;
            // Recycle: drop the session (all its operations committed) and
            // re-open one, exercising registry slot reuse.
            if applied[process] > 0 && applied[process] % churn.recycle_every == 0 {
                sessions[process] = None;
            }
            let session = match &mut sessions[process] {
                Some(session) => session,
                slot => slot.insert(pool.session(0).expect("pool registry exhausted")),
            };
            let mirror =
                ProcessId::new((process + incarnation[process] * scenario.processes) as u32);
            // Crash exactly one session mid-operation: announce (stage) and
            // drop without committing. The announced invocation stays pending
            // forever and the slot is retired, never recycled.
            if churn.crash_one
                && crashed.is_empty()
                && process == scenario.processes / 2
                && applied[process] == crash_at
            {
                if let Ok(typed) = <S::Op as TypedOp>::try_decode(&op) {
                    let staged = session.stage(typed);
                    events.push(Event::invocation(mirror, OpId::new(next_id), op.clone()));
                    next_id += 1;
                    drop(staged);
                    sessions[process] = None;
                    incarnation[process] += 1;
                    crashed.push(process);
                    applied[process] += 1;
                    continue;
                }
            }
            let response = session.apply_raw(&op);
            let id = OpId::new(next_id);
            next_id += 1;
            events.push(Event::invocation(mirror, id, op.clone()));
            events.push(Event::response(mirror, id, response.underlying.clone()));
            applied[process] += 1;
        }
    }
    drop(sessions);
    pool.quiesce();
    let verdict = match pool.violations().into_iter().next() {
        None => Verdict::Member {
            linearization: None,
        },
        Some(violation) => Verdict::NotMember {
            violation: Violation::new(violation.witness, violation.explanation),
        },
    };
    RunOutcome {
        label: scenario.label(),
        kind,
        history: History::from_events(events),
        verdict,
        crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GeneratorKind, NemesisKind};
    use linrv_runtime::WorkloadKind;

    fn scenario(
        kind: WorkloadKind,
        generator: GeneratorKind,
        nemesis: NemesisKind,
        seed: u64,
    ) -> Scenario {
        Scenario {
            index: 0,
            seed,
            kind,
            processes: 3,
            ops_per_process: if kind == WorkloadKind::Consensus {
                1
            } else {
                12
            },
            generator,
            nemesis,
        }
    }

    #[test]
    fn quiet_scenarios_on_correct_objects_stay_linearizable() {
        for (kind, generator) in [
            (WorkloadKind::Queue, GeneratorKind::Uniform),
            (WorkloadKind::Set, GeneratorKind::HotKey),
            (WorkloadKind::Stack, GeneratorKind::FillThenDrain),
            (WorkloadKind::Counter, GeneratorKind::Bursty),
            (WorkloadKind::Register, GeneratorKind::PerProcess),
        ] {
            let outcome = run_scenario(&scenario(kind, generator, NemesisKind::Quiet, 42));
            assert!(
                !outcome.violated(),
                "{}: {:?}",
                outcome.label,
                outcome.verdict
            );
            assert!(outcome.crashed.is_empty());
            assert_eq!(outcome.history.len(), 2 * 3 * 12);
        }
    }

    #[test]
    fn runs_are_bit_for_bit_deterministic() {
        for nemesis in [NemesisKind::Crash, NemesisKind::Stall, NemesisKind::Inject] {
            let s = scenario(WorkloadKind::Queue, GeneratorKind::Bursty, nemesis, 7);
            let a = run_scenario(&s);
            let b = run_scenario(&s);
            assert_eq!(a.history.events(), b.history.events(), "{nemesis}");
            assert_eq!(a.crashed, b.crashed);
        }
    }

    #[test]
    fn crash_scenarios_leave_pending_operations_but_stay_linearizable() {
        let outcome = run_scenario(&scenario(
            WorkloadKind::Register,
            GeneratorKind::Uniform,
            NemesisKind::Crash,
            19,
        ));
        assert!(!outcome.violated(), "{:?}", outcome.verdict);
        assert!(!outcome.crashed.is_empty());
        assert_eq!(
            outcome.history.pending_operations().count(),
            outcome.crashed.len()
        );
    }

    #[test]
    fn injected_faults_are_detected() {
        for kind in [
            WorkloadKind::Queue,
            WorkloadKind::Stack,
            WorkloadKind::PriorityQueue,
            WorkloadKind::Counter,
            WorkloadKind::Register,
        ] {
            let outcome = run_scenario(&scenario(
                kind,
                GeneratorKind::Uniform,
                NemesisKind::Inject,
                23,
            ));
            assert!(outcome.violated(), "{} should violate", outcome.label);
        }
    }

    #[test]
    fn pool_churn_converges_with_no_false_violation() {
        let s = scenario(
            WorkloadKind::Counter,
            GeneratorKind::Uniform,
            NemesisKind::Churn,
            31,
        );
        let outcome = run_scenario(&s);
        assert!(!outcome.violated(), "{:?}", outcome.verdict);
        // The mirror history itself must be linearizable too (and well-formed
        // despite the crashed incarnation).
        assert!(outcome.history.is_well_formed());
        assert!(!check_history(ObjectKind::Counter, &outcome.history).is_violation());
        // Determinism extends to the pool path.
        let again = run_scenario(&s);
        assert_eq!(outcome.history.events(), again.history.events());
        assert_eq!(outcome.crashed, again.crashed);
    }
}
