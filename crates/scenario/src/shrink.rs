//! Delta-debugging trace shrinking, re-exported from `linrv-forensics`.
//!
//! The ddmin shrinker started life here, wired straight into the fuzz sweep;
//! it is now the first phase of the general forensics pipeline
//! (`linrv_forensics::shrink` → `narrow` → `explain`) so that `linrv explain`
//! can minimize *any* loaded trace, not just sweep failures. This module
//! keeps the original paths (`linrv_scenario::shrink::shrink`, …) working.

pub use linrv_forensics::shrink::{is_locally_minimal, shrink, ShrinkOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::check_history;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::{ops::queue, ObjectKind};

    /// The re-exported shrinker agrees with the scenario engine's own
    /// dispatch: both route through the same strategy checker.
    #[test]
    fn reexported_shrinker_matches_scenario_checking() {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::enqueue(1), OpValue::Bool(true));
        b.complete(p, queue::dequeue(), OpValue::Int(1));
        b.complete(p, queue::dequeue(), OpValue::Int(-1));
        let failing = b.build();
        assert!(check_history(ObjectKind::Queue, &failing).is_violation());
        let outcome = shrink(ObjectKind::Queue, &failing);
        assert!(is_locally_minimal(ObjectKind::Queue, &outcome.history));
        assert!(check_history(ObjectKind::Queue, &outcome.history).is_violation());
        assert_eq!(outcome.removed, 2);
    }
}
