//! Seeded nemeses: replayable fault schedules against the runtime and pool.
//!
//! A [`Nemesis`] turns a scenario seed and run shape into a [`FaultPlan`] — a
//! list of scheduler fault commands (crash, stall), an optional response
//! corruption period (routing the run through the existing `faulty::*`
//! wrappers), and an optional session-churn plan for pool-targeted scenarios.
//! Plans are pure functions of `(seed, shape)`, so a sweep replays bit for bit.

use linrv_runtime::{FaultCmd, ScheduleFaults, MAX_IDLE_TICKS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of a run a nemesis plans against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunShape {
    /// Number of processes.
    pub processes: usize,
    /// Operations each process performs.
    pub ops_per_process: usize,
}

impl RunShape {
    /// Total operations across all processes.
    pub fn total_ops(&self) -> u64 {
        self.processes as u64 * self.ops_per_process as u64
    }

    /// Scheduler steps a fault-free run takes: three per operation
    /// (log-invocation, apply, log-response).
    pub fn total_steps(&self) -> u64 {
        3 * self.total_ops()
    }
}

/// Session-recycling churn against a [`linrv_pool::MonitorPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Drop and re-open a process's pool session every this many of its
    /// operations (exercising registry slot recycling).
    pub recycle_every: usize,
    /// Additionally crash one session mid-operation (stage, never commit, then
    /// drop — exercising slot *retirement*).
    pub crash_one: bool,
}

/// A nemesis's complete, replayable fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Scheduler fault commands, applied at their step (see
    /// [`record_scheduled_controlled`](linrv_runtime::record_scheduled_controlled)).
    pub commands: Vec<(u64, FaultCmd)>,
    /// Corrupt every n-th response via
    /// [`MutatedObject`](linrv_runtime::faulty::MutatedObject) when set.
    pub inject_every: Option<u64>,
    /// Pool session churn when the scenario targets a pool.
    pub churn: Option<ChurnPlan>,
}

/// A seeded fault-schedule producer.
pub trait Nemesis {
    /// Short name for scenario labels and reports.
    fn name(&self) -> &'static str;

    /// The plan for a run of `shape` under `seed`. Must be a pure function of
    /// its arguments (sweeps replay plans bit for bit).
    fn plan(&self, seed: u64, shape: RunShape) -> FaultPlan;
}

fn nemesis_rng(seed: u64) -> StdRng {
    // Decorrelate from the workload and interleaving streams.
    StdRng::seed_from_u64(seed ^ 0x00BA_D5EE_D0DD_BA11)
}

/// No faults, ever: the baseline every other nemesis is compared against.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuietNemesis;

impl Nemesis for QuietNemesis {
    fn name(&self) -> &'static str {
        "quiet"
    }

    fn plan(&self, _seed: u64, _shape: RunShape) -> FaultPlan {
        FaultPlan::default()
    }
}

/// Crashes `victims` distinct processes mid-operation at seeded steps in the
/// middle half of the run, leaving their announced invocations pending forever
/// (the paper's crashed processes; drives the `Session` slot-retirement path
/// when replayed against a monitor).
#[derive(Debug, Clone, Copy)]
pub struct CrashNemesis {
    /// How many processes to crash (clamped to leave one process alive).
    pub victims: usize,
}

impl Nemesis for CrashNemesis {
    fn name(&self) -> &'static str {
        "crash"
    }

    fn plan(&self, seed: u64, shape: RunShape) -> FaultPlan {
        let mut rng = nemesis_rng(seed);
        let victims = self.victims.min(shape.processes.saturating_sub(1));
        let mut alive: Vec<usize> = (0..shape.processes).collect();
        let steps = shape.total_steps().max(4);
        let mut commands = Vec::new();
        for _ in 0..victims {
            let pick = rng.gen_range(0..alive.len() as i64) as usize;
            let victim = alive.swap_remove(pick);
            let step = steps / 4 + rng.gen_range(0..(steps / 2).max(1) as i64) as u64;
            commands.push((step, FaultCmd::Crash(victim)));
        }
        FaultPlan {
            commands,
            ..FaultPlan::default()
        }
    }
}

/// Stalls one or two processes for long stretches (stretching their intervals,
/// as in Figures 5–6 of the paper) without crashing anyone.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallNemesis;

impl Nemesis for StallNemesis {
    fn name(&self) -> &'static str {
        "stall"
    }

    fn plan(&self, seed: u64, shape: RunShape) -> FaultPlan {
        let mut rng = nemesis_rng(seed);
        let steps = shape.total_steps().max(4);
        let stalls = 1 + rng.gen_range(0..2) as usize;
        let mut commands = Vec::new();
        for _ in 0..stalls {
            let victim = rng.gen_range(0..shape.processes as i64) as usize;
            let step = rng.gen_range(0..(3 * steps / 4).max(1) as i64) as u64;
            let ticks = (steps / 3).clamp(1, MAX_IDLE_TICKS);
            commands.push((step, FaultCmd::Stall(victim, ticks)));
        }
        FaultPlan {
            commands,
            ..FaultPlan::default()
        }
    }
}

/// Routes the run through the kind's response-corrupting wrapper
/// ([`MutatedObject`](linrv_runtime::faulty::MutatedObject)), corrupting every
/// n-th response: the scenarios a fuzz sweep is *expected* to catch.
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectNemesis;

impl Nemesis for InjectNemesis {
    fn name(&self) -> &'static str {
        "inject"
    }

    fn plan(&self, _seed: u64, shape: RunShape) -> FaultPlan {
        // At least two corruptions per run on the quick budget, and never a
        // period beyond the run (which would label the scenario faulty while
        // corrupting nothing).
        let every = (shape.total_ops() / 6).clamp(2, shape.total_ops().max(2));
        FaultPlan {
            inject_every: Some(every),
            ..FaultPlan::default()
        }
    }
}

/// Pool-targeted churn: sessions are dropped and re-opened throughout the run
/// (registry slot recycling), and one is crashed mid-operation (slot
/// retirement). The monitor must converge with no false violation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnNemesis;

impl Nemesis for ChurnNemesis {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn plan(&self, seed: u64, shape: RunShape) -> FaultPlan {
        let mut rng = nemesis_rng(seed);
        FaultPlan {
            churn: Some(ChurnPlan {
                recycle_every: (shape.ops_per_process / 3).max(2),
                crash_one: rng.gen_bool(0.75),
            }),
            ..FaultPlan::default()
        }
    }
}

/// Replays a [`FaultPlan`]'s commands into the controlled scheduler.
#[derive(Debug)]
pub struct PlannedFaults {
    commands: Vec<(u64, FaultCmd)>,
    next: usize,
}

impl PlannedFaults {
    /// Sorts the plan's commands by step for in-order replay.
    pub fn new(mut commands: Vec<(u64, FaultCmd)>) -> Self {
        commands.sort_by_key(|(step, _)| *step);
        PlannedFaults { commands, next: 0 }
    }
}

impl ScheduleFaults for PlannedFaults {
    fn at_step(&mut self, step: u64) -> Vec<FaultCmd> {
        let mut due = Vec::new();
        while let Some((at, cmd)) = self.commands.get(self.next) {
            if *at > step {
                break;
            }
            due.push(*cmd);
            self.next += 1;
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: RunShape = RunShape {
        processes: 4,
        ops_per_process: 25,
    };

    #[test]
    fn plans_are_pure_functions_of_seed_and_shape() {
        let nemeses: [&dyn Nemesis; 5] = [
            &QuietNemesis,
            &CrashNemesis { victims: 2 },
            &StallNemesis,
            &InjectNemesis,
            &ChurnNemesis,
        ];
        for nemesis in nemeses {
            assert_eq!(
                nemesis.plan(42, SHAPE),
                nemesis.plan(42, SHAPE),
                "{} must replay",
                nemesis.name()
            );
        }
    }

    #[test]
    fn crash_nemesis_leaves_a_process_alive_and_victims_distinct() {
        let plan = CrashNemesis { victims: 10 }.plan(7, SHAPE);
        let victims: Vec<usize> = plan
            .commands
            .iter()
            .map(|(_, cmd)| match cmd {
                FaultCmd::Crash(p) => *p,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(victims.len(), SHAPE.processes - 1);
        let mut unique = victims.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), victims.len(), "victims must be distinct");
    }

    #[test]
    fn inject_period_fits_the_run() {
        let plan = InjectNemesis.plan(0, SHAPE);
        let every = plan.inject_every.unwrap();
        assert!(every >= 2 && every <= SHAPE.total_ops());
        let tiny = InjectNemesis.plan(
            0,
            RunShape {
                processes: 3,
                ops_per_process: 1,
            },
        );
        assert_eq!(tiny.inject_every, Some(2));
    }

    #[test]
    fn planned_faults_fire_in_step_order() {
        let mut faults = PlannedFaults::new(vec![
            (9, FaultCmd::Crash(1)),
            (2, FaultCmd::Stall(0, 5)),
            (9, FaultCmd::Crash(2)),
        ]);
        assert_eq!(faults.at_step(0), vec![]);
        assert_eq!(faults.at_step(2), vec![FaultCmd::Stall(0, 5)]);
        assert_eq!(faults.at_step(8), vec![]);
        assert_eq!(
            faults.at_step(9),
            vec![FaultCmd::Crash(1), FaultCmd::Crash(2)]
        );
        assert_eq!(faults.at_step(100), vec![]);
    }
}
