//! Scenario derivation: one seeded point in the kinds × generators × nemeses
//! grid.
//!
//! A [`Scenario`] is pure data — derived deterministically from a sweep's
//! master seed and the scenario index — so any scenario from a report can be
//! re-derived and re-run in isolation. The derivation cycles object kinds and
//! nemeses on coprime periods (7 and 5), guaranteeing every combination
//! appears within 35 scenarios and every nemesis within the first 5.

use crate::generator::{drain, fill, mix, op_mix, seq, stagger, take, BoxGenerator};
use crate::nemesis::{
    ChurnNemesis, CrashNemesis, InjectNemesis, Nemesis, QuietNemesis, RunShape, StallNemesis,
};
use linrv_runtime::{Mix, WorkloadKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Which generator family a scenario drives each process with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// The kind's default op mix, uniformly interleaved.
    Uniform,
    /// A skewed op-ratio mix (mutators dominate).
    Weighted,
    /// Phased: fill the object first, then drain it.
    FillThenDrain,
    /// Hot-key skew over a small key range (bites on keyed kinds).
    HotKey,
    /// Bursts of operations separated by quiescent pauses.
    Bursty,
    /// Heterogeneous processes: even processes fill, odd processes drain.
    PerProcess,
}

impl GeneratorKind {
    const ALL: [GeneratorKind; 6] = [
        GeneratorKind::Uniform,
        GeneratorKind::Weighted,
        GeneratorKind::FillThenDrain,
        GeneratorKind::HotKey,
        GeneratorKind::Bursty,
        GeneratorKind::PerProcess,
    ];
}

impl fmt::Display for GeneratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GeneratorKind::Uniform => "uniform",
            GeneratorKind::Weighted => "weighted",
            GeneratorKind::FillThenDrain => "fill-drain",
            GeneratorKind::HotKey => "hot-key",
            GeneratorKind::Bursty => "bursty",
            GeneratorKind::PerProcess => "per-process",
        })
    }
}

/// Which nemesis a scenario runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NemesisKind {
    /// No faults.
    Quiet,
    /// Crash processes mid-operation.
    Crash,
    /// Stall processes (interval stretching).
    Stall,
    /// Corrupt responses via the kind's `faulty::*` wrapper — the scenarios a
    /// sweep is expected to catch.
    Inject,
    /// Pool session recycling/retirement churn.
    Churn,
}

impl NemesisKind {
    const CYCLE: [NemesisKind; 5] = [
        NemesisKind::Quiet,
        NemesisKind::Crash,
        NemesisKind::Stall,
        NemesisKind::Inject,
        NemesisKind::Churn,
    ];
}

impl fmt::Display for NemesisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NemesisKind::Quiet => "quiet",
            NemesisKind::Crash => "crash",
            NemesisKind::Stall => "stall",
            NemesisKind::Inject => "inject",
            NemesisKind::Churn => "churn",
        })
    }
}

/// Where a scenario executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The deterministic controlled scheduler
    /// ([`record_scheduled_controlled`](linrv_runtime::record_scheduled_controlled)).
    Scheduler,
    /// A [`linrv_pool::MonitorPool`] driven through pool sessions.
    Pool,
}

/// The run shape a sweep derives scenarios against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepShape {
    /// Processes per scenario.
    pub processes: usize,
    /// Operations per process.
    pub ops_per_process: usize,
}

/// One derived scenario: pure data, replayable in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Index within the sweep.
    pub index: usize,
    /// This scenario's own seed (derived from the sweep's master seed).
    pub seed: u64,
    /// The workload/object kind.
    pub kind: WorkloadKind,
    /// Processes.
    pub processes: usize,
    /// Operations per process (consensus runs are capped at one).
    pub ops_per_process: usize,
    /// Generator family.
    pub generator: GeneratorKind,
    /// Nemesis.
    pub nemesis: NemesisKind,
}

impl Scenario {
    /// Derives scenario `index` of a sweep with `master_seed` and `shape`.
    ///
    /// Kinds cycle with period 7 and nemeses with period 5 (coprime, so all 35
    /// combinations appear over a long enough sweep); the generator family and
    /// the per-scenario seed are drawn from an index-keyed RNG. Two
    /// constraints re-route incompatible picks: `inject` never runs on sets
    /// (a flipped boolean response can still be linearizable, so detection
    /// would not be guaranteed) and `churn` never runs on consensus (one-shot
    /// operations leave nothing to recycle).
    pub fn derive(master_seed: u64, index: usize, shape: SweepShape) -> Scenario {
        let kinds = [
            WorkloadKind::Queue,
            WorkloadKind::Stack,
            WorkloadKind::Set,
            WorkloadKind::PriorityQueue,
            WorkloadKind::Counter,
            WorkloadKind::Register,
            WorkloadKind::Consensus,
        ];
        let kind = kinds[index % kinds.len()];
        let mut rng =
            StdRng::seed_from_u64(master_seed ^ (index as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let generator =
            GeneratorKind::ALL[rng.gen_range(0..GeneratorKind::ALL.len() as i64) as usize];
        let nemesis = match NemesisKind::CYCLE[index % NemesisKind::CYCLE.len()] {
            NemesisKind::Inject if kind == WorkloadKind::Set => NemesisKind::Crash,
            NemesisKind::Churn if kind == WorkloadKind::Consensus => NemesisKind::Stall,
            picked => picked,
        };
        let seed = rng.gen_range(0..i64::MAX) as u64 ^ master_seed.rotate_left(17);
        let ops_per_process = if kind == WorkloadKind::Consensus {
            1
        } else {
            shape.ops_per_process
        };
        Scenario {
            index,
            seed,
            kind,
            processes: shape.processes,
            ops_per_process,
            generator,
            nemesis,
        }
    }

    /// The run shape nemeses plan against.
    pub fn shape(&self) -> RunShape {
        RunShape {
            processes: self.processes,
            ops_per_process: self.ops_per_process,
        }
    }

    /// Where this scenario executes: `churn` targets a pool, everything else
    /// the controlled scheduler.
    pub fn target(&self) -> Target {
        if self.nemesis == NemesisKind::Churn {
            Target::Pool
        } else {
            Target::Scheduler
        }
    }

    /// `true` when the sweep is *expected* to catch a violation here (a
    /// response-corrupting wrapper is injected).
    pub fn expect_violation(&self) -> bool {
        self.nemesis == NemesisKind::Inject
    }

    /// The scenario's human-readable label, recorded in trace headers:
    /// `kind/generator/nemesis`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.kind.object_kind(),
            self.generator,
            self.nemesis
        )
    }

    /// Builds this scenario's nemesis.
    pub fn nemesis(&self) -> Box<dyn Nemesis> {
        match self.nemesis {
            NemesisKind::Quiet => Box::new(QuietNemesis),
            NemesisKind::Crash => Box::new(CrashNemesis {
                victims: (self.processes / 2).max(1),
            }),
            NemesisKind::Stall => Box::new(StallNemesis),
            NemesisKind::Inject => Box::new(InjectNemesis),
            NemesisKind::Churn => Box::new(ChurnNemesis),
        }
    }

    /// Builds one generator per process, each budgeted to the scenario's
    /// per-process operation count.
    pub fn generators(&self) -> Vec<BoxGenerator> {
        (0..self.processes)
            .map(|process| take(self.base_generator(process), self.ops_per_process))
            .collect()
    }

    fn base_generator(&self, process: usize) -> BoxGenerator {
        let kind = self.kind;
        let default = Mix::default_for(kind);
        match self.generator {
            GeneratorKind::Uniform => op_mix(kind, default),
            GeneratorKind::Weighted => {
                // Mutators dominate 3:1 (and contains stays rare on sets).
                op_mix(kind, default.with_weights([3, 1, 1]))
            }
            GeneratorKind::FillThenDrain => seq(vec![
                take(fill(kind), self.ops_per_process.div_ceil(2)),
                drain(kind),
            ]),
            GeneratorKind::HotKey => op_mix(kind, default.with_key_range(4).with_skew(2.0)),
            GeneratorKind::Bursty => stagger(op_mix(kind, default), 3, 16),
            GeneratorKind::PerProcess => {
                if process % 2 == 0 {
                    fill(kind)
                } else {
                    // Odd processes mostly drain but still mutate occasionally,
                    // keeping the interleaving interesting.
                    mix(vec![(1, fill(kind)), (4, drain(kind))])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: SweepShape = SweepShape {
        processes: 3,
        ops_per_process: 12,
    };

    #[test]
    fn derivation_is_deterministic() {
        for index in 0..40 {
            assert_eq!(
                Scenario::derive(42, index, SHAPE),
                Scenario::derive(42, index, SHAPE)
            );
        }
        assert_ne!(
            Scenario::derive(42, 0, SHAPE).seed,
            Scenario::derive(43, 0, SHAPE).seed
        );
    }

    #[test]
    fn every_nemesis_and_kind_appears_early() {
        let scenarios: Vec<Scenario> = (0..35).map(|i| Scenario::derive(7, i, SHAPE)).collect();
        for nemesis in NemesisKind::CYCLE {
            assert!(
                scenarios.iter().any(|s| s.nemesis == nemesis),
                "{nemesis} missing"
            );
        }
        for kind in [WorkloadKind::Queue, WorkloadKind::Consensus] {
            assert!(scenarios.iter().any(|s| s.kind == kind));
        }
    }

    #[test]
    fn incompatible_picks_are_rerouted() {
        for index in 0..200 {
            let s = Scenario::derive(99, index, SHAPE);
            if s.kind == WorkloadKind::Set {
                assert_ne!(s.nemesis, NemesisKind::Inject, "inject on set at {index}");
            }
            if s.kind == WorkloadKind::Consensus {
                assert_ne!(
                    s.nemesis,
                    NemesisKind::Churn,
                    "churn on consensus at {index}"
                );
                assert_eq!(s.ops_per_process, 1);
            }
            assert_eq!(s.target() == Target::Pool, s.nemesis == NemesisKind::Churn);
        }
    }

    #[test]
    fn labels_name_the_whole_recipe() {
        let s = Scenario {
            index: 0,
            seed: 1,
            kind: WorkloadKind::PriorityQueue,
            processes: 3,
            ops_per_process: 12,
            generator: GeneratorKind::FillThenDrain,
            nemesis: NemesisKind::Stall,
        };
        assert_eq!(s.label(), "priority-queue/fill-drain/stall");
    }

    #[test]
    fn generators_cover_every_process() {
        let s = Scenario::derive(3, 5, SHAPE);
        assert_eq!(s.generators().len(), SHAPE.processes);
    }
}
