//! # linrv-scenario
//!
//! Jepsen-style scenario engine for the linrv monitor stack: composable
//! workload **generators**, seeded **nemeses** (fault schedules), and
//! delta-debugging **trace shrinking**, swept by `linrv fuzz`.
//!
//! The monitor stack treats the implementation under inspection as a black
//! box, so the quality of its testing is exactly the diversity of the
//! histories it sees. This crate widens that diversity along three axes:
//!
//! * [`generator`] — what each process does: configurable op-ratio mixes,
//!   phased fill-then-drain schedules, hot-key skew, burst/quiescence timing
//!   and per-process heterogeneity, composed from `seq`/`mix`/`take`/`stagger`
//!   combinators.
//! * [`nemesis`] — what goes wrong: process crashes mid-operation (pending
//!   invocations, the paper's crashed processes), stalls that stretch
//!   intervals (Figures 5–6), pool session recycling/retirement churn, and
//!   injection of the response-corrupting `faulty::*` wrappers.
//! * [`mod@shrink`] — what you read afterwards: failing traces are reduced by
//!   delta debugging over complete operation pairs to a *locally minimal*
//!   violating witness (removing any single pair makes it pass).
//!
//! Everything is replayable bit for bit from a `u64` seed: scenarios derive
//! deterministically from a sweep's master seed, run on the runtime's
//! deterministic controlled scheduler (or a single-threaded pool driver), and
//! write byte-identical corpora.
//!
//! ```
//! use linrv_scenario::{run_sweep, FuzzConfig};
//!
//! // Two scenarios of the pinned quick shape; same seed ⇒ same report.
//! let report = run_sweep(&FuzzConfig::quick(42).with_scenarios(2)).unwrap();
//! assert_eq!(report.results.len(), 2);
//! assert!(report.all_expected());
//! ```
//!
//! Shrinking standalone:
//!
//! ```
//! use linrv_history::{HistoryBuilder, OpValue, ProcessId};
//! use linrv_scenario::shrink::{is_locally_minimal, shrink};
//! use linrv_spec::{ops::queue, ObjectKind};
//!
//! let mut b = HistoryBuilder::new();
//! let p = ProcessId::new(0);
//! b.complete(p, queue::enqueue(1), OpValue::Bool(true));
//! b.complete(p, queue::dequeue(), OpValue::Int(1));
//! b.complete(p, queue::dequeue(), OpValue::Int(7)); // never enqueued
//! let outcome = shrink(ObjectKind::Queue, &b.build());
//! assert_eq!(outcome.history.complete_operations().count(), 1);
//! assert!(is_locally_minimal(ObjectKind::Queue, &outcome.history));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fuzz;
pub mod generator;
pub mod nemesis;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use fuzz::{run_sweep, FuzzConfig, FuzzReport, ScenarioResult};
pub use generator::{
    drain, fill, mix, op_mix, seq, stagger, take, BoxGenerator, GenCtx, GenStep, Generator,
    GeneratorSource,
};
pub use nemesis::{
    ChurnNemesis, ChurnPlan, CrashNemesis, FaultPlan, InjectNemesis, Nemesis, PlannedFaults,
    QuietNemesis, RunShape, StallNemesis,
};
pub use runner::{check_history, run_scenario, RunOutcome};
pub use scenario::{GeneratorKind, NemesisKind, Scenario, SweepShape, Target};
pub use shrink::{is_locally_minimal, shrink, ShrinkOutcome};

// Compile the README's code blocks as doctests. This lives in the top crate of
// the workspace dependency stack (scenario depends on linrv, pool, runtime,
// check, …), so README examples may use any of them.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctests;
