//! The fuzz sweep: run N derived scenarios, shrink every failure, report.
//!
//! A sweep is a pure function of its [`FuzzConfig`] (`same seed ⇒ byte
//! identical corpus`): scenarios are derived, executed and shrunk in index
//! order on one thread, and corpus files are written deterministically.

use crate::runner::{run_scenario, RunOutcome};
use crate::scenario::{Scenario, SweepShape};
use crate::shrink::{shrink, ShrinkOutcome};
use linrv_forensics::{explain, render_cert, render_report};
use linrv_history::History;
use linrv_trace::{Provenance, TraceFormat, TraceHeader, TraceWriter};
use std::fmt::Write as _;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

/// Configuration of one fuzz sweep.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of scenarios to derive and run.
    pub scenarios: usize,
    /// Master seed: every scenario seed, interleaving and corpus byte derives
    /// from it.
    pub seed: u64,
    /// Processes per scenario.
    pub processes: usize,
    /// Operations per process (consensus scenarios are capped at one).
    pub ops_per_process: usize,
    /// Directory failing traces (full + shrunk minimal) are written to;
    /// `None` keeps the sweep in memory.
    pub corpus_dir: Option<PathBuf>,
}

impl FuzzConfig {
    /// A sweep of `scenarios` scenarios at the default shape (4 processes,
    /// 25 operations each).
    pub fn new(scenarios: usize, seed: u64) -> Self {
        FuzzConfig {
            scenarios,
            seed,
            processes: 4,
            ops_per_process: 25,
            corpus_dir: None,
        }
    }

    /// The pinned quick CI budget: 24 scenarios, 3 processes, 12 operations
    /// each — small enough for a smoke job, large enough that every nemesis
    /// (and several injected-fault scenarios) appears.
    pub fn quick(seed: u64) -> Self {
        FuzzConfig {
            scenarios: 24,
            seed,
            processes: 3,
            ops_per_process: 12,
            corpus_dir: None,
        }
    }

    /// Replaces the scenario count (builder style).
    pub fn with_scenarios(mut self, scenarios: usize) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Writes failing traces under `dir` (builder style).
    pub fn with_corpus(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus_dir = Some(dir.into());
        self
    }
}

/// What one scenario of a sweep did.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Index within the sweep.
    pub index: usize,
    /// The scenario label (`kind/generator/nemesis`).
    pub label: String,
    /// Whether a violation was expected (a fault-injecting nemesis ran).
    pub expected: bool,
    /// Whether the checker found a violation.
    pub violated: bool,
    /// Events in the recorded history.
    pub events: usize,
    /// Complete operations in the shrunk minimal witness (violations only).
    pub minimal_ops: Option<usize>,
    /// Operations removed by shrinking (violations only).
    pub removed: Option<usize>,
    /// Corpus file of the full failing trace, when written.
    pub trace_file: Option<String>,
    /// Corpus file of the shrunk minimal trace, when written.
    pub minimal_file: Option<String>,
    /// Corpus file of the witness's forensic explanation, when written.
    pub explain_file: Option<String>,
    /// Wall time of the scenario (run, check and shrink), in nanoseconds.
    /// The only non-deterministic field: verdicts and corpus bytes stay a
    /// pure function of the config.
    pub wall_ns: u64,
}

impl ScenarioResult {
    /// An expected violation that was found and shrunk.
    pub fn caught(&self) -> bool {
        self.expected && self.violated
    }

    /// An expected violation the checker failed to find.
    pub fn missed(&self) -> bool {
        self.expected && !self.violated
    }

    /// A violation where none was expected (a monitor-stack bug).
    pub fn unexpected(&self) -> bool {
        !self.expected && self.violated
    }
}

/// The one-screen report of a sweep.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The sweep's master seed.
    pub seed: u64,
    /// Per-scenario results, in index order.
    pub results: Vec<ScenarioResult>,
    /// Wall time of the whole sweep, in nanoseconds.
    pub wall_ns: u64,
}

impl FuzzReport {
    /// Expected violations found and shrunk.
    pub fn caught(&self) -> usize {
        self.results.iter().filter(|r| r.caught()).count()
    }

    /// Expected violations the checker failed to find.
    pub fn missed(&self) -> usize {
        self.results.iter().filter(|r| r.missed()).count()
    }

    /// Violations where none was expected.
    pub fn unexpected(&self) -> usize {
        self.results.iter().filter(|r| r.unexpected()).count()
    }

    /// `true` when every injected fault was caught and nothing else violated —
    /// the sweep's pass condition.
    pub fn all_expected(&self) -> bool {
        self.missed() == 0 && self.unexpected() == 0
    }

    /// Complete operations executed across all scenarios.
    pub fn total_ops(&self) -> u64 {
        // Every recorded event pair (invocation + response) is one operation.
        self.results.iter().map(|r| r.events as u64 / 2).sum()
    }

    /// Renders the one-screen scenario report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let clean = self
            .results
            .iter()
            .filter(|r| !r.expected && !r.violated)
            .count();
        let _ = writeln!(
            out,
            "linrv fuzz: seed {}, {} scenarios — {} caught and shrunk, {} missed, \
             {} unexpected, {} clean",
            self.seed,
            self.results.len(),
            self.caught(),
            self.missed(),
            self.unexpected(),
            clean,
        );
        for r in &self.results {
            if r.violated {
                let _ = writeln!(
                    out,
                    "  #{:04} {:<40} VIOLATION: {} events -> {} ops minimal ({} removed) in {}{}",
                    r.index,
                    r.label,
                    r.events,
                    r.minimal_ops.unwrap_or(0),
                    r.removed.unwrap_or(0),
                    fmt_wall(r.wall_ns),
                    if r.expected { "" } else { "  ** UNEXPECTED **" },
                );
            } else if r.missed() {
                let _ = writeln!(
                    out,
                    "  #{:04} {:<40} MISSED injected fault in {}",
                    r.index,
                    r.label,
                    fmt_wall(r.wall_ns),
                );
            }
        }
        let ops = self.total_ops();
        let seconds = (self.wall_ns as f64 / 1e9).max(1e-9);
        let mut footer = format!(
            "  {ops} ops in {} — {:.0} ops/sec",
            fmt_wall(self.wall_ns),
            ops as f64 / seconds,
        );
        if let Some(slowest) = self.results.iter().max_by_key(|r| r.wall_ns) {
            let _ = write!(
                footer,
                " (slowest: #{:04} {} in {})",
                slowest.index,
                slowest.label,
                fmt_wall(slowest.wall_ns),
            );
        }
        let _ = writeln!(out, "{footer}");
        out
    }
}

/// Renders nanoseconds as a compact human duration.
fn fmt_wall(ns: u64) -> String {
    if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn write_trace(
    path: &Path,
    scenario: &Scenario,
    provenance: Provenance,
    history: &History,
) -> io::Result<()> {
    let header = TraceHeader::new(scenario.kind.object_kind())
        .with_seed(scenario.seed)
        .with_processes(scenario.processes as u32)
        .with_ops_per_process(scenario.ops_per_process as u32)
        .with_implementation("scenario-engine")
        .with_scenario(scenario.label())
        .with_provenance(provenance);
    let mut writer = TraceWriter::new(File::create(path)?, TraceFormat::Jsonl, &header)
        .map_err(io::Error::other)?;
    for event in history.events() {
        writer.event(event).map_err(io::Error::other)?;
    }
    writer.finish().map_err(io::Error::other)?;
    Ok(())
}

fn corpus_files(
    dir: &Path,
    scenario: &Scenario,
    outcome: &RunOutcome,
    shrunk: &ShrinkOutcome,
) -> io::Result<(String, String, Option<String>)> {
    let slug = scenario.label().replace('/', "-");
    let full = format!("scenario-{:04}-{slug}.jsonl", scenario.index);
    let minimal = format!("scenario-{:04}-{slug}-minimal.jsonl", scenario.index);
    // Injected-fault traces are known faulty; anything else violating is a
    // finding whose provenance the sweep cannot vouch for.
    let provenance = if scenario.expect_violation() {
        Provenance::Faulty
    } else {
        Provenance::Unknown
    };
    write_trace(&dir.join(&full), scenario, provenance, &outcome.history)?;
    write_trace(&dir.join(&minimal), scenario, provenance, &shrunk.history)?;
    // A witness without a "why" is half a bug report: explain the minimal
    // trace (deterministically — the sweep's byte-identity contract covers
    // these files too) and drop the report and certificate next to it.
    let explain_file = match explain(outcome.kind, &shrunk.history) {
        Some(explanation) => {
            let report = format!("scenario-{:04}-{slug}-minimal.explain.txt", scenario.index);
            let cert = format!("scenario-{:04}-{slug}-minimal.cert.json", scenario.index);
            std::fs::write(dir.join(&report), render_report(&explanation))?;
            std::fs::write(dir.join(&cert), render_cert(&explanation))?;
            Some(report)
        }
        None => None,
    };
    Ok((full, minimal, explain_file))
}

/// Runs the whole sweep: derive, execute, check, shrink failures, write the
/// corpus. Deterministic per config — same seed, same report, byte-identical
/// corpus files.
///
/// # Errors
///
/// Returns the first I/O error hit while writing corpus files.
pub fn run_sweep(config: &FuzzConfig) -> io::Result<FuzzReport> {
    if let Some(dir) = &config.corpus_dir {
        std::fs::create_dir_all(dir)?;
    }
    let shape = SweepShape {
        processes: config.processes,
        ops_per_process: config.ops_per_process,
    };
    let sweep_started = std::time::Instant::now();
    let mut results = Vec::with_capacity(config.scenarios);
    for index in 0..config.scenarios {
        let started = std::time::Instant::now();
        let scenario = Scenario::derive(config.seed, index, shape);
        let outcome = run_scenario(&scenario);
        let mut result = ScenarioResult {
            index,
            label: outcome.label.clone(),
            expected: scenario.expect_violation(),
            violated: outcome.violated(),
            events: outcome.history.len(),
            minimal_ops: None,
            removed: None,
            trace_file: None,
            minimal_file: None,
            explain_file: None,
            wall_ns: 0,
        };
        if outcome.violated() {
            let shrunk = shrink(outcome.kind, &outcome.history);
            result.minimal_ops = Some(shrunk.history.complete_operations().count());
            result.removed = Some(shrunk.removed);
            if let Some(dir) = &config.corpus_dir {
                let (full, minimal, explain) = corpus_files(dir, &scenario, &outcome, &shrunk)?;
                result.trace_file = Some(full);
                result.minimal_file = Some(minimal);
                result.explain_file = explain;
            }
        }
        result.wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        results.push(result);
    }
    Ok(FuzzReport {
        seed: config.seed,
        results,
        wall_ns: u64::try_from(sweep_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shrink::is_locally_minimal;

    #[test]
    fn quick_sweeps_catch_every_injected_fault_and_nothing_else() {
        let report = run_sweep(&FuzzConfig::quick(42)).unwrap();
        assert_eq!(report.results.len(), 24);
        assert!(
            report.caught() >= 1,
            "quick budget must include inject scenarios"
        );
        assert!(
            report.all_expected(),
            "missed {} / unexpected {}:\n{}",
            report.missed(),
            report.unexpected(),
            report.render()
        );
    }

    #[test]
    fn shrunk_witnesses_are_locally_minimal() {
        let report = run_sweep(&FuzzConfig::quick(7)).unwrap();
        let shape = SweepShape {
            processes: 3,
            ops_per_process: 12,
        };
        for result in report.results.iter().filter(|r| r.violated) {
            let scenario = Scenario::derive(7, result.index, shape);
            let outcome = run_scenario(&scenario);
            let shrunk = shrink(outcome.kind, &outcome.history);
            assert!(
                is_locally_minimal(outcome.kind, &shrunk.history),
                "scenario #{} not locally minimal",
                result.index
            );
            assert_eq!(
                Some(shrunk.history.complete_operations().count()),
                result.minimal_ops
            );
        }
    }

    #[test]
    fn reports_render_one_line_per_violation() {
        let report = run_sweep(&FuzzConfig::quick(3).with_scenarios(10)).unwrap();
        let rendered = report.render();
        assert!(rendered.starts_with("linrv fuzz: seed 3, 10 scenarios"));
        assert_eq!(
            rendered.matches("VIOLATION").count(),
            report.results.iter().filter(|r| r.violated).count()
        );
    }
}
