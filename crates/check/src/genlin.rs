//! The `GenLin` family of abstract objects (Definition 7.2).

use linrv_history::{similar, History};

/// An abstract object in the sense of Section 7.1: a set of well-formed finite
/// histories, represented by its membership predicate. The associated correctness
/// condition is membership itself.
///
/// # The `GenLin` closure contract
///
/// Implementations of this trait are expected to describe objects in the **GenLin**
/// family (Definition 7.2): the represented set of histories must be
///
/// 1. **prefix-closed** — if `F` is in the object, every prefix of `F` is too, and
/// 2. **similarity-closed** — if `F` is in the object, every history similar to `F`
///    (Definition 7.1) is too.
///
/// Lemma 7.1 shows linearizability with respect to any sequential object has both
/// closure properties; the same holds for set- and interval-linearizability. The
/// closure contract cannot be enforced by the compiler, so [`check_closure_on`] is
/// provided to exercise it on sample histories (used heavily by the property tests).
pub trait GenLinObject: Send + Sync {
    /// Membership: does `history` belong to the abstract object?
    ///
    /// Histories that are not well formed are never members.
    fn contains(&self, history: &History) -> bool;

    /// Human-readable description of the object (used in ERROR reports).
    fn description(&self) -> String;
}

impl<T: GenLinObject + ?Sized> GenLinObject for &T {
    fn contains(&self, history: &History) -> bool {
        (**self).contains(history)
    }

    fn description(&self) -> String {
        (**self).description()
    }
}

impl<T: GenLinObject + ?Sized> GenLinObject for std::sync::Arc<T> {
    fn contains(&self, history: &History) -> bool {
        (**self).contains(history)
    }

    fn description(&self) -> String {
        (**self).description()
    }
}

impl<T: GenLinObject + ?Sized> GenLinObject for Box<T> {
    fn contains(&self, history: &History) -> bool {
        (**self).contains(history)
    }

    fn description(&self) -> String {
        (**self).description()
    }
}

/// Outcome of exercising the GenLin closure properties on a sample history.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClosureReport {
    /// Lengths of prefixes of a member history that were (incorrectly) not members.
    pub prefix_violations: Vec<usize>,
    /// `true` when a history similar to a member history was (incorrectly) not a
    /// member. The offending pair is reported by the caller's test.
    pub similarity_violation: bool,
}

impl ClosureReport {
    /// Returns `true` when no violation was observed.
    pub fn is_clean(&self) -> bool {
        self.prefix_violations.is_empty() && !self.similarity_violation
    }
}

/// Exercises the prefix-closure half of the GenLin contract: if `history` is a member
/// of `object`, every prefix must be as well. Also exercises similarity closure for the
/// canonical "complete the pending operations as in `history` itself" witnesses when
/// `candidates` supplies alternative histories to compare against.
///
/// Returns a [`ClosureReport`] listing any violations. This is a *testing aid*, not a
/// proof: it can only refute closure, never establish it.
pub fn check_closure_on(
    object: &dyn GenLinObject,
    history: &History,
    candidates: &[History],
) -> ClosureReport {
    let mut report = ClosureReport::default();
    if !object.contains(history) {
        return report;
    }
    for (len, prefix) in history.prefixes().enumerate() {
        if !object.contains(&prefix) {
            report.prefix_violations.push(len);
        }
    }
    for candidate in candidates {
        if similar(candidate, history).is_some() && !object.contains(candidate) {
            report.similarity_violation = true;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, OpValue, Operation, ProcessId};

    /// The trivial abstract object containing every well-formed history.
    struct Anything;
    impl GenLinObject for Anything {
        fn contains(&self, history: &History) -> bool {
            history.is_well_formed()
        }
        fn description(&self) -> String {
            "any well-formed history".into()
        }
    }

    /// A deliberately non-prefix-closed object: only histories of even length.
    struct EvenLength;
    impl GenLinObject for EvenLength {
        fn contains(&self, history: &History) -> bool {
            history.is_well_formed() && history.len() % 2 == 0
        }
        fn description(&self) -> String {
            "even-length histories (not prefix closed)".into()
        }
    }

    fn sample() -> History {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(ProcessId::new(0), Operation::new("Push", OpValue::Int(1)));
        b.respond(a, OpValue::Bool(true));
        b.build()
    }

    #[test]
    fn trivially_closed_object_reports_clean() {
        let report = check_closure_on(&Anything, &sample(), &[]);
        assert!(report.is_clean());
    }

    #[test]
    fn prefix_violations_are_detected() {
        let report = check_closure_on(&EvenLength, &sample(), &[]);
        assert_eq!(report.prefix_violations, vec![1]);
        assert!(!report.is_clean());
    }

    #[test]
    fn non_member_histories_yield_empty_reports() {
        let mut b = HistoryBuilder::new();
        b.invoke(ProcessId::new(0), Operation::nullary("Pop"));
        let odd = b.build();
        let report = check_closure_on(&EvenLength, &odd, &[]);
        assert!(report.is_clean());
    }

    #[test]
    fn trait_objects_compose_through_smart_pointers() {
        let boxed: Box<dyn GenLinObject> = Box::new(Anything);
        assert!(boxed.contains(&sample()));
        let arc: std::sync::Arc<dyn GenLinObject> = std::sync::Arc::new(Anything);
        assert!(arc.contains(&sample()));
        assert_eq!(
            (&Anything as &dyn GenLinObject).description(),
            "any well-formed history"
        );
    }
}
