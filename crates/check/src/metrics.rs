//! Streaming-checker metrics: how often and how expensively the consumed
//! prefix is re-decided.
//!
//! The [`crate::stream`] cost model amortises the *schedule*, not the
//! per-check work — `linrv_check_recheck_ns` makes the actual per-recheck
//! cost visible on a live `linrv check` run, which is how the geometric
//! schedule's O(n log n) claim becomes observable instead of folklore.

use linrv_obs::{Counter, Histogram, MetricKind, Registry};
use std::sync::OnceLock;

const RECHECK_NS: &str = "linrv_check_recheck_ns";
const RECHECK_NS_HELP: &str = "full prefix re-decision latency per scheduled re-check, nanoseconds";
const RECHECKS: &str = "linrv_check_rechecks_total";
const RECHECKS_HELP: &str = "scheduled prefix re-decisions run (including the final one)";

/// Per-recheck latency histogram.
pub fn recheck_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(RECHECK_NS, RECHECK_NS_HELP))
}

/// Number of prefix re-decisions run.
pub fn rechecks_total() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(RECHECKS, RECHECKS_HELP))
}

/// Declares the checker families in the global registry so exports list
/// them even before any recording.
pub fn declare() {
    let registry = Registry::global();
    registry.declare(RECHECK_NS, MetricKind::Histogram, RECHECK_NS_HELP);
    registry.declare(RECHECKS, MetricKind::Counter, RECHECKS_HELP);
}
