//! Specialized FIFO-queue monitor for unambiguous histories.
//!
//! An unambiguous queue history (no value enqueued twice) has a *forced
//! matching*: each dequeued value belongs to exactly one enqueue. That makes
//! linearizability decidable in O(n log n) with the bad-pattern
//! characterisation of Lee & Mathur / Bouajjani et al.:
//!
//! 1. a value dequeued but never enqueued, or dequeued twice;
//! 2. a dequeue completing before its enqueue is invoked;
//! 3. a FIFO inversion forced by real time — `v` enqueued before `w` but
//!    dequeued after it (a never-dequeued `v` counts as "dequeued at ∞");
//! 4. an empty-dequeue whose entire window is covered by values that are
//!    necessarily inside the queue.
//!
//! When no pattern fires the monitor *constructs* a linearization — a FIFO
//! order of the values from a two-gate topological merge of the enqueue and
//! dequeue interval orders, interleaved by earliest effective deadline — and
//! validates it (`util::respects_precedence`). Only a validated witness
//! yields `Member`; if the greedy construction fails the monitor returns
//! `Fallback(Undecided)` rather than guessing.
//!
//! Pending operations are handled natively so the monitor stays useful on
//! streaming prefixes: a pending dequeue is a wildcard (it may consume any
//! value), so patterns that rely on a value being *never* dequeued are
//! disabled while one exists; a pending enqueue whose value is dequeued is
//! used as a matched enqueue with response time ∞; all other pending
//! operations are dropped, which the membership semantics permits.

use super::util::{respects_precedence, IntervalUnion, Span, INF};
use super::{BadPattern, FallbackReason, SpecializedResult};
use linrv_history::{History, OpValue};
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A value with its forced enqueue/dequeue pair (dequeue span `rs` is always
/// finite; the enqueue may be pending, `rs == INF`).
#[derive(Clone, Copy)]
struct Pair {
    enq: Span,
    deq: Span,
    value: i64,
}

pub(super) fn check(history: &History) -> SpecializedResult {
    let mut enqs: HashMap<i64, (Span, u32)> = HashMap::new();
    let mut deqs: HashMap<i64, (Span, u32)> = HashMap::new();
    let mut empties: Vec<Span> = Vec::new();
    // Minimum invocation index over pending dequeues; INF when none exist.
    let mut wildcard_iv = INF;

    for record in history.operations() {
        let span = Span::new(record.invocation_index, record.response_index);
        match record.operation.kind.as_str() {
            "Enqueue" => {
                if record.operation.arg.as_int().is_none() {
                    return SpecializedResult::Fallback(FallbackReason::Unsupported);
                }
                let value = record.operation.arg.as_int().expect("checked above");
                match &record.response {
                    None | Some(OpValue::Bool(true)) => {}
                    Some(other) => {
                        return SpecializedResult::NotMember(
                            BadPattern::new(
                                "bad-response",
                                format!(
                                    "Enqueue({value}) acknowledged with {other} instead of true"
                                ),
                            )
                            .with_values(vec![value]),
                        );
                    }
                }
                match enqs.entry(value) {
                    Entry::Vacant(slot) => {
                        slot.insert((span, 1));
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().1 += 1,
                }
            }
            "Dequeue" => match &record.response {
                None => wildcard_iv = wildcard_iv.min(span.iv),
                Some(OpValue::Int(value)) => match deqs.entry(*value) {
                    Entry::Vacant(slot) => {
                        slot.insert((span, 1));
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().1 += 1,
                },
                Some(OpValue::Empty) => empties.push(span),
                Some(other) => {
                    return SpecializedResult::NotMember(BadPattern::new(
                        "bad-response",
                        format!("Dequeue returned {other}, expected an integer or empty"),
                    ));
                }
            },
            other => {
                if record.response.is_some() {
                    return SpecializedResult::NotMember(BadPattern::new(
                        "bad-response",
                        format!("{other} is not a queue operation"),
                    ));
                }
                // A pending unknown invocation may be dropped.
            }
        }
    }

    // Ambiguity gate: a value enqueued twice breaks the forced matching.
    if enqs.values().any(|(_, count)| *count > 1) {
        return SpecializedResult::Fallback(FallbackReason::Ambiguous);
    }

    let mut matched: Vec<Pair> = Vec::with_capacity(deqs.len());
    for (&value, &(deq, count)) in &deqs {
        if count > 1 {
            // At most one enqueue of `value` exists, and an extension can only
            // add responses, never new enqueues.
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "duplicate-remove",
                    format!("value {value} dequeued {count} times"),
                )
                .with_values(vec![value]),
            );
        }
        let Some(&(enq, _)) = enqs.get(&value) else {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "never-added",
                    format!("value {value} dequeued but never enqueued"),
                )
                .with_values(vec![value]),
            );
        };
        if deq.precedes(&enq) {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "remove-before-add",
                    format!("value {value} dequeued before its enqueue was invoked"),
                )
                .with_values(vec![value]),
            );
        }
        matched.push(Pair { enq, deq, value });
    }
    // Values enqueued (completely) but never dequeued. Pending unmatched
    // enqueues are dropped: the completion is free not to take them.
    let mut unmatched: Vec<(Span, i64)> = enqs
        .iter()
        .filter(|(value, (span, _))| span.rs != INF && !deqs.contains_key(value))
        .map(|(&value, &(span, _))| (span, value))
        .collect();

    if let Some(pattern) = fifo_inversion(&matched, &unmatched, wildcard_iv) {
        return SpecializedResult::NotMember(pattern);
    }
    if let Some(pattern) = covered_empty_dequeue(&matched, &unmatched, &empties, wildcard_iv) {
        return SpecializedResult::NotMember(pattern);
    }

    // Constructive phase: FIFO value order, then a gap-anchored merge.
    let Some(order) = fifo_value_order(&matched) else {
        return SpecializedResult::Fallback(FallbackReason::Undecided);
    };
    unmatched.sort_unstable_by_key(|(span, _)| span.iv);
    let sequence = merge_schedule(&matched, &order, &unmatched, &empties);
    if respects_precedence(sequence) {
        SpecializedResult::Member
    } else {
        SpecializedResult::Fallback(FallbackReason::Undecided)
    }
}

/// Bad pattern 3: `v` enqueued before `w` (forced) yet dequeued after `w`
/// (forced). A `v` that is never dequeued counts with dequeue invocation ∞ —
/// but only when no pending dequeue could still consume it.
fn fifo_inversion(
    matched: &[Pair],
    unmatched: &[(Span, i64)],
    wildcard_iv: u32,
) -> Option<BadPattern> {
    // Role v: contributes (rs of enqueue, iv of dequeue).
    let mut first: Vec<(u32, u32, i64)> = matched
        .iter()
        .filter(|p| p.enq.rs != INF)
        .map(|p| (p.enq.rs, p.deq.iv, p.value))
        .collect();
    if wildcard_iv == INF {
        first.extend(unmatched.iter().map(|&(span, value)| (span.rs, INF, value)));
    }
    first.sort_unstable();
    // Role w: consumes (iv of enqueue, rs of dequeue).
    let mut second: Vec<(u32, u32, i64)> = matched
        .iter()
        .map(|p| (p.enq.iv, p.deq.rs, p.value))
        .collect();
    second.sort_unstable();

    let mut cursor = 0;
    // Running maximum of dequeue invocations among values whose enqueue is
    // forced before the current `w`'s enqueue.
    let mut latest_deq = 0u32;
    let mut latest_value = 0i64;
    for &(enq_iv, deq_rs, w) in &second {
        while cursor < first.len() && first[cursor].0 < enq_iv {
            if first[cursor].1 > latest_deq {
                latest_deq = first[cursor].1;
                latest_value = first[cursor].2;
            }
            cursor += 1;
        }
        if latest_deq > deq_rs {
            let tail = if latest_deq == INF {
                "never dequeued".to_string()
            } else {
                format!("dequeued after {w}")
            };
            return Some(
                BadPattern::new(
                    "order-inversion",
                    format!("FIFO inversion: {latest_value} enqueued before {w} but {tail}"),
                )
                .with_values(vec![latest_value, w]),
            );
        }
    }
    None
}

/// Bad pattern 4: an empty-dequeue whose whole window is covered by values
/// necessarily inside the queue.
fn covered_empty_dequeue(
    matched: &[Pair],
    unmatched: &[(Span, i64)],
    empties: &[Span],
    wildcard_iv: u32,
) -> Option<BadPattern> {
    if empties.is_empty() {
        return None;
    }
    // `v` necessarily occupies the gaps [rs(enq), iv(deq) - 1] (gap `g` is
    // the space between event indices g and g+1). An unmatched value occupies
    // [rs(enq), ∞) unless a pending dequeue could consume it, in which case
    // occupancy is only forced up to that dequeue's invocation.
    let mut occupied: Vec<(u32, u32)> = matched
        .iter()
        .filter(|p| p.enq.rs != INF && p.deq.iv > 0)
        .map(|p| (p.enq.rs, p.deq.iv - 1))
        .collect();
    occupied.extend(
        unmatched
            .iter()
            .filter(|(_, _)| wildcard_iv > 0)
            .map(|&(span, _)| (span.rs, wildcard_iv.saturating_sub(1))),
    );
    let union = IntervalUnion::new(occupied);
    for span in empties {
        if union.covers(span.iv, span.rs - 1) {
            return Some(BadPattern::new(
                "covered-empty",
                "a dequeue observed an empty queue inside a window where the queue \
                 is necessarily non-empty",
            ));
        }
    }
    None
}

/// Two-gate Kahn topological sort producing a FIFO value order that extends
/// both the enqueue and the dequeue real-time interval orders.
///
/// A value is emitted once it is minimal in *both* orders among the values
/// not yet emitted: its enqueue invocation precedes every remaining enqueue
/// response, and likewise for dequeues. Both minima only grow as values are
/// emitted, so eligibility is monotone and the whole sort is O(n log n).
/// Returns `None` if the two orders have no common extension the greedy can
/// find (callers fall back to the general search).
fn fifo_value_order(matched: &[Pair]) -> Option<Vec<usize>> {
    let n = matched.len();
    let mut by_enq_iv: Vec<usize> = (0..n).collect();
    by_enq_iv.sort_unstable_by_key(|&i| matched[i].enq.iv);
    let mut by_deq_iv: Vec<usize> = (0..n).collect();
    by_deq_iv.sort_unstable_by_key(|&i| matched[i].deq.iv);
    let mut enq_rs: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = (0..n)
        .map(|i| std::cmp::Reverse((matched[i].enq.rs, i)))
        .collect();
    let mut deq_rs: BinaryHeap<std::cmp::Reverse<(u32, usize)>> = (0..n)
        .map(|i| std::cmp::Reverse((matched[i].deq.rs, i)))
        .collect();
    let mut gates = vec![0u8; n];
    let mut emitted = vec![false; n];
    let mut ready: VecDeque<usize> = VecDeque::new();
    let (mut epos, mut dpos) = (0usize, 0usize);
    let mut order = Vec::with_capacity(n);

    while order.len() < n {
        loop {
            while enq_rs
                .peek()
                .is_some_and(|std::cmp::Reverse((_, i))| emitted[*i])
            {
                enq_rs.pop();
            }
            while deq_rs
                .peek()
                .is_some_and(|std::cmp::Reverse((_, i))| emitted[*i])
            {
                deq_rs.pop();
            }
            let min_enq_rs = enq_rs.peek().map_or(INF, |std::cmp::Reverse((rs, _))| *rs);
            let min_deq_rs = deq_rs.peek().map_or(INF, |std::cmp::Reverse((rs, _))| *rs);
            let mut advanced = false;
            while epos < n && matched[by_enq_iv[epos]].enq.iv < min_enq_rs {
                let i = by_enq_iv[epos];
                epos += 1;
                advanced = true;
                if !emitted[i] {
                    gates[i] |= 1;
                    if gates[i] == 3 {
                        ready.push_back(i);
                    }
                }
            }
            while dpos < n && matched[by_deq_iv[dpos]].deq.iv < min_deq_rs {
                let i = by_deq_iv[dpos];
                dpos += 1;
                advanced = true;
                if !emitted[i] {
                    gates[i] |= 2;
                    if gates[i] == 3 {
                        ready.push_back(i);
                    }
                }
            }
            if !advanced {
                break;
            }
        }
        let i = ready.pop_front()?;
        emitted[i] = true;
        order.push(i);
    }
    Some(order)
}

/// Merges the enqueue chain (matched values in FIFO order, then unmatched
/// ones), the dequeue chain and the empty-dequeues into one sequence.
///
/// Empty-dequeues are anchored first: the simulated queue is empty exactly at
/// the *gaps* of the pair sequence (after the first `g` values have been both
/// enqueued and dequeued, before value `g + 1` is enqueued), and an
/// empty-dequeue must precede the first pair whose enqueue or dequeue is
/// invoked after the empty's response. Each empty is therefore assigned that
/// latest feasible gap up front, and the enqueue cursor is barred from
/// crossing a gap that still holds empties — a plain cross-class deadline
/// race would happily start the next enqueue and lock the empty out until
/// the matching dequeue, which may already be invoked too late. Between
/// barriers the two chains interleave by earliest *effective* deadline (each
/// chain position inherits the tightest deadline among its successors,
/// Lawler-style). The sequence replays correctly by construction; only
/// real-time precedence remains to be validated by the caller.
fn merge_schedule(
    matched: &[Pair],
    order: &[usize],
    unmatched: &[(Span, i64)],
    empties: &[Span],
) -> Vec<Span> {
    let pairs = order.len();
    let enq_total = pairs + unmatched.len();
    let enq_span = |pos: usize| -> Span {
        if pos < pairs {
            matched[order[pos]].enq
        } else {
            unmatched[pos - pairs].0
        }
    };

    let mut deq_deadline = vec![INF; pairs.max(1)];
    for j in (0..pairs).rev() {
        let next = if j + 1 < pairs {
            deq_deadline[j + 1]
        } else {
            INF
        };
        deq_deadline[j] = matched[order[j]].deq.rs.min(next);
    }
    let mut enq_deadline = vec![INF; enq_total.max(1)];
    for j in (0..enq_total).rev() {
        let next = if j + 1 < enq_total {
            enq_deadline[j + 1]
        } else {
            INF
        };
        let mut deadline = enq_span(j).rs.min(next);
        if j < pairs {
            deadline = deadline.min(deq_deadline[j]);
        }
        enq_deadline[j] = deadline;
    }

    // Gap assignment. An empty at gap `g` is feasible iff every pair before
    // the gap is invoked before the empty responds (`pm[g] <= rs`, upper
    // bound K) and every pair from the gap on — and every unmatched enqueue
    // — responds after the empty is invoked (`sm[g] >= iv`, lower bound L).
    // Occupying a gap also serializes the chains around it (the barrier
    // below), which is only realizable when `sm[g] >= pm[g]`. Within [L, K]
    // the *earliest* serializable gap is chosen: a witness linearization
    // places the empty at some serializable gap in [L, K], and the earliest
    // one is never later than the witness's, so it inherits feasibility.
    // Both bound arrays are monotone, so each empty costs two binary
    // searches. Sorting by (gap, response) keeps consecutive empties
    // mutually realizable: an empty never precedes one that responds before
    // its own invocation.
    let mut pm = vec![0u32; pairs + 1];
    for g in 1..=pairs {
        let pair = matched[order[g - 1]];
        pm[g] = pm[g - 1].max(pair.enq.iv).max(pair.deq.iv);
    }
    let mut sm = vec![INF; pairs + 1];
    sm[pairs] = unmatched.iter().map(|&(s, _)| s.rs).min().unwrap_or(INF);
    for g in (0..pairs).rev() {
        let pair = matched[order[g]];
        sm[g] = sm[g + 1].min(pair.enq.rs).min(pair.deq.rs);
    }
    let mut next_serializable = vec![usize::MAX; pairs + 2];
    for g in (0..=pairs).rev() {
        next_serializable[g] = if sm[g] >= pm[g] {
            g
        } else {
            next_serializable[g + 1]
        };
    }
    let mut empties: Vec<(usize, Span)> = empties
        .iter()
        .map(|&span| {
            let l = sm.partition_point(|&rs| rs < span.iv);
            // `pm[0] == 0 <= span.rs`, so the partition point is >= 1.
            let k = pm.partition_point(|&iv| iv <= span.rs) - 1;
            // When no serializable gap fits in [L, K] the empty is emitted at
            // K anyway; the caller's validation rejects the sequence and the
            // monitor falls back instead of guessing.
            (next_serializable[l].min(k), span)
        })
        .collect();
    empties.sort_unstable_by_key(|&(gap, span)| (gap, span.rs));

    let mut sequence = Vec::with_capacity(enq_total + pairs + empties.len());
    let (mut e, mut d, mut x) = (0usize, 0usize, 0usize);
    while e < enq_total || d < pairs || x < empties.len() {
        let next_gap = empties.get(x).map_or(usize::MAX, |&(gap, _)| gap);
        if e == d && e == next_gap {
            sequence.push(empties[x].1);
            x += 1;
            continue;
        }
        let deq_ok = d < pairs && d < e;
        // The barrier: `e` stops at the next occupied gap (this also holds
        // unmatched enqueues, whose chain positions are `>= pairs`, behind
        // every remaining empty).
        let enq_ok = e < enq_total && e < next_gap;
        if deq_ok && (!enq_ok || deq_deadline[d] <= enq_deadline[e]) {
            sequence.push(matched[order[d]].deq);
            d += 1;
        } else {
            // Progress is guaranteed: while empties remain, `e <= next_gap
            // <= pairs`, so the only stuck shape would be `e == d ==
            // next_gap` — the empty branch above.
            debug_assert!(enq_ok);
            sequence.push(enq_span(e));
            e += 1;
        }
    }
    sequence
}

#[cfg(test)]
mod tests {
    use super::super::{check_specialized, FallbackReason, SpecializedResult};
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::queue as ops;
    use linrv_spec::ObjectKind;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(b: HistoryBuilder) -> SpecializedResult {
        check_specialized(ObjectKind::Queue, &b.build())
    }

    #[test]
    fn sequential_fifo_history_is_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(1), OpValue::Bool(true));
        b.complete(p(0), ops::enqueue(2), OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Int(1));
        b.complete(p(0), ops::dequeue(), OpValue::Int(2));
        b.complete(p(0), ops::dequeue(), OpValue::Empty);
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn overlapping_enqueue_and_dequeue_are_member() {
        // Figure 5 (bottom): enq(1) and deq():1 overlap.
        let mut b = HistoryBuilder::new();
        let enq = b.invoke(p(0), ops::enqueue(1));
        let deq = b.invoke(p(1), ops::dequeue());
        b.respond(deq, OpValue::Int(1));
        b.respond(enq, OpValue::Bool(true));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn pending_enqueue_explains_a_completed_dequeue() {
        let mut b = HistoryBuilder::new();
        let _enq = b.invoke(p(0), ops::enqueue(7));
        let deq = b.invoke(p(1), ops::dequeue());
        b.respond(deq, OpValue::Int(7));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn dequeue_of_never_enqueued_value_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::dequeue(), OpValue::Int(41));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "never-added");
        assert_eq!(pattern.values, [41]);
        assert!(pattern.message.contains("never enqueued"));
    }

    #[test]
    fn double_dequeue_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(5), OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Int(5));
        b.complete(p(1), ops::dequeue(), OpValue::Int(5));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn forced_fifo_inversion_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(1), OpValue::Bool(true));
        b.complete(p(0), ops::enqueue(2), OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Int(2));
        b.complete(p(0), ops::dequeue(), OpValue::Int(1));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "order-inversion");
        assert!(pattern.message.contains("FIFO inversion"), "{pattern}");
    }

    #[test]
    fn never_dequeued_value_blocking_a_later_one_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(1), OpValue::Bool(true));
        b.complete(p(0), ops::enqueue(2), OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Int(2));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn a_pending_dequeue_excuses_the_blocked_value() {
        // Same as above, but a pending Dequeue may still consume value 1.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(1), OpValue::Bool(true));
        b.complete(p(0), ops::enqueue(2), OpValue::Bool(true));
        let _pending = b.invoke(p(1), ops::dequeue());
        b.complete(p(0), ops::dequeue(), OpValue::Int(2));
        let result = run(b);
        assert!(
            !matches!(result, SpecializedResult::NotMember(_)),
            "{result:?}"
        );
    }

    #[test]
    fn empty_dequeue_in_a_covered_window_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(1), OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Empty);
        b.complete(p(0), ops::dequeue(), OpValue::Int(1));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "covered-empty");
        assert!(pattern.message.contains("empty"), "{pattern}");
    }

    #[test]
    fn concurrent_empty_dequeue_is_member() {
        // The empty dequeue overlaps the enqueue: it may linearize first.
        let mut b = HistoryBuilder::new();
        let enq = b.invoke(p(0), ops::enqueue(1));
        let deq = b.invoke(p(1), ops::dequeue());
        b.respond(deq, OpValue::Empty);
        b.respond(enq, OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Int(1));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn duplicate_enqueues_force_fallback() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(3), OpValue::Bool(true));
        b.complete(p(0), ops::enqueue(3), OpValue::Bool(true));
        b.complete(p(0), ops::dequeue(), OpValue::Int(3));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Ambiguous)
        );
    }

    #[test]
    fn wrong_response_shapes_are_violations() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::enqueue(1), OpValue::Bool(false));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));

        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::dequeue(), OpValue::Bool(true));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));

        let mut b = HistoryBuilder::new();
        b.complete(p(0), linrv_spec::ops::stack::pop(), OpValue::Empty);
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn empty_history_is_member() {
        assert_eq!(run(HistoryBuilder::new()), SpecializedResult::Member);
    }
}
