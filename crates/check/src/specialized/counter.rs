//! Specialized fetch-and-increment counter monitor for complete histories.
//!
//! The counter is fully deterministic: `k` increments must return exactly the
//! values `0..k-1` (each once), which fixes the increments' relative order,
//! and a read returning `r` must sit between the `r`-th and `(r+1)`-th
//! increment. Sound bad patterns are the counting violations (duplicate or
//! out-of-range increment results, a read outside `0..=k`). The only
//! remaining freedom is where reads with equal results go relative to each
//! other, which invocation order settles, so a single validated construction
//! decides everything else. Pending operations fall back.

use super::util::{respects_precedence, Span};
use super::{BadPattern, FallbackReason, SpecializedResult};
use linrv_history::{History, OpValue};

pub(super) fn check(history: &History) -> SpecializedResult {
    if history.pending_operations().next().is_some() {
        return SpecializedResult::Fallback(FallbackReason::Pending);
    }
    let mut incs: Vec<(i64, Span)> = Vec::new();
    let mut reads: Vec<(i64, Span)> = Vec::new();
    for record in history.operations() {
        let span = Span::new(record.invocation_index, record.response_index);
        let kind = record.operation.kind.as_str();
        if !matches!(kind, "Inc" | "Read") {
            return SpecializedResult::NotMember(BadPattern::new(
                "bad-response",
                format!("{kind} is not a counter operation"),
            ));
        }
        match &record.response {
            Some(OpValue::Int(value)) => {
                if kind == "Inc" {
                    incs.push((*value, span));
                } else {
                    reads.push((*value, span));
                }
            }
            Some(other) => {
                return SpecializedResult::NotMember(BadPattern::new(
                    "bad-response",
                    format!("{kind} returned {other}, expected an integer"),
                ));
            }
            None => unreachable!("pending operations force a fallback above"),
        }
    }

    // The k increment results must be a permutation of 0..k-1.
    let k = incs.len() as i64;
    incs.sort_unstable_by_key(|&(value, _)| value);
    for (expected, &(value, _)) in incs.iter().enumerate() {
        if value != expected as i64 {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "count-mismatch",
                    format!(
                        "{k} increments must return each value in 0..{k} exactly once; \
                 saw {value} where {expected} was required"
                    ),
                )
                .with_values(vec![value]),
            );
        }
    }
    for &(value, _) in &reads {
        if !(0..=k).contains(&value) {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "count-mismatch",
                    format!("Read returned {value}, impossible with {k} increments"),
                )
                .with_values(vec![value]),
            );
        }
    }

    // Construction: [reads 0] inc0 [reads 1] inc1 … inc(k-1) [reads k], reads
    // within one window sorted by invocation.
    reads.sort_unstable_by_key(|&(value, span)| (value, span.iv));
    let mut sequence: Vec<Span> = Vec::with_capacity(incs.len() + reads.len());
    let mut next_read = 0;
    for (window, &(_, inc)) in incs.iter().enumerate() {
        while next_read < reads.len() && reads[next_read].0 == window as i64 {
            sequence.push(reads[next_read].1);
            next_read += 1;
        }
        sequence.push(inc);
    }
    sequence.extend(reads[next_read..].iter().map(|&(_, span)| span));

    if respects_precedence(sequence) {
        SpecializedResult::Member
    } else {
        SpecializedResult::Fallback(FallbackReason::Undecided)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_specialized, FallbackReason, SpecializedResult};
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::counter as ops;
    use linrv_spec::ObjectKind;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(b: HistoryBuilder) -> SpecializedResult {
        check_specialized(ObjectKind::Counter, &b.build())
    }

    #[test]
    fn fetch_and_increment_run_is_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::read(), OpValue::Int(0));
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        b.complete(p(1), ops::inc(), OpValue::Int(1));
        b.complete(p(0), ops::read(), OpValue::Int(2));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn concurrent_increments_take_either_ticket() {
        let mut b = HistoryBuilder::new();
        let i0 = b.invoke(p(0), ops::inc());
        let i1 = b.invoke(p(1), ops::inc());
        b.respond(i1, OpValue::Int(0));
        b.respond(i0, OpValue::Int(1));
        b.complete(p(2), ops::read(), OpValue::Int(2));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn duplicate_increment_results_are_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn read_larger_than_increment_count_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        b.complete(p(0), ops::read(), OpValue::Int(2));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn stale_read_after_increment_falls_back_undecided() {
        // Read of 0 strictly after the increment completed: no counting
        // pattern fires, but no realizable order exists either.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        b.complete(p(0), ops::read(), OpValue::Int(0));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Undecided)
        );
    }

    #[test]
    fn pending_operations_fall_back() {
        let mut b = HistoryBuilder::new();
        b.invoke(p(0), ops::inc());
        assert_eq!(run(b), SpecializedResult::Fallback(FallbackReason::Pending));
    }
}
