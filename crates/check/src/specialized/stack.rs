//! Specialized LIFO-stack monitor for unambiguous, complete histories.
//!
//! In a linearization of a stack history, value lifetimes (push point to pop
//! point) must form a *laminar* family: any two are nested or disjoint. The
//! sound bad patterns are forced crossings — `v`'s lifetime forced to start
//! before `w`'s and end inside it — plus the matching errors and the covered
//! empty-pop shared with the queue monitor. The constructive phase simulates
//! a stack, pushing and popping by earliest deadline, and validates the
//! emitted order; an unvalidated construction falls back to the general
//! search. Pending operations are not handled here (fallback).

use super::util::{compress, respects_precedence, IntervalUnion, PrefixMax, Span, INF};
use super::{BadPattern, FallbackReason, SpecializedResult};
use linrv_history::{History, OpValue};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

#[derive(Clone, Copy)]
struct Pair {
    push: Span,
    pop: Span,
    value: i64,
}

pub(super) fn check(history: &History) -> SpecializedResult {
    if history.pending_operations().next().is_some() {
        return SpecializedResult::Fallback(FallbackReason::Pending);
    }
    let mut pushes: HashMap<i64, (Span, u32)> = HashMap::new();
    let mut pops: HashMap<i64, (Span, u32)> = HashMap::new();
    let mut empties: Vec<Span> = Vec::new();

    for record in history.operations() {
        let span = Span::new(record.invocation_index, record.response_index);
        match record.operation.kind.as_str() {
            "Push" => {
                let Some(value) = record.operation.arg.as_int() else {
                    return SpecializedResult::Fallback(FallbackReason::Unsupported);
                };
                match &record.response {
                    Some(OpValue::Bool(true)) => {}
                    Some(other) => {
                        return SpecializedResult::NotMember(
                            BadPattern::new(
                                "bad-response",
                                format!("Push({value}) acknowledged with {other} instead of true"),
                            )
                            .with_values(vec![value]),
                        );
                    }
                    None => unreachable!("pending operations force a fallback above"),
                }
                match pushes.entry(value) {
                    Entry::Vacant(slot) => {
                        slot.insert((span, 1));
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().1 += 1,
                }
            }
            "Pop" => match &record.response {
                Some(OpValue::Int(value)) => match pops.entry(*value) {
                    Entry::Vacant(slot) => {
                        slot.insert((span, 1));
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().1 += 1,
                },
                Some(OpValue::Empty) => empties.push(span),
                Some(other) => {
                    return SpecializedResult::NotMember(BadPattern::new(
                        "bad-response",
                        format!("Pop returned {other}, expected an integer or empty"),
                    ));
                }
                None => unreachable!("pending operations force a fallback above"),
            },
            other => {
                return SpecializedResult::NotMember(BadPattern::new(
                    "bad-response",
                    format!("{other} is not a stack operation"),
                ));
            }
        }
    }

    if pushes.values().any(|(_, count)| *count > 1) {
        return SpecializedResult::Fallback(FallbackReason::Ambiguous);
    }

    let mut matched: Vec<Pair> = Vec::with_capacity(pops.len());
    for (&value, &(pop, count)) in &pops {
        if count > 1 {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "duplicate-remove",
                    format!("value {value} popped {count} times"),
                )
                .with_values(vec![value]),
            );
        }
        let Some(&(push, _)) = pushes.get(&value) else {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "never-added",
                    format!("value {value} popped but never pushed"),
                )
                .with_values(vec![value]),
            );
        };
        if pop.precedes(&push) {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "remove-before-add",
                    format!("value {value} popped before its push was invoked"),
                )
                .with_values(vec![value]),
            );
        }
        matched.push(Pair { push, pop, value });
    }
    let unmatched: Vec<(Span, i64)> = pushes
        .iter()
        .filter(|(value, _)| !pops.contains_key(value))
        .map(|(&value, &(span, _))| (span, value))
        .collect();

    if let Some(pattern) = forced_crossing(&matched, &unmatched) {
        return SpecializedResult::NotMember(pattern);
    }
    if let Some(pattern) = covered_empty_pop(&matched, &unmatched, &empties) {
        return SpecializedResult::NotMember(pattern);
    }

    if simulate(&matched, &unmatched, &empties) {
        SpecializedResult::Member
    } else {
        SpecializedResult::Fallback(FallbackReason::Undecided)
    }
}

/// Forced lifetime crossings.
///
/// Matched `v`, `w`: `v`'s lifetime is forced to start before `w`'s
/// (`rs(push v) < iv(push w)`), end before `w`'s (`rs(pop v) < iv(pop w)`),
/// yet overlap it (`rs(push w) < iv(pop v)`) — nested-or-disjoint is
/// impossible. With `v` unmatched (lifetime unbounded): `w` forced to start
/// before `v` and `v` forced to start before `w` ends.
fn forced_crossing(matched: &[Pair], unmatched: &[(Span, i64)]) -> Option<BadPattern> {
    // Matched/matched: sweep w by push invocation; v's enter once their push
    // response is passed; Fenwick prefix-max over rs(pop v) answers
    // "among entered v with rs(pop v) < iv(pop w), the latest iv(pop v)".
    let pop_rs = compress(matched.iter().map(|p| p.pop.rs).collect());
    let mut tree = PrefixMax::new(pop_rs.len());
    let mut by_push_rs: Vec<&Pair> = matched.iter().collect();
    by_push_rs.sort_unstable_by_key(|p| p.push.rs);
    let mut by_push_iv: Vec<&Pair> = matched.iter().collect();
    by_push_iv.sort_unstable_by_key(|p| p.push.iv);
    let mut cursor = 0;
    for w in &by_push_iv {
        while cursor < by_push_rs.len() && by_push_rs[cursor].push.rs < w.push.iv {
            let v = by_push_rs[cursor];
            let rank = pop_rs.binary_search(&v.pop.rs).expect("compressed");
            tree.update(rank, v.pop.iv);
            cursor += 1;
        }
        // Entered v with rs(pop v) < iv(pop w):
        let prefix = pop_rs.partition_point(|&rs| rs < w.pop.iv);
        if prefix > 0 && tree.query(prefix - 1) > w.push.rs {
            return Some(
                BadPattern::new(
                    "order-inversion",
                    format!(
                        "LIFO crossing: {}'s lifetime is forced to cross another value's \
                 (neither nested nor disjoint)",
                        w.value
                    ),
                )
                .with_values(vec![w.value]),
            );
        }
    }

    // Unmatched v / matched w: running max of iv(pop w) over w's whose push
    // completed before v's push invocation.
    let mut v_by_push_iv: Vec<&(Span, i64)> = unmatched.iter().collect();
    v_by_push_iv.sort_unstable_by_key(|(span, _)| span.iv);
    let mut w_by_push_rs: Vec<&Pair> = matched.iter().collect();
    w_by_push_rs.sort_unstable_by_key(|p| p.push.rs);
    let mut cursor = 0;
    let mut latest_pop_iv = 0u32;
    for &&(v, value) in &v_by_push_iv {
        while cursor < w_by_push_rs.len() && w_by_push_rs[cursor].push.rs < v.iv {
            latest_pop_iv = latest_pop_iv.max(w_by_push_rs[cursor].pop.iv);
            cursor += 1;
        }
        if latest_pop_iv > v.rs {
            return Some(
                BadPattern::new(
                    "order-inversion",
                    format!(
                        "LIFO crossing: the never-popped value {value} is forced to be pushed \
                 inside another value's lifetime and outlive it"
                    ),
                )
                .with_values(vec![value]),
            );
        }
    }
    None
}

/// An empty-pop whose whole window is covered by values necessarily on the
/// stack (same gap semantics as the queue's covered empty-dequeue).
fn covered_empty_pop(
    matched: &[Pair],
    unmatched: &[(Span, i64)],
    empties: &[Span],
) -> Option<BadPattern> {
    if empties.is_empty() {
        return None;
    }
    let mut occupied: Vec<(u32, u32)> = matched
        .iter()
        .filter(|p| p.pop.iv > 0)
        .map(|p| (p.push.rs, p.pop.iv - 1))
        .collect();
    occupied.extend(unmatched.iter().map(|&(span, _)| (span.rs, INF)));
    let union = IntervalUnion::new(occupied);
    for span in empties {
        if union.covers(span.iv, span.rs - 1) {
            return Some(BadPattern::new(
                "covered-empty",
                "a pop observed an empty stack inside a window where the stack \
                 is necessarily non-empty",
            ));
        }
    }
    None
}

/// Constructive phase: simulate a stack, acting by earliest deadline.
///
/// At each step the most urgent *kind* of action wins: popping down to the
/// on-stack value whose pop response is nearest, pushing (forced when the
/// nearest push response among unpushed values approaches), or serving an
/// empty-pop (which requires draining the stack). When a push is forced, the
/// value actually pushed is chosen LIFO-aware: among the values whose push
/// invocation precedes the forcing deadline (so pushing them now cannot be
/// premature), the one popped *last* goes down first — never-popped values
/// count as popped at ∞ and sink to the bottom. Matched values are never left
/// below an unmatched one (they could never be popped), so pushing an
/// unmatched value first drains the matched ones above.
///
/// The emitted order replays correctly by construction; it is a linearization
/// iff it also respects real-time precedence, which the caller checks.
/// Returns `false` when the greedy gets stuck or validation fails.
fn simulate(matched: &[Pair], unmatched: &[(Span, i64)], empties: &[Span]) -> bool {
    #[derive(Clone, Copy)]
    enum Slot {
        Matched(usize),
        Unmatched,
    }

    // Unpushed values, unified id space: matched `i` = `i`, unmatched `i` =
    // `matched.len() + i`.
    let push_span = |id: usize| -> Span {
        if id < matched.len() {
            matched[id].push
        } else {
            unmatched[id - matched.len()].0
        }
    };
    let pop_deadline_key = |id: usize| -> u32 {
        if id < matched.len() {
            matched[id].pop.rs
        } else {
            INF
        }
    };
    let total_values = matched.len() + unmatched.len();
    let mut pushed = vec![false; total_values];
    // Forcing deadline: min push response over unpushed values (lazy heap).
    let mut push_rs: BinaryHeap<Reverse<(u32, usize)>> = (0..total_values)
        .map(|id| Reverse((push_span(id).rs, id)))
        .collect();
    // Values unlocked for pushing (push invocation before the current forcing
    // deadline), max-heap by pop deadline: the longest-lived goes down first.
    let mut by_push_iv: Vec<usize> = (0..total_values).collect();
    by_push_iv.sort_unstable_by_key(|&id| push_span(id).iv);
    let mut unlock_cursor = 0;
    let mut unlocked: BinaryHeap<(u32, usize)> = BinaryHeap::new();

    let mut empties: Vec<Span> = empties.to_vec();
    empties.sort_unstable_by_key(|span| span.rs);
    let mut next_empty = 0;

    let mut stack: Vec<Slot> = Vec::new();
    // Pop deadlines of matched values currently on the stack (lazy deletion).
    let mut on_stack_pops: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    let mut on_stack = vec![false; matched.len()];
    let mut sequence: Vec<Span> =
        Vec::with_capacity(2 * matched.len() + unmatched.len() + empties.len());

    // Pops the top of the stack down to and including matched value `target`;
    // `None` pops every matched value on top. Returns false on an unmatched
    // blocker (only reachable defensively: unmatched values stay below).
    let pop_down = |stack: &mut Vec<Slot>,
                    on_stack: &mut Vec<bool>,
                    sequence: &mut Vec<Span>,
                    target: Option<usize>|
     -> bool {
        while let Some(&slot) = stack.last() {
            match slot {
                Slot::Unmatched => return target.is_none(),
                Slot::Matched(j) => {
                    stack.pop();
                    on_stack[j] = false;
                    sequence.push(matched[j].pop);
                    if target == Some(j) {
                        return true;
                    }
                }
            }
        }
        target.is_none()
    };

    loop {
        while on_stack_pops
            .peek()
            .is_some_and(|Reverse((_, j))| !on_stack[*j])
        {
            on_stack_pops.pop();
        }
        while push_rs.peek().is_some_and(|Reverse((_, id))| pushed[*id]) {
            push_rs.pop();
        }
        let forcing = push_rs.peek().map(|&Reverse((rs, _))| rs);
        if let Some(forcing) = forcing {
            while unlock_cursor < total_values && push_span(by_push_iv[unlock_cursor]).iv < forcing
            {
                let id = by_push_iv[unlock_cursor];
                unlock_cursor += 1;
                if !pushed[id] {
                    unlocked.push((pop_deadline_key(id), id));
                }
            }
        }
        // (deadline, class): pop < push < empty-pop on ties.
        let mut best: Option<(u32, u8)> = None;
        if let Some(&Reverse((rs, _))) = on_stack_pops.peek() {
            best = Some((rs, 0));
        }
        if let Some(forcing) = forcing {
            let candidate = (forcing, 1);
            if best.map_or(true, |b| candidate < b) {
                best = Some(candidate);
            }
        }
        if next_empty < empties.len() {
            let candidate = (empties[next_empty].rs, 2);
            if best.map_or(true, |b| candidate < b) {
                best = Some(candidate);
            }
        }
        match best {
            Some((_, 0)) => {
                let Reverse((_, j)) = on_stack_pops.pop().expect("peeked above");
                if !pop_down(&mut stack, &mut on_stack, &mut sequence, Some(j)) {
                    return false;
                }
            }
            Some((_, 1)) => {
                let id = loop {
                    // The deadline holder's own invocation precedes its
                    // response, so it is unlocked: the heap cannot run dry.
                    let Some((_, id)) = unlocked.pop() else {
                        return false;
                    };
                    if !pushed[id] {
                        break id;
                    }
                };
                pushed[id] = true;
                if id < matched.len() {
                    stack.push(Slot::Matched(id));
                    on_stack[id] = true;
                    on_stack_pops.push(Reverse((matched[id].pop.rs, id)));
                } else {
                    // Matched values must not end up below this never-popped
                    // one: drain them first.
                    if !pop_down(&mut stack, &mut on_stack, &mut sequence, None) {
                        return false;
                    }
                    stack.push(Slot::Unmatched);
                }
                sequence.push(push_span(id));
            }
            Some((_, 2)) => {
                if !pop_down(&mut stack, &mut on_stack, &mut sequence, None) {
                    return false;
                }
                if !stack.is_empty() {
                    // Unmatched values remain: the stack can never drain.
                    return false;
                }
                sequence.push(empties[next_empty]);
                next_empty += 1;
            }
            _ => break,
        }
    }
    respects_precedence(sequence)
}

#[cfg(test)]
mod tests {
    use super::super::{check_specialized, FallbackReason, SpecializedResult};
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::stack as ops;
    use linrv_spec::ObjectKind;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(b: HistoryBuilder) -> SpecializedResult {
        check_specialized(ObjectKind::Stack, &b.build())
    }

    #[test]
    fn sequential_lifo_history_is_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::push(1), OpValue::Bool(true));
        b.complete(p(0), ops::push(2), OpValue::Bool(true));
        b.complete(p(0), ops::pop(), OpValue::Int(2));
        b.complete(p(0), ops::pop(), OpValue::Int(1));
        b.complete(p(0), ops::pop(), OpValue::Empty);
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn fifo_order_on_a_stack_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::push(1), OpValue::Bool(true));
        b.complete(p(0), ops::push(2), OpValue::Bool(true));
        b.complete(p(0), ops::pop(), OpValue::Int(1));
        b.complete(p(0), ops::pop(), OpValue::Int(2));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "order-inversion");
        assert!(pattern.message.contains("crossing"), "{pattern}");
    }

    #[test]
    fn overlapping_pushes_may_pop_in_either_order() {
        let mut b = HistoryBuilder::new();
        let push1 = b.invoke(p(0), ops::push(1));
        let push2 = b.invoke(p(1), ops::push(2));
        b.respond(push1, OpValue::Bool(true));
        b.respond(push2, OpValue::Bool(true));
        b.complete(p(0), ops::pop(), OpValue::Int(1));
        b.complete(p(0), ops::pop(), OpValue::Int(2));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn pop_of_never_pushed_value_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::pop(), OpValue::Int(9));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn unmatched_value_crossing_is_a_violation() {
        // push(1) completes; push(2) starts afterwards and completes; pop():1
        // after push(2): 2 is pushed inside 1's lifetime (after 1, popped
        // later), but 2 is never popped while 1 is — forced crossing.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::push(1), OpValue::Bool(true));
        b.complete(p(0), ops::push(2), OpValue::Bool(true));
        b.complete(p(0), ops::pop(), OpValue::Int(1));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "order-inversion");
        assert_eq!(pattern.values, [2]);
        assert!(pattern.message.contains("never-popped"), "{pattern}");
    }

    #[test]
    fn covered_empty_pop_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::push(1), OpValue::Bool(true));
        b.complete(p(0), ops::pop(), OpValue::Empty);
        b.complete(p(0), ops::pop(), OpValue::Int(1));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn duplicate_pushes_force_fallback() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::push(3), OpValue::Bool(true));
        b.complete(p(0), ops::push(3), OpValue::Bool(true));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Ambiguous)
        );
    }

    #[test]
    fn pending_operations_force_fallback() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::push(1), OpValue::Bool(true));
        let _pending = b.invoke(p(1), ops::pop());
        assert_eq!(run(b), SpecializedResult::Fallback(FallbackReason::Pending));
    }

    #[test]
    fn nested_lifetimes_with_empty_pops_are_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::pop(), OpValue::Empty);
        b.complete(p(0), ops::push(1), OpValue::Bool(true));
        b.complete(p(0), ops::push(2), OpValue::Bool(true));
        b.complete(p(0), ops::pop(), OpValue::Int(2));
        b.complete(p(0), ops::pop(), OpValue::Int(1));
        b.complete(p(0), ops::pop(), OpValue::Empty);
        b.complete(p(0), ops::push(3), OpValue::Bool(true));
        assert_eq!(run(b), SpecializedResult::Member);
    }
}
