//! Shared machinery for the specialized monitors: event-index intervals,
//! linearization-order realizability, interval unions and a Fenwick tree for
//! the O(n log n) bad-pattern sweeps.

/// Sentinel event index for "never happens" (a pending response, an absent
/// dequeue). Compares greater than every real index, so precedence tests
/// (`rs < iv`) involving it are never forced.
pub(crate) const INF: u32 = u32::MAX;

/// The `[invocation, response]` event-index span of one operation.
///
/// Event indices are positions in the history's event vector, so they are
/// unique: two distinct events never share an index. `rs == INF` encodes a
/// pending operation (the response may be appended arbitrarily late).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub(crate) iv: u32,
    pub(crate) rs: u32,
}

impl Span {
    pub(crate) fn new(iv: usize, rs: Option<usize>) -> Self {
        Span {
            iv: iv as u32,
            rs: rs.map_or(INF, |r| r as u32),
        }
    }

    /// True when `self` finishes before `other` starts: the real-time
    /// precedence order of Definition 4.2.
    pub(crate) fn precedes(&self, other: &Span) -> bool {
        self.rs != INF && self.rs < other.iv
    }
}

/// Decides whether a candidate linearization order is realizable by choosing
/// one linearization point inside every operation's `[iv, rs]` interval.
///
/// A total order is realizable iff it extends the real-time precedence order:
/// then points can be picked greedily (each strictly after the previous point
/// and after its own invocation, strictly before its own response — always
/// possible because event indices are distinct, so between any invocation and
/// a later response there is room on the real line). The order extends
/// precedence iff no operation responds before an earlier-ordered operation's
/// invocation, which the running maximum below detects in O(n).
pub(crate) fn respects_precedence(spans: impl IntoIterator<Item = Span>) -> bool {
    let mut max_iv = 0u32;
    for span in spans {
        // Including the operation's own invocation is harmless: iv <= rs.
        max_iv = max_iv.max(span.iv);
        if span.rs < max_iv {
            return false;
        }
    }
    true
}

/// A union of closed integer intervals, for "is this whole range necessarily
/// covered" queries (the empty-dequeue / empty-pop bad pattern).
///
/// Intervals are over *gap* coordinates: gap `g` is the space between event
/// index `g` and `g + 1`, where a linearization point may be placed.
pub(crate) struct IntervalUnion {
    /// Disjoint, sorted, merged `[lo, hi]` intervals.
    merged: Vec<(u32, u32)>,
}

impl IntervalUnion {
    /// Builds the union from arbitrary (possibly overlapping) intervals.
    /// Intervals with `lo > hi` are empty and ignored.
    pub(crate) fn new(mut intervals: Vec<(u32, u32)>) -> Self {
        intervals.retain(|(lo, hi)| lo <= hi);
        intervals.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(intervals.len());
        for (lo, hi) in intervals {
            match merged.last_mut() {
                // `lo <= prev_hi + 1` merges adjacent integer intervals too.
                Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                    *prev_hi = (*prev_hi).max(hi);
                }
                _ => merged.push((lo, hi)),
            }
        }
        IntervalUnion { merged }
    }

    /// True when every integer in `[lo, hi]` lies in the union.
    pub(crate) fn covers(&self, lo: u32, hi: u32) -> bool {
        if lo > hi {
            // An empty query range is vacuously covered; callers never build
            // one for a well-formed operation (iv < rs always leaves a gap).
            return true;
        }
        match self.merged.binary_search_by(|&(l, _)| l.cmp(&lo)) {
            Ok(i) => self.merged[i].1 >= hi,
            Err(0) => false,
            Err(i) => self.merged[i - 1].1 >= hi,
        }
    }
}

/// Fenwick tree over compressed coordinates answering *prefix maximum*
/// queries, used by the crossing-pattern sweeps (stack, priority queue).
pub(crate) struct PrefixMax {
    tree: Vec<u32>,
}

impl PrefixMax {
    /// A tree over `size` slots, all initialised to 0 (no entry).
    pub(crate) fn new(size: usize) -> Self {
        PrefixMax {
            tree: vec![0; size + 1],
        }
    }

    /// Raises slot `index` (0-based) to at least `value`.
    pub(crate) fn update(&mut self, index: usize, value: u32) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].max(value);
            i += i & i.wrapping_neg();
        }
    }

    /// Maximum value over slots `0..=index`; 0 when nothing was inserted.
    pub(crate) fn query(&self, index: usize) -> u32 {
        let mut best = 0;
        let mut i = (index + 1).min(self.tree.len() - 1);
        while i > 0 {
            best = best.max(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        best
    }
}

/// Sorts and deduplicates `values`, returning the compressed coordinate space.
/// Look up ranks with `binary_search`.
pub(crate) fn compress(mut values: Vec<u32>) -> Vec<u32> {
    values.sort_unstable();
    values.dedup();
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(iv: u32, rs: u32) -> Span {
        Span { iv, rs }
    }

    #[test]
    fn precedence_check_accepts_and_rejects() {
        // Sequential: 0-1, 2-3, 4-5.
        assert!(respects_precedence([span(0, 1), span(2, 3), span(4, 5)]));
        // Overlapping, order by invocation: fine.
        assert!(respects_precedence([span(0, 3), span(1, 2), span(4, 5)]));
        // 2-3 ordered after 4-5 but precedes it in real time: not realizable.
        assert!(!respects_precedence([span(0, 1), span(4, 5), span(2, 3)]));
        // Pending operations never constrain successors.
        assert!(respects_precedence([span(0, INF), span(1, 2)]));
    }

    #[test]
    fn interval_union_coverage() {
        let union = IntervalUnion::new(vec![(5, 7), (1, 2), (3, 4), (10, 12)]);
        // [1,7] merges from the three adjacent pieces.
        assert!(union.covers(1, 7));
        assert!(union.covers(2, 6));
        assert!(!union.covers(0, 2));
        assert!(!union.covers(6, 10));
        assert!(!union.covers(8, 8));
        assert!(union.covers(10, 12));
        assert!(!union.covers(13, 13));
        assert!(IntervalUnion::new(vec![]).covers(3, 2));
        assert!(!IntervalUnion::new(vec![]).covers(0, 0));
    }

    #[test]
    fn prefix_max_sweep() {
        let mut tree = PrefixMax::new(4);
        assert_eq!(tree.query(3), 0);
        tree.update(1, 10);
        tree.update(3, 7);
        assert_eq!(tree.query(0), 0);
        assert_eq!(tree.query(1), 10);
        assert_eq!(tree.query(2), 10);
        assert_eq!(tree.query(3), 10);
        tree.update(0, 99);
        assert_eq!(tree.query(0), 99);
    }

    #[test]
    fn compression_is_sorted_and_unique() {
        assert_eq!(compress(vec![5, 1, 5, 3]), vec![1, 3, 5]);
    }
}
