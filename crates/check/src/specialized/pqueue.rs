//! Specialized min-priority-queue monitor for unambiguous, complete
//! histories.
//!
//! The forced matching (distinct inserted values) gives each `ExtractMin`
//! returning `v` a unique insert. Sound bad patterns: matching errors, an
//! extraction completing before its insert is invoked, an extraction of `w`
//! whose whole window is covered by a *smaller* value necessarily inside the
//! queue (the minimum could not have been `w`), and an empty-extraction
//! covered by any value. The constructive phase simulates a binary heap by
//! earliest deadline, inserting values as late as their deadlines allow so
//! that smaller values do not block earlier extractions of larger ones, and
//! validates the emitted order. Pending operations fall back.

use super::util::{compress, respects_precedence, IntervalUnion, PrefixMax, Span, INF};
use super::{BadPattern, FallbackReason, SpecializedResult};
use linrv_history::{History, OpValue};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

#[derive(Clone, Copy)]
struct Pair {
    insert: Span,
    extract: Span,
    value: i64,
}

pub(super) fn check(history: &History) -> SpecializedResult {
    if history.pending_operations().next().is_some() {
        return SpecializedResult::Fallback(FallbackReason::Pending);
    }
    let mut inserts: HashMap<i64, (Span, u32)> = HashMap::new();
    let mut extracts: HashMap<i64, (Span, u32)> = HashMap::new();
    let mut empties: Vec<Span> = Vec::new();

    for record in history.operations() {
        let span = Span::new(record.invocation_index, record.response_index);
        match record.operation.kind.as_str() {
            "Insert" => {
                let Some(value) = record.operation.arg.as_int() else {
                    return SpecializedResult::Fallback(FallbackReason::Unsupported);
                };
                match &record.response {
                    Some(OpValue::Bool(true)) => {}
                    Some(other) => {
                        return SpecializedResult::NotMember(
                            BadPattern::new(
                                "bad-response",
                                format!(
                                    "Insert({value}) acknowledged with {other} instead of true"
                                ),
                            )
                            .with_values(vec![value]),
                        );
                    }
                    None => unreachable!("pending operations force a fallback above"),
                }
                match inserts.entry(value) {
                    Entry::Vacant(slot) => {
                        slot.insert((span, 1));
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().1 += 1,
                }
            }
            "ExtractMin" => match &record.response {
                Some(OpValue::Int(value)) => match extracts.entry(*value) {
                    Entry::Vacant(slot) => {
                        slot.insert((span, 1));
                    }
                    Entry::Occupied(mut slot) => slot.get_mut().1 += 1,
                },
                Some(OpValue::Empty) => empties.push(span),
                Some(other) => {
                    return SpecializedResult::NotMember(BadPattern::new(
                        "bad-response",
                        format!("ExtractMin returned {other}, expected an integer or empty"),
                    ));
                }
                None => unreachable!("pending operations force a fallback above"),
            },
            other => {
                return SpecializedResult::NotMember(BadPattern::new(
                    "bad-response",
                    format!("{other} is not a priority-queue operation"),
                ));
            }
        }
    }

    if inserts.values().any(|(_, count)| *count > 1) {
        return SpecializedResult::Fallback(FallbackReason::Ambiguous);
    }

    let mut matched: Vec<Pair> = Vec::with_capacity(extracts.len());
    for (&value, &(extract, count)) in &extracts {
        if count > 1 {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "duplicate-remove",
                    format!("value {value} extracted {count} times"),
                )
                .with_values(vec![value]),
            );
        }
        let Some(&(insert, _)) = inserts.get(&value) else {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "never-added",
                    format!("value {value} extracted but never inserted"),
                )
                .with_values(vec![value]),
            );
        };
        if extract.precedes(&insert) {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "remove-before-add",
                    format!("value {value} extracted before its insert was invoked"),
                )
                .with_values(vec![value]),
            );
        }
        matched.push(Pair {
            insert,
            extract,
            value,
        });
    }
    let unmatched: Vec<(Span, i64)> = inserts
        .iter()
        .filter(|(value, _)| !extracts.contains_key(value))
        .map(|(&value, &(span, _))| (span, value))
        .collect();

    if let Some(pattern) = smaller_value_present(&matched, &unmatched) {
        return SpecializedResult::NotMember(pattern);
    }
    if let Some(pattern) = covered_empty_extract(&matched, &unmatched, &empties) {
        return SpecializedResult::NotMember(pattern);
    }

    if simulate(&matched, &unmatched, &empties) {
        SpecializedResult::Member
    } else {
        SpecializedResult::Fallback(FallbackReason::Undecided)
    }
}

/// An extraction returning `w` while some `v < w` is necessarily in the queue
/// for the extraction's entire window: the minimum cannot have been `w`.
///
/// `v` necessarily occupies gaps `[rs(insert v), iv(extract v) - 1]`
/// (∞-bounded when `v` is never extracted); the single-value coverage
/// condition is `rs(insert v) <= iv(extract w)` and
/// `iv(extract v) >= rs(extract w)`. Swept with a Fenwick prefix-max over
/// values in increasing value order.
fn smaller_value_present(matched: &[Pair], unmatched: &[(Span, i64)]) -> Option<BadPattern> {
    // All values, each contributing (value, rs(insert), iv(extract) or INF).
    let mut values: Vec<(i64, u32, u32)> = matched
        .iter()
        .map(|p| (p.value, p.insert.rs, p.extract.iv))
        .collect();
    values.extend(unmatched.iter().map(|&(span, value)| (value, span.rs, INF)));
    values.sort_unstable();
    let insert_rs = compress(values.iter().map(|&(_, rs, _)| rs).collect());
    let mut tree = PrefixMax::new(insert_rs.len());

    let mut extractions: Vec<&Pair> = matched.iter().collect();
    extractions.sort_unstable_by_key(|p| p.value);
    let mut cursor = 0;
    for w in extractions {
        while cursor < values.len() && values[cursor].0 < w.value {
            let (_, ins_rs, ext_iv) = values[cursor];
            let rank = insert_rs.binary_search(&ins_rs).expect("compressed");
            tree.update(rank, ext_iv);
            cursor += 1;
        }
        // v with rs(insert v) <= iv(extract w):
        let prefix = insert_rs.partition_point(|&rs| rs <= w.extract.iv);
        if prefix > 0 && tree.query(prefix - 1) >= w.extract.rs {
            return Some(
                BadPattern::new(
                    "order-inversion",
                    format!(
                        "ExtractMin returned {} while a smaller value was necessarily \
                 in the queue",
                        w.value
                    ),
                )
                .with_values(vec![w.value]),
            );
        }
    }
    None
}

/// An empty-extraction whose whole window is covered by values necessarily in
/// the queue.
fn covered_empty_extract(
    matched: &[Pair],
    unmatched: &[(Span, i64)],
    empties: &[Span],
) -> Option<BadPattern> {
    if empties.is_empty() {
        return None;
    }
    let mut occupied: Vec<(u32, u32)> = matched
        .iter()
        .filter(|p| p.extract.iv > 0)
        .map(|p| (p.insert.rs, p.extract.iv - 1))
        .collect();
    occupied.extend(unmatched.iter().map(|&(span, _)| (span.rs, INF)));
    let union = IntervalUnion::new(occupied);
    for span in empties {
        if union.covers(span.iv, span.rs - 1) {
            return Some(BadPattern::new(
                "covered-empty",
                "an extraction observed an empty priority queue inside a window \
                 where it is necessarily non-empty",
            ));
        }
    }
    None
}

/// Constructive phase: simulate a min-heap by earliest deadline.
///
/// Inserts happen only when forced (their response deadline is nearest), so
/// small values stay out of the way of earlier extractions of larger ones.
/// Serving an extraction of `w` first inserts `w` if needed, then clears
/// every smaller value by serving *its* extraction early (impossible if a
/// smaller value is never extracted — the greedy gives up). Empty-extractions
/// drain the heap the same way. The emitted order replays correctly by
/// construction; the caller's precedence validation decides membership.
fn simulate(matched: &[Pair], unmatched: &[(Span, i64)], empties: &[Span]) -> bool {
    // Extraction agenda: every non-empty extraction ordered by response
    // (a linear extension of the extraction interval order), then the
    // empty-extractions merged in by the main loop.
    let mut agenda: Vec<usize> = (0..matched.len()).collect();
    agenda.sort_unstable_by_key(|&i| matched[i].extract.rs);
    let mut served = vec![false; matched.len()];
    let mut next_agenda = 0;

    let mut empties: Vec<Span> = empties.to_vec();
    empties.sort_unstable_by_key(|span| span.rs);
    let mut next_empty = 0;

    // Unified insert ids: matched i = i, unmatched i = matched.len() + i.
    let insert_span = |id: usize| -> Span {
        if id < matched.len() {
            matched[id].insert
        } else {
            unmatched[id - matched.len()].0
        }
    };
    let value_of = |id: usize| -> i64 {
        if id < matched.len() {
            matched[id].value
        } else {
            unmatched[id - matched.len()].1
        }
    };
    let total_values = matched.len() + unmatched.len();
    let mut inserted = vec![false; total_values];
    let mut insert_rs: BinaryHeap<Reverse<(u32, usize)>> = (0..total_values)
        .map(|id| Reverse((insert_span(id).rs, id)))
        .collect();
    // The simulated min-heap, keyed by value.
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
    let mut sequence: Vec<Span> = Vec::with_capacity(total_values + matched.len() + empties.len());

    let emit_insert = |id: usize,
                       inserted: &mut Vec<bool>,
                       heap: &mut BinaryHeap<Reverse<(i64, usize)>>,
                       sequence: &mut Vec<Span>| {
        inserted[id] = true;
        heap.push(Reverse((value_of(id), id)));
        sequence.push(insert_span(id));
    };
    // Serves extractions of everything in the heap smaller than `limit`
    // (everything, when None). Fails on an unextracted blocker.
    let clear_below = |limit: Option<i64>,
                       heap: &mut BinaryHeap<Reverse<(i64, usize)>>,
                       served: &mut Vec<bool>,
                       sequence: &mut Vec<Span>|
     -> bool {
        while let Some(&Reverse((value, id))) = heap.peek() {
            if limit.is_some_and(|limit| value >= limit) {
                return true;
            }
            if id >= served.len() {
                return false; // Never extracted: it can never leave the heap.
            }
            heap.pop();
            served[id] = true;
            sequence.push(matched[id].extract);
        }
        true
    };

    loop {
        while next_agenda < agenda.len() && served[agenda[next_agenda]] {
            next_agenda += 1;
        }
        while insert_rs
            .peek()
            .is_some_and(|Reverse((_, id))| inserted[*id])
        {
            insert_rs.pop();
        }
        // (deadline, class): insert < extraction < empty-extraction on ties.
        let mut best: Option<(u32, u8)> = None;
        if let Some(&Reverse((rs, _))) = insert_rs.peek() {
            best = Some((rs, 0));
        }
        if next_agenda < agenda.len() {
            let candidate = (matched[agenda[next_agenda]].extract.rs, 1);
            if best.map_or(true, |b| candidate < b) {
                best = Some(candidate);
            }
        }
        if next_empty < empties.len() {
            let candidate = (empties[next_empty].rs, 2);
            if best.map_or(true, |b| candidate < b) {
                best = Some(candidate);
            }
        }
        match best {
            Some((_, 0)) => {
                let Reverse((_, id)) = insert_rs.pop().expect("peeked above");
                emit_insert(id, &mut inserted, &mut heap, &mut sequence);
            }
            Some((_, 1)) => {
                let i = agenda[next_agenda];
                if !inserted[i] {
                    emit_insert(i, &mut inserted, &mut heap, &mut sequence);
                }
                if !clear_below(
                    Some(matched[i].value),
                    &mut heap,
                    &mut served,
                    &mut sequence,
                ) {
                    return false;
                }
                let Some(Reverse((value, id))) = heap.pop() else {
                    return false;
                };
                debug_assert!(value == matched[i].value && id == i);
                served[i] = true;
                sequence.push(matched[i].extract);
            }
            Some((_, 2)) => {
                if !clear_below(None, &mut heap, &mut served, &mut sequence) {
                    return false;
                }
                sequence.push(empties[next_empty]);
                next_empty += 1;
            }
            _ => break,
        }
    }
    respects_precedence(sequence)
}

#[cfg(test)]
mod tests {
    use super::super::{check_specialized, FallbackReason, SpecializedResult};
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::priority_queue as ops;
    use linrv_spec::ObjectKind;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(b: HistoryBuilder) -> SpecializedResult {
        check_specialized(ObjectKind::PriorityQueue, &b.build())
    }

    #[test]
    fn min_extraction_order_is_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::insert(5), OpValue::Bool(true));
        b.complete(p(0), ops::insert(3), OpValue::Bool(true));
        b.complete(p(0), ops::extract_min(), OpValue::Int(3));
        b.complete(p(0), ops::extract_min(), OpValue::Int(5));
        b.complete(p(0), ops::extract_min(), OpValue::Empty);
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn extracting_the_larger_value_first_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::insert(5), OpValue::Bool(true));
        b.complete(p(0), ops::insert(3), OpValue::Bool(true));
        b.complete(p(0), ops::extract_min(), OpValue::Int(5));
        b.complete(p(0), ops::extract_min(), OpValue::Int(3));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "order-inversion");
        assert_eq!(pattern.values, [5]);
        assert!(pattern.message.contains("smaller value"), "{pattern}");
    }

    #[test]
    fn concurrent_inserts_extract_in_either_order() {
        let mut b = HistoryBuilder::new();
        let ins5 = b.invoke(p(0), ops::insert(5));
        let ins3 = b.invoke(p(1), ops::insert(3));
        b.respond(ins5, OpValue::Bool(true));
        b.respond(ins3, OpValue::Bool(true));
        b.complete(p(0), ops::extract_min(), OpValue::Int(3));
        b.complete(p(0), ops::extract_min(), OpValue::Int(5));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn larger_before_smaller_is_member_when_insert_overlaps() {
        // insert(3) overlaps the extraction of 5: 3 may be inserted after.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::insert(5), OpValue::Bool(true));
        let ins3 = b.invoke(p(1), ops::insert(3));
        b.complete(p(0), ops::extract_min(), OpValue::Int(5));
        b.respond(ins3, OpValue::Bool(true));
        b.complete(p(0), ops::extract_min(), OpValue::Int(3));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn extraction_of_never_inserted_value_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::extract_min(), OpValue::Int(1));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn covered_empty_extraction_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::insert(9), OpValue::Bool(true));
        b.complete(p(0), ops::extract_min(), OpValue::Empty);
        b.complete(p(0), ops::extract_min(), OpValue::Int(9));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn duplicate_inserts_force_fallback() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::insert(2), OpValue::Bool(true));
        b.complete(p(0), ops::insert(2), OpValue::Bool(true));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Ambiguous)
        );
    }

    #[test]
    fn unextracted_smaller_value_blocking_extraction_is_a_violation() {
        // 1 is inserted and never extracted; extracting 5 afterwards is
        // impossible: 1 is necessarily the minimum.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::insert(1), OpValue::Bool(true));
        b.complete(p(0), ops::insert(5), OpValue::Bool(true));
        b.complete(p(0), ops::extract_min(), OpValue::Int(5));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }
}
