//! Specialized set monitor for complete histories.
//!
//! The set factorizes per element: a sequential history is legal iff every
//! per-element projection is legal, and independently realizable per-element
//! orders merge into one global linearization (pick points per element; the
//! merged point order extends real-time precedence and projects back onto
//! each element's order). So the monitor decomposes by element, checks sound
//! count/observer bad patterns, and builds each element's order with an
//! alternating add/remove chain plus an earliest-deadline observer state
//! machine. No ambiguity fallback is needed: successful adds and removes of
//! one element alternate in every legal order, so sorting each class by
//! response gives the only chain shape worth trying; failure to validate is
//! an [`Undecided`](super::FallbackReason::Undecided) fallback, never a
//! verdict. Pending operations fall back.

use super::util::{respects_precedence, Span};
use super::{BadPattern, FallbackReason, SpecializedResult};
use linrv_history::{History, OpValue};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Default)]
struct Element {
    /// Successful adds / removes (`true` responses), the state mutators.
    adds: Vec<Span>,
    removes: Vec<Span>,
    /// Operations legal only while the element is present: failed adds and
    /// `Contains` returning `true`.
    present_obs: Vec<Span>,
    /// Operations legal only while the element is absent: failed removes and
    /// `Contains` returning `false`.
    absent_obs: Vec<Span>,
}

pub(super) fn check(history: &History) -> SpecializedResult {
    if history.pending_operations().next().is_some() {
        return SpecializedResult::Fallback(FallbackReason::Pending);
    }
    let mut elements: HashMap<i64, Element> = HashMap::new();
    for record in history.operations() {
        let span = Span::new(record.invocation_index, record.response_index);
        let kind = record.operation.kind.as_str();
        if !matches!(kind, "Add" | "Remove" | "Contains") {
            return SpecializedResult::NotMember(BadPattern::new(
                "bad-response",
                format!("{kind} is not a set operation"),
            ));
        }
        let Some(value) = record.operation.arg.as_int() else {
            return SpecializedResult::Fallback(FallbackReason::Unsupported);
        };
        let flag = match &record.response {
            Some(OpValue::Bool(flag)) => *flag,
            Some(other) => {
                return SpecializedResult::NotMember(
                    BadPattern::new(
                        "bad-response",
                        format!("{kind}({value}) responded {other}, expected a boolean"),
                    )
                    .with_values(vec![value]),
                );
            }
            None => unreachable!("pending operations force a fallback above"),
        };
        let element = elements.entry(value).or_default();
        match (kind, flag) {
            ("Add", true) => element.adds.push(span),
            ("Remove", true) => element.removes.push(span),
            ("Add", false) | ("Contains", true) => element.present_obs.push(span),
            ("Remove", false) | ("Contains", false) => element.absent_obs.push(span),
            _ => unreachable!(),
        }
    }

    for (&value, element) in &mut elements {
        // Counting bad patterns hold in every sequential order: mutators of
        // one element alternate add, remove, add, … starting from absent.
        if element.removes.len() > element.adds.len() {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "duplicate-remove",
                    format!(
                        "element {value} removed {} times but added only {} times",
                        element.removes.len(),
                        element.adds.len()
                    ),
                )
                .with_values(vec![value]),
            );
        }
        if element.adds.len() > element.removes.len() + 1 {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "duplicate-add",
                    format!(
                        "element {value} added {} times with only {} removals",
                        element.adds.len(),
                        element.removes.len()
                    ),
                )
                .with_values(vec![value]),
            );
        }
        if element.adds.is_empty() && !element.present_obs.is_empty() {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "never-added",
                    format!("element {value} observed present but never successfully added"),
                )
                .with_values(vec![value]),
            );
        }
        match realize(element) {
            Some(order) if respects_precedence(order.iter().copied()) => {}
            _ => return SpecializedResult::Fallback(FallbackReason::Undecided),
        }
    }
    SpecializedResult::Member
}

/// Builds a candidate order for one element, or `None` when the greedy gets
/// stuck. Replay is valid by construction: the chain alternates starting
/// absent, and observers are emitted only in their matching state.
fn realize(element: &mut Element) -> Option<Vec<Span>> {
    element.adds.sort_unstable_by_key(|span| span.rs);
    element.removes.sort_unstable_by_key(|span| span.rs);
    // chain[0] = adds[0], chain[1] = removes[0], chain[2] = adds[1], …
    let chain_len = element.adds.len() + element.removes.len();
    let chain = |i: usize| -> Span {
        if i % 2 == 0 {
            element.adds[i / 2]
        } else {
            element.removes[i / 2]
        }
    };
    let mut present: BinaryHeap<Reverse<(u32, u32)>> = element
        .present_obs
        .iter()
        .map(|span| Reverse((span.rs, span.iv)))
        .collect();
    let mut absent: BinaryHeap<Reverse<(u32, u32)>> = element
        .absent_obs
        .iter()
        .map(|span| Reverse((span.rs, span.iv)))
        .collect();

    let mut order = Vec::with_capacity(chain_len + present.len() + absent.len());
    let mut next_chain = 0;
    loop {
        // The element is present after an odd number of chain mutators.
        let (eligible, blocked) = if next_chain % 2 == 1 {
            (&mut present, &mut absent)
        } else {
            (&mut absent, &mut present)
        };
        let chain_rs = (next_chain < chain_len).then(|| chain(next_chain).rs);
        match (eligible.peek(), chain_rs) {
            // Earliest deadline first between the eligible observer and the
            // next mutator.
            (Some(&Reverse((rs, iv))), Some(c_rs)) if rs < c_rs => {
                eligible.pop();
                order.push(Span { iv, rs });
            }
            (Some(&Reverse((rs, iv))), None) => {
                eligible.pop();
                order.push(Span { iv, rs });
            }
            (_, Some(_)) => {
                // Advance the chain: either it is the most urgent op, or a
                // blocked observer needs the state flipped.
                order.push(chain(next_chain));
                next_chain += 1;
            }
            (None, None) => {
                // Only observers of the wrong state remain: stuck.
                return blocked.is_empty().then_some(order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_specialized, FallbackReason, SpecializedResult};
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::set as ops;
    use linrv_spec::ObjectKind;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(b: HistoryBuilder) -> SpecializedResult {
        check_specialized(ObjectKind::Set, &b.build())
    }

    #[test]
    fn add_contains_remove_round_trip_is_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::contains(7), OpValue::Bool(false));
        b.complete(p(0), ops::add(7), OpValue::Bool(true));
        b.complete(p(0), ops::contains(7), OpValue::Bool(true));
        b.complete(p(0), ops::add(7), OpValue::Bool(false));
        b.complete(p(0), ops::remove(7), OpValue::Bool(true));
        b.complete(p(0), ops::remove(7), OpValue::Bool(false));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn elements_are_independent() {
        let mut b = HistoryBuilder::new();
        let add3 = b.invoke(p(0), ops::add(3));
        b.complete(p(1), ops::add(8), OpValue::Bool(true));
        b.respond(add3, OpValue::Bool(true));
        b.complete(p(1), ops::remove(3), OpValue::Bool(true));
        b.complete(p(0), ops::contains(8), OpValue::Bool(true));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn contains_true_without_add_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::contains(1), OpValue::Bool(true));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "never-added");
        assert!(
            pattern.message.contains("never successfully added"),
            "{pattern}"
        );
    }

    #[test]
    fn more_removes_than_adds_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(5), OpValue::Bool(true));
        b.complete(p(0), ops::remove(5), OpValue::Bool(true));
        b.complete(p(0), ops::remove(5), OpValue::Bool(true));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn two_successful_adds_without_a_remove_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(5), OpValue::Bool(true));
        b.complete(p(0), ops::add(5), OpValue::Bool(true));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn stale_absent_observation_falls_back_for_the_general_search() {
        // contains(2)=false strictly after the add completed: no sound bad
        // pattern, but no realizable order either — the monitor declines and
        // the general search will reject.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(2), OpValue::Bool(true));
        b.complete(p(0), ops::contains(2), OpValue::Bool(false));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Undecided)
        );
    }

    #[test]
    fn concurrent_observers_may_see_either_state() {
        let mut b = HistoryBuilder::new();
        let add = b.invoke(p(0), ops::add(4));
        b.complete(p(1), ops::contains(4), OpValue::Bool(false));
        b.complete(p(2), ops::contains(4), OpValue::Bool(true));
        b.respond(add, OpValue::Bool(true));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn pending_operations_fall_back() {
        let mut b = HistoryBuilder::new();
        b.invoke(p(0), ops::add(1));
        assert_eq!(run(b), SpecializedResult::Fallback(FallbackReason::Pending));
    }
}
