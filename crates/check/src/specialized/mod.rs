//! Specialized log-linear linearizability monitors and the strategy dispatch
//! that routes histories to them.
//!
//! The general membership decision ([`LinSpec`]) is a Wing–Gong search:
//! worst-case exponential, NP-complete in general (Gibbons & Korach). But for
//! the concrete objects of this crate — queue, stack, set, priority queue,
//! register, counter — *unambiguous* histories (no two insertions of the same
//! value) admit log-linear decision procedures in the style of Lee & Mathur's
//! decrease-and-conquer monitors and Abdulla et al.'s per-type algorithms.
//! This module implements them behind [`CheckerStrategy`] / [`StrategyChecker`]
//! so that `linrv check`, [`StreamingChecker`](crate::stream::StreamingChecker)
//! and the `linrv` facade all benefit transparently.
//!
//! # Soundness architecture
//!
//! Every specialized monitor is *sound by construction* on both sides:
//!
//! * It answers [`SpecializedResult::Member`] only after explicitly
//!   constructing a candidate linearization order **and** validating it: the
//!   order must extend the real-time precedence relation (checked with the
//!   greedy point-assignment lemma in `util::respects_precedence`) and must
//!   replay through the sequential semantics reproducing every recorded
//!   response. A validated witness is a linearization regardless of how the
//!   heuristic that produced it works.
//! * It answers [`SpecializedResult::NotMember`] only from individually sound
//!   bad patterns (e.g. a value dequeued twice, a FIFO inversion forced by
//!   real-time order, an empty-dequeue whose window is necessarily covered).
//! * In every other situation it returns [`SpecializedResult::Fallback`] and
//!   the general search decides. A fallback is never wrong, only slower.
//!
//! # When the specialized path applies
//!
//! The monitors assume the **canonical sequential semantics** that
//! [`ObjectKind`] denotes in `linrv-spec` (`QueueSpec`, `StackSpec`, …). A
//! custom [`SequentialSpec`] whose `kind()` claims e.g. `Queue` but whose
//! `step` differs must use [`CheckerStrategy::General`]. Within that contract
//! the dispatch falls back to the general search whenever
//!
//! * the history is **ambiguous** — two insertions of the same value (for the
//!   register: two writes of the same value, or any write of the initial value
//!   `0`), which breaks the unique-matching precondition of the log-linear
//!   algorithms;
//! * the history has **pending operations** the monitor cannot reason about
//!   (the queue monitor handles pending operations natively; the others
//!   decline);
//! * the monitor's constructive phase cannot find a witness even though no
//!   sound bad pattern fired (**undecided** — rare, but possible because the
//!   greedy construction is not complete);
//! * the object kind has no specialized monitor (`Consensus`, or custom
//!   kinds).

use crate::genlin::GenLinObject;
use crate::linearizability::{CheckerConfig, LinSpec};
use crate::pattern::BadPattern;
use crate::witness::{Verdict, Violation};
use linrv_history::History;
use linrv_spec::{ObjectKind, SequentialSpec};
use std::fmt;

mod counter;
mod pqueue;
mod queue;
mod register;
mod set;
mod stack;
mod util;

/// How [`StrategyChecker`] decides which decision procedure to run.
///
/// The unambiguity precondition and the complete fallback rules are
/// documented on the [module page](self); in short: [`Auto`] uses the
/// log-linear specialized monitor whenever the spec's [`ObjectKind`] has one
/// *and* the history satisfies its preconditions (distinct inserted values,
/// supported pending-operation shape), and silently falls back to the general
/// Wing–Gong search otherwise. The verdict is the same either way; only the
/// cost differs.
///
/// [`Auto`]: CheckerStrategy::Auto
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CheckerStrategy {
    /// Specialized monitor when applicable, general search otherwise.
    ///
    /// Requires the spec to carry the canonical semantics of its
    /// [`ObjectKind`] (the `linrv-spec` objects do). This is the default.
    #[default]
    Auto,
    /// Always run the general Wing–Gong search, ignoring the specialized
    /// monitors. Use this for custom specs whose semantics differ from the
    /// canonical object of their declared kind.
    General,
    /// Run *only* the specialized monitor and report
    /// [`Verdict::Inconclusive`] when it declines. Useful in benchmarks and
    /// tests that must prove the fast path actually decided.
    SpecializedOnly,
}

/// Why the specialized monitor declined and the general search ran instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Pending operations the monitor cannot reason about.
    Pending,
    /// Duplicate inserted values (or a write of the register's initial value):
    /// the unique-matching precondition fails.
    Ambiguous,
    /// No sound bad pattern fired, but the constructive phase found no
    /// validated witness either.
    Undecided,
    /// No specialized monitor exists for this object kind, or the history is
    /// not well formed.
    Unsupported,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let reason = match self {
            FallbackReason::Pending => "pending operations",
            FallbackReason::Ambiguous => "ambiguous (duplicate) values",
            FallbackReason::Undecided => "constructive phase undecided",
            FallbackReason::Unsupported => "no specialized monitor",
        };
        f.write_str(reason)
    }
}

/// Outcome of running just the specialized monitor for one object kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecializedResult {
    /// A linearization was constructed and validated: the history is a member.
    Member,
    /// A sound bad pattern was found; the [`BadPattern`] names it and carries
    /// the culprit values.
    NotMember(BadPattern),
    /// The monitor declines; the caller should run the general search.
    Fallback(FallbackReason),
}

/// Runs the specialized monitor for `kind` over `history`, without any
/// general-search fallback.
///
/// This is the raw entry point used by [`StrategyChecker`] and the benchmark
/// suite; most callers want [`StrategyChecker::check`] instead. The monitors
/// assume the canonical `linrv-spec` semantics of `kind` (see the
/// [module docs](self)).
pub fn check_specialized(kind: ObjectKind, history: &History) -> SpecializedResult {
    if history.check_well_formed().is_err() {
        // Let the general checker produce the canonical malformed-history
        // violation rather than duplicating its diagnostics here.
        return SpecializedResult::Fallback(FallbackReason::Unsupported);
    }
    match kind {
        ObjectKind::Queue => queue::check(history),
        ObjectKind::Stack => stack::check(history),
        ObjectKind::Set => set::check(history),
        ObjectKind::PriorityQueue => pqueue::check(history),
        ObjectKind::Counter => counter::check(history),
        ObjectKind::Register => register::check(history),
        _ => SpecializedResult::Fallback(FallbackReason::Unsupported),
    }
}

/// Which decision procedure produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The specialized log-linear monitor decided.
    Specialized,
    /// The specialized monitor declined for the recorded reason and the
    /// general search decided.
    GeneralFallback(FallbackReason),
    /// The general search ran directly (strategy [`CheckerStrategy::General`]).
    General,
    /// The specialized monitor declined and no fallback was allowed
    /// (strategy [`CheckerStrategy::SpecializedOnly`]).
    Declined(FallbackReason),
}

/// Linearizability checker with strategy dispatch: specialized log-linear
/// monitors where they apply, the general [`LinSpec`] search everywhere else.
///
/// ```
/// use linrv_check::specialized::StrategyChecker;
/// use linrv_history::{HistoryBuilder, OpValue, ProcessId};
/// use linrv_spec::{ops::queue, QueueSpec};
///
/// let mut b = HistoryBuilder::new();
/// let p = ProcessId::new(0);
/// b.complete(p, queue::enqueue(1), OpValue::Bool(true));
/// b.complete(p, queue::dequeue(), OpValue::Int(1));
/// let checker = StrategyChecker::new(QueueSpec::new());
/// assert!(checker.check(&b.build()).is_member());
/// ```
pub struct StrategyChecker<S: SequentialSpec> {
    general: LinSpec<S>,
    kind: ObjectKind,
    strategy: CheckerStrategy,
}

impl<S: SequentialSpec> StrategyChecker<S> {
    /// Creates a checker with [`CheckerStrategy::Auto`] dispatch.
    pub fn new(spec: S) -> Self {
        Self::with_strategy(spec, CheckerStrategy::Auto)
    }

    /// Creates a checker with an explicit strategy.
    pub fn with_strategy(spec: S, strategy: CheckerStrategy) -> Self {
        Self::with_config(spec, CheckerConfig::default(), strategy)
    }

    /// Creates a checker with an explicit strategy and a general-search
    /// configuration (used on the fallback path).
    pub fn with_config(spec: S, config: CheckerConfig, strategy: CheckerStrategy) -> Self {
        let kind = spec.kind();
        StrategyChecker {
            general: LinSpec::with_config(spec, config),
            kind,
            strategy,
        }
    }

    /// The strategy this checker dispatches with.
    pub fn strategy(&self) -> CheckerStrategy {
        self.strategy
    }

    /// The general checker used on the fallback path.
    pub fn general(&self) -> &LinSpec<S> {
        &self.general
    }

    /// Decides membership. Equivalent to [`LinSpec::check`] but routed per
    /// the strategy; see [`Self::check_routed`] to observe the routing.
    pub fn check(&self, history: &History) -> Verdict {
        self.check_routed(history).0
    }

    /// Decides membership and reports which procedure produced the verdict.
    pub fn check_routed(&self, history: &History) -> (Verdict, Route) {
        let reason = match self.strategy {
            CheckerStrategy::General => {
                return (self.general.check(history), Route::General);
            }
            CheckerStrategy::Auto | CheckerStrategy::SpecializedOnly => {
                match check_specialized(self.kind, history) {
                    SpecializedResult::Member => {
                        return (
                            Verdict::Member {
                                linearization: None,
                            },
                            Route::Specialized,
                        );
                    }
                    SpecializedResult::NotMember(pattern) => {
                        return (
                            Verdict::NotMember {
                                violation: Violation::new(
                                    history.clone(),
                                    format!("specialized {} monitor: {pattern}", self.kind),
                                )
                                .with_pattern(pattern),
                            },
                            Route::Specialized,
                        );
                    }
                    SpecializedResult::Fallback(reason) => reason,
                }
            }
        };
        if self.strategy == CheckerStrategy::SpecializedOnly {
            (Verdict::Inconclusive, Route::Declined(reason))
        } else {
            (self.general.check(history), Route::GeneralFallback(reason))
        }
    }
}

impl<S: SequentialSpec> GenLinObject for StrategyChecker<S> {
    fn contains(&self, history: &History) -> bool {
        !self.check(history).is_violation()
    }

    fn description(&self) -> String {
        format!(
            "linearizability w.r.t. {} (strategy dispatch: specialized monitor \
             with general-search fallback)",
            self.kind
        )
    }
}
