//! Specialized read/write register monitor for unambiguous, complete
//! histories.
//!
//! With distinct written values every read names the unique write it
//! observed, in the style of Abdulla et al.'s register analysis. The initial
//! value `0` acts as a *virtual write* preceding every event (which is why a
//! real write of `0` counts as ambiguous). Sound bad patterns: a read of a
//! never-written value, a read completing before its write was invoked, a
//! forced new–old inversion (two writes real-time ordered, yet a read of the
//! newer value completes before a read of the older one starts), and a forced
//! overwrite (some write starts after `Write(v)` completed yet finishes
//! before a read of `v` starts). For the constructive phase observe that any
//! linearization is a concatenation of *blocks* — a write followed by every
//! read of its value — so block `A` must precede block `B` exactly when some
//! operation of `A` real-time-precedes one of `B`, i.e. when
//! `min_rs(A) < max_iv(B)`. Under that relation the block minimizing
//! `max_iv` is always a Kahn source when any source exists, so emitting
//! blocks in `max_iv` order (virtual block first, reads sorted by invocation
//! inside each block) and validating the result decides membership; a failed
//! validation falls back. Pending operations fall back.

use super::util::{respects_precedence, Span, INF};
use super::{BadPattern, FallbackReason, SpecializedResult};
use linrv_history::{History, OpValue};
use std::collections::HashMap;

struct Block {
    write: Span,
    reads: Vec<Span>,
}

pub(super) fn check(history: &History) -> SpecializedResult {
    if history.pending_operations().next().is_some() {
        return SpecializedResult::Fallback(FallbackReason::Pending);
    }
    let mut writes: HashMap<i64, Span> = HashMap::new();
    let mut reads: Vec<(i64, Span)> = Vec::new();
    for record in history.operations() {
        let span = Span::new(record.invocation_index, record.response_index);
        match record.operation.kind.as_str() {
            "Write" => {
                let Some(value) = record.operation.arg.as_int() else {
                    return SpecializedResult::Fallback(FallbackReason::Unsupported);
                };
                match &record.response {
                    Some(OpValue::Bool(true)) => {}
                    Some(other) => {
                        return SpecializedResult::NotMember(
                            BadPattern::new(
                                "bad-response",
                                format!("Write({value}) acknowledged with {other} instead of true"),
                            )
                            .with_values(vec![value]),
                        );
                    }
                    None => unreachable!("pending operations force a fallback above"),
                }
                if value == 0 || writes.insert(value, span).is_some() {
                    // A write of the initial value, or two writes of the same
                    // value: reads no longer name their write uniquely.
                    return SpecializedResult::Fallback(FallbackReason::Ambiguous);
                }
            }
            "Read" => match &record.response {
                Some(OpValue::Int(value)) => reads.push((*value, span)),
                Some(other) => {
                    return SpecializedResult::NotMember(BadPattern::new(
                        "bad-response",
                        format!("Read returned {other}, expected an integer"),
                    ));
                }
                None => unreachable!("pending operations force a fallback above"),
            },
            other => {
                return SpecializedResult::NotMember(BadPattern::new(
                    "bad-response",
                    format!("{other} is not a register operation"),
                ));
            }
        }
    }

    let mut initial_reads: Vec<Span> = Vec::new();
    let mut by_value: HashMap<i64, Vec<Span>> = HashMap::new();
    for (value, span) in reads {
        if value == 0 {
            initial_reads.push(span);
            continue;
        }
        let Some(write) = writes.get(&value) else {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "never-added",
                    format!("Read returned {value}, which was never written"),
                )
                .with_values(vec![value]),
            );
        };
        if span.precedes(write) {
            return SpecializedResult::NotMember(
                BadPattern::new(
                    "remove-before-add",
                    format!("Read returned {value} before Write({value}) was invoked"),
                )
                .with_values(vec![value]),
            );
        }
        by_value.entry(value).or_default().push(span);
    }
    let blocks: Vec<Block> = writes
        .iter()
        .map(|(value, &write)| Block {
            write,
            reads: by_value.remove(value).unwrap_or_default(),
        })
        .collect();

    if let Some(pattern) = forced_inversion(&blocks, &initial_reads) {
        return SpecializedResult::NotMember(pattern);
    }
    if simulate(blocks, initial_reads) {
        SpecializedResult::Member
    } else {
        SpecializedResult::Fallback(FallbackReason::Undecided)
    }
}

/// The two forced-precedence bad patterns, swept in O(n log n).
fn forced_inversion(blocks: &[Block], initial_reads: &[Span]) -> Option<BadPattern> {
    let max_read_iv = |reads: &[Span]| reads.iter().map(|r| r.iv).max().unwrap_or(0);
    let min_read_rs = |reads: &[Span]| reads.iter().map(|r| r.rs).min().unwrap_or(INF);

    // New–old inversion. When `rs(W_old) < iv(W_new)` the writes are ordered,
    // every read of the old value must linearize before `W_new` and every
    // read of the new value after it; a new-read completing before an
    // old-read starts is then impossible. The virtual initial write precedes
    // every real write, so reads of `0` seed the running maximum.
    let mut by_iv: Vec<usize> = (0..blocks.len()).collect();
    by_iv.sort_unstable_by_key(|&i| blocks[i].write.iv);
    let mut by_rs: Vec<usize> = (0..blocks.len()).collect();
    by_rs.sort_unstable_by_key(|&i| blocks[i].write.rs);
    let mut run_max = max_read_iv(initial_reads);
    let mut cursor = 0;
    for &new in &by_iv {
        while cursor < by_rs.len() && blocks[by_rs[cursor]].write.rs < blocks[new].write.iv {
            run_max = run_max.max(max_read_iv(&blocks[by_rs[cursor]].reads));
            cursor += 1;
        }
        if min_read_rs(&blocks[new].reads) < run_max {
            return Some(BadPattern::new(
                "stale-read",
                "new-old inversion: a read of an overwritten value started after a \
                 read of the overwriting value completed",
            ));
        }
    }

    // Forced overwrite: a write with `iv > rs(W_v)` linearizes after `W_v`,
    // so every read of `v` must precede it; impossible once it completed
    // before the read started. Suffix minimum of write responses over blocks
    // sorted by write invocation.
    let mut suffix_min_rs = vec![INF; blocks.len() + 1];
    for (pos, &i) in by_iv.iter().enumerate().rev() {
        suffix_min_rs[pos] = suffix_min_rs[pos + 1].min(blocks[i].write.rs);
    }
    let overwrite_after = |write_rs: u32| -> u32 {
        let from = by_iv.partition_point(|&i| blocks[i].write.iv <= write_rs);
        suffix_min_rs[from]
    };
    for block in blocks {
        if max_read_iv(&block.reads) > overwrite_after(block.write.rs) {
            return Some(BadPattern::new(
                "stale-read",
                "a read observed a value after an overwriting write had already \
                 completed",
            ));
        }
    }
    // Every real write overwrites the initial value.
    if max_read_iv(initial_reads) > suffix_min_rs[0] {
        return Some(
            BadPattern::new(
                "stale-read",
                "a read observed the initial value after a write had already completed",
            )
            .with_values(vec![0]),
        );
    }
    None
}

/// Constructive phase: blocks in `max_iv` order (see the module docs for why
/// that is a valid Kahn source order), the virtual initial block first, reads
/// sorted by invocation inside each block.
fn simulate(mut blocks: Vec<Block>, mut initial_reads: Vec<Span>) -> bool {
    let block_max_iv = |block: &Block| {
        block
            .reads
            .iter()
            .map(|r| r.iv)
            .max()
            .unwrap_or(0)
            .max(block.write.iv)
    };
    blocks.sort_unstable_by_key(block_max_iv);
    initial_reads.sort_unstable_by_key(|r| r.iv);
    let mut sequence = initial_reads;
    for block in &mut blocks {
        sequence.push(block.write);
        block.reads.sort_unstable_by_key(|r| r.iv);
        sequence.append(&mut block.reads);
    }
    respects_precedence(sequence)
}

#[cfg(test)]
mod tests {
    use super::super::{check_specialized, FallbackReason, SpecializedResult};
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::register as ops;
    use linrv_spec::ObjectKind;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn run(b: HistoryBuilder) -> SpecializedResult {
        check_specialized(ObjectKind::Register, &b.build())
    }

    #[test]
    fn sequential_writes_and_reads_are_member() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::read(), OpValue::Int(0));
        b.complete(p(0), ops::write(1), OpValue::Bool(true));
        b.complete(p(0), ops::read(), OpValue::Int(1));
        b.complete(p(0), ops::write(2), OpValue::Bool(true));
        b.complete(p(0), ops::read(), OpValue::Int(2));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn new_old_inversion_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::write(1), OpValue::Bool(true));
        b.complete(p(0), ops::write(2), OpValue::Bool(true));
        b.complete(p(1), ops::read(), OpValue::Int(2));
        b.complete(p(1), ops::read(), OpValue::Int(1));
        let SpecializedResult::NotMember(pattern) = run(b) else {
            panic!("expected a violation");
        };
        assert_eq!(pattern.name, "stale-read");
        assert!(pattern.message.contains("new-old inversion"), "{pattern}");
    }

    #[test]
    fn reading_an_overwritten_value_late_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::write(1), OpValue::Bool(true));
        b.complete(p(0), ops::write(2), OpValue::Bool(true));
        b.complete(p(0), ops::read(), OpValue::Int(1));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn reading_the_initial_value_after_a_write_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::write(7), OpValue::Bool(true));
        b.complete(p(0), ops::read(), OpValue::Int(0));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn reading_a_never_written_value_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::read(), OpValue::Int(9));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn read_completing_before_its_write_starts_is_a_violation() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::read(), OpValue::Int(5));
        b.complete(p(0), ops::write(5), OpValue::Bool(true));
        assert!(matches!(run(b), SpecializedResult::NotMember(_)));
    }

    #[test]
    fn concurrent_writes_linearize_around_the_observed_value() {
        let mut b = HistoryBuilder::new();
        let w1 = b.invoke(p(0), ops::write(1));
        b.complete(p(1), ops::write(2), OpValue::Bool(true));
        b.respond(w1, OpValue::Bool(true));
        b.complete(p(0), ops::read(), OpValue::Int(2));
        assert_eq!(run(b), SpecializedResult::Member);
    }

    #[test]
    fn writing_the_initial_value_falls_back() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::write(0), OpValue::Bool(true));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Ambiguous)
        );
    }

    #[test]
    fn duplicate_writes_fall_back() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::write(3), OpValue::Bool(true));
        b.complete(p(0), ops::write(3), OpValue::Bool(true));
        assert_eq!(
            run(b),
            SpecializedResult::Fallback(FallbackReason::Ambiguous)
        );
    }

    #[test]
    fn pending_operations_fall_back() {
        let mut b = HistoryBuilder::new();
        b.invoke(p(0), ops::write(1));
        assert_eq!(run(b), SpecializedResult::Fallback(FallbackReason::Pending));
    }
}
