//! Streaming membership checking: feed events one at a time, get the verdict
//! at the end — or as soon as a violation appears.
//!
//! The offline half of the record / replay / check workflow: `linrv check`
//! streams a `linrv_trace::TraceReader` through a [`StreamingChecker`] without
//! materialising the trace first. Correctness rests on Lemma 7.1: the abstract
//! object "linearizable w.r.t. `S`" is **prefix-closed**, so the first prefix
//! that is not a member condemns every extension — the checker can stop
//! consuming events and report the violating prefix as the certificate.
//!
//! # Cost model
//!
//! The checker keeps **no incremental search state**: every scheduled
//! re-check decides the whole consumed prefix from scratch through a
//! [`StrategyChecker`] — the log-linear specialized monitor when the spec's
//! object kind has one and the prefix satisfies its preconditions, the
//! general (worst-case exponential, memoised) search otherwise. What is
//! amortised is therefore the *schedule*, not the per-check work:
//!
//! * [`StreamingChecker::new`] re-checks on a **geometric** schedule (at
//!   [`DEFAULT_STRIDE`] completed operations, then at every doubling). The
//!   prefix sizes checked sum to less than twice the final length, so the
//!   whole stream costs at most ~3× one batch check of the full history —
//!   `O(n log n)` end to end on the specialized path. Detection latency grows
//!   with the stream: a violation in the first half of a long stream may only
//!   be latched at the next doubling.
//! * [`StreamingChecker::with_stride`] re-checks every `stride` completed
//!   operations, bounding detection latency to `stride - 1` operations at the
//!   price of `n / stride` full re-checks (quadratic in `n` on the fallback
//!   path — fine for moderate streams, ruinous at millions of operations).
//!
//! The verdict is identical under every schedule; only latency and cost move.

use crate::specialized::StrategyChecker;
use crate::witness::Verdict;
use linrv_history::{Event, History};
use linrv_spec::SequentialSpec;

/// First re-check point of [`StreamingChecker::new`]'s geometric schedule, and
/// the historical default stride, in completed operations.
pub const DEFAULT_STRIDE: usize = 64;

/// When the checker re-decides the consumed prefix.
enum Schedule {
    /// Every `n` completed operations: bounded latency, `n / stride` checks.
    Every(usize),
    /// At [`DEFAULT_STRIDE`] and every doubling after it: amortised-constant
    /// overhead relative to the final check.
    Geometric,
}

/// An incremental linearizability checker over a stream of events.
///
/// ```
/// use linrv_check::stream::StreamingChecker;
/// use linrv_history::{Event, OpId, OpValue, Operation, ProcessId};
/// use linrv_spec::QueueSpec;
///
/// // Stride 1: re-decide after every completed operation.
/// let mut checker = StreamingChecker::with_stride(QueueSpec::new(), 1);
/// let p = ProcessId::new(0);
/// checker.push(Event::invocation(p, OpId::new(0), Operation::nullary("Dequeue")));
/// // A dequeue of a never-enqueued element: not linearizable.
/// let early = checker.push(Event::response(p, OpId::new(0), OpValue::Int(3)));
/// assert!(early.is_some(), "violations surface mid-stream");
/// let (_, verdict) = checker.finish();
/// assert!(verdict.is_violation());
/// ```
pub struct StreamingChecker<S: SequentialSpec> {
    object: StrategyChecker<S>,
    history: History,
    /// Completed operations seen so far (responses, cheaper than recounting).
    completed: usize,
    /// Re-check when `completed` reaches this.
    next_check: usize,
    schedule: Schedule,
    /// Latched at the first non-member prefix; never cleared (prefix closure).
    verdict: Option<Verdict>,
}

impl<S: SequentialSpec> StreamingChecker<S> {
    /// Starts a streaming check against `spec` on the geometric re-check
    /// schedule (first at [`DEFAULT_STRIDE`] completed operations, then at
    /// every doubling) — see the [module docs](self) for the cost model.
    pub fn new(spec: S) -> Self {
        StreamingChecker {
            object: StrategyChecker::new(spec),
            history: History::new(),
            completed: 0,
            next_check: DEFAULT_STRIDE,
            schedule: Schedule::Geometric,
            verdict: None,
        }
    }

    /// Starts a streaming check re-deciding every `stride` completed
    /// operations. `stride` trades detection latency (in operations) against
    /// re-check cost; the final verdict is the same for every stride.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_stride(spec: S, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        StreamingChecker {
            object: StrategyChecker::new(spec),
            history: History::new(),
            completed: 0,
            next_check: stride,
            schedule: Schedule::Every(stride),
            verdict: None,
        }
    }

    /// Feeds one event. Returns the latched verdict as soon as the consumed
    /// prefix stops being linearizable — by prefix closure the caller may then
    /// stop feeding events; pushing more is allowed but changes nothing.
    pub fn push(&mut self, event: Event) -> Option<&Verdict> {
        if self.verdict.is_some() {
            return self.verdict.as_ref();
        }
        let is_response = event.is_response();
        self.history.push(event);
        if is_response {
            self.completed += 1;
            if self.completed >= self.next_check {
                self.next_check = match self.schedule {
                    Schedule::Every(stride) => self.completed + stride,
                    Schedule::Geometric => self.completed * 2,
                };
                self.check_now();
            }
        }
        self.verdict.as_ref()
    }

    fn check_now(&mut self) {
        let verdict = self.timed_check();
        if verdict.is_violation() {
            self.verdict = Some(verdict);
        }
    }

    /// Decides the consumed prefix, timing the decision into
    /// `linrv_check_recheck_ns` when recording is enabled.
    fn timed_check(&self) -> Verdict {
        let span = linrv_obs::Span::start(crate::metrics::recheck_ns());
        let verdict = self.object.check(&self.history);
        drop(span);
        if linrv_obs::enabled() {
            crate::metrics::rechecks_total().inc();
        }
        verdict
    }

    /// Number of events consumed so far.
    pub fn events_consumed(&self) -> usize {
        self.history.len()
    }

    /// Ends the stream: runs the final membership decision (unless a violation
    /// was already latched) and returns the consumed history with its verdict.
    pub fn finish(mut self) -> (History, Verdict) {
        let verdict = match self.verdict.take() {
            Some(verdict) => verdict,
            None => self.timed_check(),
        };
        (self.history, verdict)
    }
}

/// Streams a fallible event source (e.g. a `linrv_trace::TraceReader`) through
/// a [`StreamingChecker`].
///
/// Stops consuming as soon as a violation is latched (prefix closure makes the
/// rest of the stream irrelevant) and returns the consumed history plus the
/// verdict.
///
/// # Errors
///
/// Propagates the first source error; events before it have been consumed.
pub fn check_events<S, E>(
    spec: S,
    events: impl IntoIterator<Item = Result<Event, E>>,
) -> Result<(History, Verdict), E>
where
    S: SequentialSpec,
{
    let mut checker = StreamingChecker::new(spec);
    for event in events {
        if checker.push(event?).is_some() {
            break;
        }
    }
    Ok(checker.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::LinSpec;
    use linrv_history::{HistoryBuilder, OpValue, Operation, ProcessId};
    use linrv_spec::ops::queue;
    use linrv_spec::QueueSpec;
    use std::convert::Infallible;

    fn ok(history: &History) -> impl Iterator<Item = Result<Event, Infallible>> + '_ {
        history.events().iter().cloned().map(Ok)
    }

    fn correct_history(ops: usize) -> History {
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        for i in 0..ops as i64 {
            let enq = b.invoke(p, queue::enqueue(i));
            b.respond(enq, OpValue::Bool(true));
            let deq = b.invoke(p, queue::dequeue());
            b.respond(deq, OpValue::Int(i));
        }
        b.build()
    }

    fn violating_history() -> History {
        let p = ProcessId::new(0);
        let mut b = HistoryBuilder::new();
        let deq = b.invoke(p, queue::dequeue());
        b.respond(deq, OpValue::Int(41)); // never enqueued
        for i in 0..10 {
            let enq = b.invoke(p, queue::enqueue(i));
            b.respond(enq, OpValue::Bool(true));
        }
        b.build()
    }

    #[test]
    fn streaming_verdict_matches_the_batch_checker() {
        for history in [correct_history(100), violating_history(), History::new()] {
            let (consumed, verdict) = check_events(QueueSpec::new(), ok(&history)).unwrap();
            let batch = LinSpec::new(QueueSpec::new()).check(&history);
            assert_eq!(verdict.is_violation(), batch.is_violation());
            // On the member path the whole stream is consumed.
            if !verdict.is_violation() {
                assert_eq!(consumed, history);
            }
        }
    }

    #[test]
    fn violations_stop_consumption_early() {
        let history = violating_history();
        let mut checker = StreamingChecker::with_stride(QueueSpec::new(), 1);
        let mut fed = 0;
        for event in history.events() {
            fed += 1;
            if checker.push(event.clone()).is_some() {
                break;
            }
        }
        assert_eq!(fed, 2, "stride 1 latches at the first bad response");
        let (consumed, verdict) = checker.finish();
        assert!(verdict.is_violation());
        assert_eq!(consumed.len(), 2);
        // The certificate is the violating prefix.
        assert_eq!(verdict.violation().unwrap().history, consumed);
    }

    #[test]
    fn stride_changes_latency_not_the_verdict() {
        let history = violating_history();
        for stride in [1, 2, 7, 1000] {
            let mut checker = StreamingChecker::with_stride(QueueSpec::new(), stride);
            for event in history.events() {
                checker.push(event.clone());
            }
            assert!(checker.finish().1.is_violation(), "stride {stride}");
        }
    }

    #[test]
    fn pushing_after_a_latched_verdict_is_inert() {
        let mut checker = StreamingChecker::with_stride(QueueSpec::new(), 1);
        for event in violating_history().events() {
            checker.push(event.clone());
        }
        let consumed = checker.events_consumed();
        let p = ProcessId::new(1);
        checker.push(Event::invocation(
            p,
            linrv_history::OpId::new(99),
            Operation::nullary("Dequeue"),
        ));
        assert_eq!(checker.events_consumed(), consumed);
    }

    #[test]
    fn source_errors_propagate() {
        let history = correct_history(3);
        let events = ok(&history)
            .map(|e| e.map_err(|_| "unreachable"))
            .chain(std::iter::once(Err("torn trace")));
        assert_eq!(
            check_events(QueueSpec::new(), events).unwrap_err(),
            "torn trace"
        );
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_is_rejected() {
        let _ = StreamingChecker::with_stride(QueueSpec::new(), 0);
    }
}
