//! Product-object specialisation: partition a history by key and check each part
//! independently.
//!
//! Some sequential objects are *products* of independent sub-objects: a set is the
//! product of one boolean flag per element, a key-value map is the product of one
//! register per key. For such objects a history is linearizable if and only if each
//! per-key projection is linearizable against the corresponding sub-object, which turns
//! the NP-hard general problem into many small independent instances. This is the
//! tractability observation behind the polynomial monitors the paper cites ([15, 32])
//! and the standard "partition by key" optimisation of practical linearizability
//! checkers.
//!
//! The decomposition is *only* valid for product objects: queues and stacks are not
//! products (their elements interact through ordering), so [`PartitionedSpec`] must not
//! be used for them. The type does not try to detect misuse; choosing a valid
//! partitioning function is the caller's obligation and is documented on
//! [`PartitionedSpec::new`].

use crate::genlin::GenLinObject;
use crate::specialized::StrategyChecker;
use crate::witness::{Verdict, Violation};
use linrv_history::{History, Operation};
use linrv_spec::SequentialSpec;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Linearizability of a product object, decided per partition.
///
/// The partition function maps each operation to the key of the sub-object it touches.
/// The history is a member iff every per-key projection is linearizable with respect to
/// the (shared) sub-object specification.
///
/// The per-key instances are independent, so they can be checked in any order or in
/// parallel: [`PartitionedSpec::split`] projects the history per key and
/// [`PartitionedSpec::sub_spec`] builds a fresh sub-specification, which is how
/// `linrv-pool` fans the partitions out across its checker threads. [`check`] decides
/// sequentially with an early exit on the first violation; [`check_map`] returns the
/// full per-key verdict map.
///
/// [`check`]: PartitionedSpec::check
/// [`check_map`]: PartitionedSpec::check_map
pub struct PartitionedSpec<S, F> {
    sub_spec_factory: Arc<dyn Fn() -> S + Send + Sync>,
    partition: F,
    description: String,
}

impl<S, F> PartitionedSpec<S, F>
where
    S: SequentialSpec,
    F: Fn(&Operation) -> i64 + Send + Sync,
{
    /// Creates a partitioned checker.
    ///
    /// `sub_spec_factory` builds a fresh sub-object specification for each key (each
    /// sub-object starts from its own initial state); `partition` maps an operation to
    /// the key of the sub-object it touches.
    ///
    /// **Correctness obligation:** the object being checked must be the independent
    /// product of the per-key sub-objects — operations on different keys must commute
    /// and never observe each other. Sets and key-value maps qualify; queues, stacks
    /// and counters do not.
    pub fn new(
        sub_spec_factory: impl Fn() -> S + Send + Sync + 'static,
        partition: F,
        description: impl Into<String>,
    ) -> Self {
        PartitionedSpec {
            sub_spec_factory: Arc::new(sub_spec_factory),
            partition,
            description: description.into(),
        }
    }

    /// A fresh sub-object specification, starting from its own initial state.
    pub fn sub_spec(&self) -> S {
        (self.sub_spec_factory)()
    }

    /// Projects a history into its per-key sub-histories, preserving event order.
    ///
    /// The per-key instances are independent and can be checked in any order or in
    /// parallel against [`PartitionedSpec::sub_spec`] instances.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] when the history is not well formed (no projection
    /// is meaningful then).
    pub fn split(&self, history: &History) -> Result<BTreeMap<i64, History>, Violation> {
        if let Err(err) = history.check_well_formed() {
            return Err(Violation::new(
                history.clone(),
                format!("history is not well formed: {err}"),
            ));
        }
        // Group events by partition key, preserving order.
        let mut per_key: BTreeMap<i64, Vec<linrv_history::Event>> = BTreeMap::new();
        let records = history.operations();
        let key_of: BTreeMap<_, _> = records
            .iter()
            .map(|r| (r.id, (self.partition)(&r.operation)))
            .collect();
        for event in history.events() {
            let key = key_of[&event.op_id];
            per_key.entry(key).or_default().push(event.clone());
        }
        Ok(per_key
            .into_iter()
            .map(|(key, events)| (key, History::from_events(events)))
            .collect())
    }

    /// Checks one per-key projection against a fresh sub-specification.
    ///
    /// Per-key sub-histories go through the strategy dispatch too: a specialized
    /// monitor (when the sub-spec's kind has one and the projection is unambiguous)
    /// beats the general search on every partition.
    pub fn check_partition(&self, sub_history: &History) -> Verdict {
        StrategyChecker::new(self.sub_spec()).check(sub_history)
    }

    /// Decides membership, returning the verdict of the first violating partition, if
    /// any.
    pub fn check(&self, history: &History) -> Verdict {
        let per_key = match self.split(history) {
            Ok(per_key) => per_key,
            Err(violation) => return Verdict::NotMember { violation },
        };
        let mut inconclusive = false;
        for (key, sub_history) in per_key {
            match self.check_partition(&sub_history) {
                Verdict::Member { .. } => {}
                Verdict::NotMember { violation } => {
                    return Verdict::NotMember {
                        violation: Violation {
                            explanation: format!("partition {key}: {}", violation.explanation),
                            ..violation
                        },
                    }
                }
                Verdict::Inconclusive => inconclusive = true,
            }
        }
        if inconclusive {
            Verdict::Inconclusive
        } else {
            Verdict::Member {
                linearization: None,
            }
        }
    }

    /// Checks **every** partition and returns the per-key verdict map — no early
    /// exit, so callers see each violating key, not just the first one.
    ///
    /// # Errors
    ///
    /// Returns a [`Violation`] when the history is not well formed.
    pub fn check_map(&self, history: &History) -> Result<BTreeMap<i64, Verdict>, Violation> {
        Ok(self
            .split(history)?
            .into_iter()
            .map(|(key, sub_history)| (key, self.check_partition(&sub_history)))
            .collect())
    }
}

impl<S, F> GenLinObject for PartitionedSpec<S, F>
where
    S: SequentialSpec,
    F: Fn(&Operation) -> i64 + Send + Sync,
{
    fn contains(&self, history: &History) -> bool {
        !self.check(history).is_violation()
    }

    fn description(&self) -> String {
        self.description.clone()
    }
}

/// A partitioned checker for the integer-set object: operations are partitioned by the
/// element they touch, and each element behaves as an independent "present/absent"
/// sub-object (here checked with the full [`SetSpec`](linrv_spec::SetSpec) restricted
/// to that element's operations).
pub fn partitioned_set() -> PartitionedSpec<linrv_spec::SetSpec, fn(&Operation) -> i64> {
    fn key(op: &Operation) -> i64 {
        op.arg.as_int().unwrap_or(0)
    }
    PartitionedSpec::new(
        linrv_spec::SetSpec::new,
        key as fn(&Operation) -> i64,
        "linearizability w.r.t. the set object (partitioned by element)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::LinSpec;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::set as ops;
    use linrv_spec::SetSpec;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn partitioned_and_generic_checkers_agree_on_correct_history() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(1), OpValue::Bool(true));
        b.complete(p(1), ops::add(2), OpValue::Bool(true));
        b.complete(p(0), ops::contains(1), OpValue::Bool(true));
        b.complete(p(1), ops::remove(2), OpValue::Bool(true));
        b.complete(p(1), ops::contains(2), OpValue::Bool(false));
        let h = b.build();
        let generic = LinSpec::new(SetSpec::new());
        let partitioned = partitioned_set();
        assert!(generic.contains(&h));
        assert!(partitioned.contains(&h));
    }

    #[test]
    fn partitioned_and_generic_checkers_agree_on_violation() {
        // Contains(1) returns true even though Add(1) never happened.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(2), OpValue::Bool(true));
        b.complete(p(1), ops::contains(1), OpValue::Bool(true));
        let h = b.build();
        let generic = LinSpec::new(SetSpec::new());
        let partitioned = partitioned_set();
        assert!(!generic.contains(&h));
        let verdict = partitioned.check(&h);
        let violation = verdict.violation().expect("violation");
        assert!(violation.explanation.contains("partition 1"));
    }

    #[test]
    fn violations_in_one_partition_do_not_leak_into_others() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(5), OpValue::Bool(true));
        b.complete(p(1), ops::contains(7), OpValue::Bool(true)); // bad: 7 never added
        let h = b.build();
        let partitioned = partitioned_set();
        assert!(!partitioned.contains(&h));
    }

    #[test]
    fn check_map_reports_every_violating_key() {
        // Two independent bad keys plus one good one: `check` stops at the
        // first, `check_map` names both.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(5), OpValue::Bool(true));
        b.complete(p(1), ops::contains(1), OpValue::Bool(true)); // bad: never added
        b.complete(p(1), ops::contains(9), OpValue::Bool(true)); // bad: never added
        let h = b.build();
        let partitioned = partitioned_set();
        let map = partitioned.check_map(&h).expect("well formed");
        assert_eq!(map.len(), 3);
        assert!(map[&5].is_member());
        assert!(map[&1].is_violation());
        assert!(map[&9].is_violation());
    }

    #[test]
    fn split_projects_per_key_and_preserves_order() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::add(1), OpValue::Bool(true));
        b.complete(p(1), ops::add(2), OpValue::Bool(true));
        b.complete(p(0), ops::remove(1), OpValue::Bool(true));
        let h = b.build();
        let partitioned = partitioned_set();
        let parts = partitioned.split(&h).expect("well formed");
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&1].len(), 4);
        assert_eq!(parts[&2].len(), 2);
        // Each projection is itself checkable against a fresh sub-spec.
        for part in parts.values() {
            assert!(partitioned.check_partition(part).is_member());
        }
    }

    #[test]
    fn malformed_histories_are_rejected() {
        let mut h = History::new();
        h.push(linrv_history::Event::response(
            p(0),
            linrv_history::OpId::new(0),
            OpValue::Unit,
        ));
        assert!(partitioned_set().check(&h).is_violation());
    }

    #[test]
    fn description_mentions_partitioning() {
        assert!(partitioned_set().description().contains("partitioned"));
    }
}
