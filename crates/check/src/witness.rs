//! Verdicts and violation witnesses produced by the membership checkers.

use crate::pattern::BadPattern;
use linrv_history::{History, OpId};
use std::fmt;

/// The deepest state the general Wing–Gong search reached before concluding
/// that no linearization exists.
///
/// When the search dies, the longest linearizable prefix it built is genuine
/// forensic evidence: the operations *not* in `linearized` are the ones no
/// specification-respecting order could absorb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchFrontier {
    /// Operations of the deepest linearized prefix, in the order the search
    /// placed them.
    pub linearized: Vec<OpId>,
    /// Complete operations the search had to place in total.
    pub total_complete: usize,
    /// Search nodes explored before exhaustion.
    pub explored: usize,
}

impl fmt::Display for SearchFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "search exhausted after {} states; deepest prefix linearized {} of {} complete operations",
            self.explored,
            self.linearized.len(),
            self.total_complete
        )
    }
}

/// Why a history was judged not to belong to an abstract object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending history (returned to the client as the ERROR witness, in the
    /// sense of Definition 3.1's "witness").
    pub history: History,
    /// Human-readable explanation of the failure.
    pub explanation: String,
    /// The named bad pattern behind the verdict, when a specialized monitor
    /// produced it.
    pub pattern: Option<BadPattern>,
    /// The state where the general search died, when the general search
    /// produced the verdict by exhaustion.
    pub frontier: Option<SearchFrontier>,
}

impl Violation {
    /// A violation with no structured evidence attached.
    pub fn new(history: History, explanation: impl Into<String>) -> Self {
        Violation {
            history,
            explanation: explanation.into(),
            pattern: None,
            frontier: None,
        }
    }

    /// Attaches the named bad pattern that witnessed the violation.
    #[must_use]
    pub fn with_pattern(mut self, pattern: BadPattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Attaches the frontier where the general search died.
    #[must_use]
    pub fn with_frontier(mut self, frontier: SearchFrontier) -> Self {
        self.frontier = Some(frontier);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.explanation)?;
        write!(f, "{}", self.history)
    }
}

/// Result of checking a history against an abstract object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history is a member; for linearizability, a linearization is attached.
    Member {
        /// A sequential (or interval-sequential, flattened) history witnessing
        /// membership, when the checker produces one.
        linearization: Option<History>,
    },
    /// The history is not a member.
    NotMember {
        /// Evidence of the violation.
        violation: Violation,
    },
    /// The checker exhausted its exploration budget without reaching a decision.
    ///
    /// Only produced when an explicit budget is configured
    /// (see [`CheckerConfig::max_explored_states`](crate::CheckerConfig)).
    Inconclusive,
}

impl Verdict {
    /// `true` when the verdict is [`Verdict::Member`].
    pub fn is_member(&self) -> bool {
        matches!(self, Verdict::Member { .. })
    }

    /// `true` when the verdict is [`Verdict::NotMember`].
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::NotMember { .. })
    }

    /// The linearization witness, when membership was established with one.
    pub fn linearization(&self) -> Option<&History> {
        match self {
            Verdict::Member { linearization } => linearization.as_ref(),
            _ => None,
        }
    }

    /// The violation, when membership was refuted.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::NotMember { violation } => Some(violation),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Member {
                linearization: Some(lin),
            } => {
                writeln!(f, "member; linearization:")?;
                write!(f, "{lin}")
            }
            Verdict::Member {
                linearization: None,
            } => write!(f, "member"),
            Verdict::NotMember { violation } => {
                writeln!(f, "NOT a member:")?;
                write!(f, "{violation}")
            }
            Verdict::Inconclusive => write!(f, "inconclusive (exploration budget exhausted)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let member = Verdict::Member {
            linearization: None,
        };
        assert!(member.is_member());
        assert!(!member.is_violation());
        assert!(member.linearization().is_none());

        let violation = Verdict::NotMember {
            violation: Violation::new(History::new(), "no linearization exists"),
        };
        assert!(violation.is_violation());
        assert!(violation.violation().is_some());
        assert!(!Verdict::Inconclusive.is_member());
    }

    #[test]
    fn display_is_informative() {
        let v = Verdict::NotMember {
            violation: Violation::new(History::new(), "boom"),
        };
        assert!(v.to_string().contains("boom"));
        assert!(Verdict::Inconclusive.to_string().contains("budget"));
    }

    #[test]
    fn structured_evidence_rides_along() {
        let violation = Violation::new(History::new(), "specialized queue monitor: boom")
            .with_pattern(BadPattern::new("never-added", "boom").with_values(vec![3]));
        assert_eq!(violation.pattern.as_ref().unwrap().name, "never-added");
        assert!(violation.frontier.is_none());

        let frontier = SearchFrontier {
            linearized: vec![OpId::new(0)],
            total_complete: 3,
            explored: 17,
        };
        assert!(frontier.to_string().contains("1 of 3 complete operations"));
        let violation = Violation::new(History::new(), "dead end").with_frontier(frontier);
        assert_eq!(violation.frontier.as_ref().unwrap().explored, 17);
    }
}
