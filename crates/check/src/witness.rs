//! Verdicts and violation witnesses produced by the membership checkers.

use linrv_history::History;
use std::fmt;

/// Why a history was judged not to belong to an abstract object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The offending history (returned to the client as the ERROR witness, in the
    /// sense of Definition 3.1's "witness").
    pub history: History,
    /// Human-readable explanation of the failure.
    pub explanation: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.explanation)?;
        write!(f, "{}", self.history)
    }
}

/// Result of checking a history against an abstract object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The history is a member; for linearizability, a linearization is attached.
    Member {
        /// A sequential (or interval-sequential, flattened) history witnessing
        /// membership, when the checker produces one.
        linearization: Option<History>,
    },
    /// The history is not a member.
    NotMember {
        /// Evidence of the violation.
        violation: Violation,
    },
    /// The checker exhausted its exploration budget without reaching a decision.
    ///
    /// Only produced when an explicit budget is configured
    /// (see [`CheckerConfig::max_explored_states`](crate::CheckerConfig)).
    Inconclusive,
}

impl Verdict {
    /// `true` when the verdict is [`Verdict::Member`].
    pub fn is_member(&self) -> bool {
        matches!(self, Verdict::Member { .. })
    }

    /// `true` when the verdict is [`Verdict::NotMember`].
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::NotMember { .. })
    }

    /// The linearization witness, when membership was established with one.
    pub fn linearization(&self) -> Option<&History> {
        match self {
            Verdict::Member { linearization } => linearization.as_ref(),
            _ => None,
        }
    }

    /// The violation, when membership was refuted.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::NotMember { violation } => Some(violation),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Member {
                linearization: Some(lin),
            } => {
                writeln!(f, "member; linearization:")?;
                write!(f, "{lin}")
            }
            Verdict::Member {
                linearization: None,
            } => write!(f, "member"),
            Verdict::NotMember { violation } => {
                writeln!(f, "NOT a member:")?;
                write!(f, "{violation}")
            }
            Verdict::Inconclusive => write!(f, "inconclusive (exploration budget exhausted)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let member = Verdict::Member {
            linearization: None,
        };
        assert!(member.is_member());
        assert!(!member.is_violation());
        assert!(member.linearization().is_none());

        let violation = Verdict::NotMember {
            violation: Violation {
                history: History::new(),
                explanation: "no linearization exists".into(),
            },
        };
        assert!(violation.is_violation());
        assert!(violation.violation().is_some());
        assert!(!Verdict::Inconclusive.is_member());
    }

    #[test]
    fn display_is_informative() {
        let v = Verdict::NotMember {
            violation: Violation {
                history: History::new(),
                explanation: "boom".into(),
            },
        };
        assert!(v.to_string().contains("boom"));
        assert!(Verdict::Inconclusive.to_string().contains("budget"));
    }
}
