//! Linearizability membership (Definition 4.2), decided with a Wing–Gong search plus
//! Lowe-style memoisation.
//!
//! Given a finite history `E` and a sequential specification `O`, the checker decides
//! whether there is an extension `E'` of `E` and a sequential history `S` of `O` such
//! that `comp(E')` and `S` are equivalent and `<_{comp(E')} ⊆ <_S`.
//!
//! The search linearizes operations one at a time. An operation may be chosen next when
//! every *complete* operation that precedes it in real time has already been
//! linearized. Complete operations must reproduce their recorded response; pending
//! operations may be linearized with any response allowed by the specification (this
//! realises the extension `E'`), or never linearized at all (this realises `comp(·)`).
//!
//! Deciding linearizability of a finite history is NP-complete in general
//! (Gibbons & Korach), so the search is exponential in the worst case; memoisation of
//! visited `(linearized-set, specification-state)` pairs — Lowe's optimisation — keeps
//! the common cases fast. [`PartitionedSpec`](crate::PartitionedSpec) provides the
//! tractable product-object fast path.

use crate::genlin::GenLinObject;
use crate::witness::{SearchFrontier, Verdict, Violation};
use linrv_history::{History, HistoryBuilder, OpRecord, OpValue};
use linrv_spec::SequentialSpec;
use std::collections::HashSet;

/// Tuning knobs for the linearizability checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerConfig {
    /// Memoise visited `(linearized-set, state)` pairs (Lowe's optimisation).
    pub memoize: bool,
    /// Abort after exploring this many search nodes, returning
    /// [`Verdict::Inconclusive`]. `None` means no budget.
    pub max_explored_states: Option<usize>,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            memoize: true,
            max_explored_states: None,
        }
    }
}

/// Linearizability with respect to a sequential specification, as an abstract object:
/// the set of all finite histories linearizable with respect to `S` (Remark 7.1).
///
/// By Lemma 7.1 this object is prefix- and similarity-closed, hence a member of
/// `GenLin`; it is the object handed to the verifier and to self-enforced
/// implementations for ordinary sequential objects.
#[derive(Debug, Clone)]
pub struct LinSpec<S> {
    spec: S,
    config: CheckerConfig,
}

impl<S: SequentialSpec> LinSpec<S> {
    /// Wraps a sequential specification with the default checker configuration.
    pub fn new(spec: S) -> Self {
        LinSpec {
            spec,
            config: CheckerConfig::default(),
        }
    }

    /// Wraps a sequential specification with an explicit checker configuration.
    pub fn with_config(spec: S, config: CheckerConfig) -> Self {
        LinSpec { spec, config }
    }

    /// The underlying sequential specification.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// Decides linearizability of `history`, returning a linearization or a violation
    /// witness.
    pub fn check(&self, history: &History) -> Verdict {
        if let Err(err) = history.check_well_formed() {
            return Verdict::NotMember {
                violation: Violation::new(
                    history.clone(),
                    format!("history is not well formed: {err}"),
                ),
            };
        }

        let records = history.operations();
        if records.is_empty() {
            return Verdict::Member {
                linearization: Some(History::new()),
            };
        }

        let search = Search::new(&self.spec, &records, &self.config);
        match search.run() {
            SearchOutcome::Found(order) => {
                let linearization = build_linearization(&records, &order);
                Verdict::Member {
                    linearization: Some(linearization),
                }
            }
            SearchOutcome::Exhausted(frontier) => Verdict::NotMember {
                violation: Violation::new(
                    history.clone(),
                    format!(
                        "no linearization with respect to the {} specification exists ({frontier})",
                        self.spec.kind()
                    ),
                )
                .with_frontier(frontier),
            },
            SearchOutcome::BudgetExceeded => Verdict::Inconclusive,
        }
    }

    /// Convenience: a linearization of `history`, when one exists.
    pub fn linearization(&self, history: &History) -> Option<History> {
        match self.check(history) {
            Verdict::Member { linearization } => linearization,
            _ => None,
        }
    }
}

impl<S: SequentialSpec> GenLinObject for LinSpec<S> {
    fn contains(&self, history: &History) -> bool {
        // An inconclusive verdict (possible only under an explicit budget) fails open:
        // the verifier never reports ERROR without a genuine witness.
        !self.check(history).is_violation()
    }

    fn description(&self) -> String {
        format!("linearizability w.r.t. the {} object", self.spec.kind())
    }
}

/// Reconstructs the sequential history from the chosen linearization order.
fn build_linearization(records: &[OpRecord], order: &[(usize, OpValue)]) -> History {
    let mut builder = HistoryBuilder::new();
    for (index, response) in order {
        let record = &records[*index];
        builder.invoke_with_id(record.process, record.id, record.operation.clone());
        builder.respond(record.id, response.clone());
    }
    builder.build()
}

enum SearchOutcome {
    /// A linearization was found: the operations in order, with their responses.
    Found(Vec<(usize, OpValue)>),
    /// The whole search space was explored without success; the frontier
    /// records the deepest prefix reached.
    Exhausted(SearchFrontier),
    /// The exploration budget ran out.
    BudgetExceeded,
}

/// Compact set of operation indices, hashable for memoisation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }
}

struct Search<'a, S: SequentialSpec> {
    spec: &'a S,
    records: &'a [OpRecord],
    config: &'a CheckerConfig,
}

impl<'a, S: SequentialSpec> Search<'a, S> {
    fn new(spec: &'a S, records: &'a [OpRecord], config: &'a CheckerConfig) -> Self {
        Search {
            spec,
            records,
            config,
        }
    }

    fn run(&self) -> SearchOutcome {
        let n = self.records.len();
        let mut linearized = BitSet::new(n);
        let mut path: Vec<(usize, OpValue)> = Vec::new();
        let mut memo: HashSet<(BitSet, S::State)> = HashSet::new();
        let mut explored: usize = 0;
        let mut deepest: Vec<usize> = Vec::new();
        let complete_count = self.records.iter().filter(|r| r.is_complete()).count();

        let found = self.dfs(
            &mut linearized,
            self.spec.initial_state(),
            &mut path,
            &mut memo,
            &mut explored,
            complete_count,
            0,
            &mut deepest,
        );
        match found {
            Some(true) => SearchOutcome::Found(path),
            Some(false) => SearchOutcome::Exhausted(SearchFrontier {
                linearized: deepest.iter().map(|&i| self.records[i].id).collect(),
                total_complete: complete_count,
                explored,
            }),
            None => SearchOutcome::BudgetExceeded,
        }
    }

    /// Depth-first search. Returns `Some(true)` when a linearization was completed,
    /// `Some(false)` when this subtree holds none, `None` when the budget ran out.
    ///
    /// `deepest` tracks the longest linearized prefix reached anywhere in the
    /// search — the frontier reported when the search exhausts.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        linearized: &mut BitSet,
        state: S::State,
        path: &mut Vec<(usize, OpValue)>,
        memo: &mut HashSet<(BitSet, S::State)>,
        explored: &mut usize,
        complete_count: usize,
        linearized_complete: usize,
        deepest: &mut Vec<usize>,
    ) -> Option<bool> {
        if linearized_complete == complete_count {
            return Some(true);
        }
        *explored += 1;
        if let Some(budget) = self.config.max_explored_states {
            if *explored > budget {
                return None;
            }
        }
        if self.config.memoize && !memo.insert((linearized.clone(), state.clone())) {
            return Some(false);
        }

        for (i, record) in self.records.iter().enumerate() {
            if linearized.contains(i) {
                continue;
            }
            if !self.is_minimal(linearized, record) {
                continue;
            }
            let successors = match self.spec.step(&state, &record.operation) {
                Ok(successors) => successors,
                Err(_) => continue, // operation outside the interface can never linearize
            };
            for (next_state, response) in successors {
                // Complete operations must reproduce their recorded response; pending
                // operations accept any response allowed by the specification.
                if let Some(actual) = &record.response {
                    if *actual != response {
                        continue;
                    }
                }
                linearized.insert(i);
                path.push((i, response));
                if path.len() > deepest.len() {
                    *deepest = path.iter().map(|&(index, _)| index).collect();
                }
                let next_complete = linearized_complete + usize::from(record.is_complete());
                match self.dfs(
                    linearized,
                    next_state,
                    path,
                    memo,
                    explored,
                    complete_count,
                    next_complete,
                    deepest,
                ) {
                    Some(true) => return Some(true),
                    Some(false) => {
                        path.pop();
                        linearized.remove(i);
                    }
                    None => return None,
                }
            }
        }
        Some(false)
    }

    /// An operation may be linearized next when every complete operation that precedes
    /// it in real time (`res(other)` before `inv(op)`) is already linearized.
    fn is_minimal(&self, linearized: &BitSet, op: &OpRecord) -> bool {
        self.records.iter().enumerate().all(|(j, other)| {
            if linearized.contains(j) || other.id == op.id {
                return true;
            }
            match other.response_index {
                Some(res) => res > op.invocation_index,
                None => true,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, Operation, ProcessId};
    use linrv_spec::ops::{queue, stack};
    use linrv_spec::{QueueSpec, RegisterSpec, StackSpec};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Figure 1 (top): p1 Push(1):true and p2 Pop():1 overlap — linearizable.
    #[test]
    fn figure1_top_is_linearizable() {
        let mut b = HistoryBuilder::new();
        let push = b.invoke(p(0), stack::push(1));
        let pop = b.invoke(p(1), stack::pop());
        b.respond(pop, OpValue::Int(1));
        b.respond(push, OpValue::Bool(true));
        let object = LinSpec::new(StackSpec::new());
        let verdict = object.check(&b.build());
        assert!(verdict.is_member());
        let lin = verdict.linearization().unwrap();
        assert!(StackSpec::new().accepts_sequential_history(lin));
    }

    /// Figure 1 (bottom): Pop():1 completes strictly before Push(1) starts — not
    /// linearizable even though per-process views match the top history.
    #[test]
    fn figure1_bottom_is_not_linearizable() {
        let mut b = HistoryBuilder::new();
        let pop = b.invoke(p(1), stack::pop());
        b.respond(pop, OpValue::Int(1));
        let push = b.invoke(p(0), stack::push(1));
        b.respond(push, OpValue::Bool(true));
        let object = LinSpec::new(StackSpec::new());
        assert!(object.check(&b.build()).is_violation());
    }

    /// Figure 3 (top): three-process stack history with the linearization
    /// ⟨Push(2)⟩⟨Push(1)⟩⟨Pop():1⟩⟨Pop():2⟩.
    #[test]
    fn figure3_top_is_linearizable() {
        // p1: |-- Push(1):true --|        |-- Pop():2 --|
        // p2:     |------- Pop():1 -------|
        // p3:  |-- Push(2):true --|
        let mut b = HistoryBuilder::new();
        let push1 = b.invoke(p(0), stack::push(1));
        let push2 = b.invoke(p(2), stack::push(2));
        let pop1 = b.invoke(p(1), stack::pop());
        b.respond(push1, OpValue::Bool(true));
        b.respond(push2, OpValue::Bool(true));
        b.respond(pop1, OpValue::Int(1));
        let pop2 = b.invoke(p(0), stack::pop());
        b.respond(pop2, OpValue::Int(2));
        let object = LinSpec::new(StackSpec::new());
        assert!(object.check(&b.build()).is_member());
    }

    /// Figure 3 (bottom): Pop():empty cannot start when the stack is provably
    /// non-empty — not linearizable.
    #[test]
    fn figure3_bottom_is_not_linearizable() {
        // p1 pushes 1 and it completes; later p2 pops empty while only pushes happened.
        let mut b = HistoryBuilder::new();
        let push1 = b.invoke(p(0), stack::push(1));
        b.respond(push1, OpValue::Bool(true));
        let push2 = b.invoke(p(2), stack::push(2));
        b.respond(push2, OpValue::Bool(true));
        let pop_empty = b.invoke(p(1), stack::pop());
        b.respond(pop_empty, OpValue::Empty);
        let pop1 = b.invoke(p(0), stack::pop());
        b.respond(pop1, OpValue::Int(1));
        let object = LinSpec::new(StackSpec::new());
        assert!(object.check(&b.build()).is_violation());
    }

    /// Figure 5 (bottom, actual history): deq():1 completes before enq(1) starts.
    #[test]
    fn queue_dequeue_before_enqueue_is_not_linearizable() {
        let mut b = HistoryBuilder::new();
        let deq = b.invoke(p(1), queue::dequeue());
        b.respond(deq, OpValue::Int(1));
        let enq = b.invoke(p(0), queue::enqueue(1));
        b.respond(enq, OpValue::Bool(true));
        let object = LinSpec::new(QueueSpec::new());
        assert!(object.check(&b.build()).is_violation());
    }

    /// Figure 5 (bottom, detected history): the same operations overlapping are
    /// linearizable — the "stretched" sketch hides the violation.
    #[test]
    fn queue_overlapping_enqueue_dequeue_is_linearizable() {
        let mut b = HistoryBuilder::new();
        let enq = b.invoke(p(0), queue::enqueue(1));
        let deq = b.invoke(p(1), queue::dequeue());
        b.respond(deq, OpValue::Int(1));
        b.respond(enq, OpValue::Bool(true));
        let object = LinSpec::new(QueueSpec::new());
        assert!(object.check(&b.build()).is_member());
    }

    #[test]
    fn pending_operations_may_be_completed_or_dropped() {
        // A pending Enqueue(1) can be linearized to explain a completed Dequeue():1.
        let mut b = HistoryBuilder::new();
        let enq = b.invoke(p(0), queue::enqueue(1));
        let _ = enq;
        let deq = b.invoke(p(1), queue::dequeue());
        b.respond(deq, OpValue::Int(1));
        let object = LinSpec::new(QueueSpec::new());
        let verdict = object.check(&b.build());
        assert!(verdict.is_member());

        // A pending Dequeue() is simply dropped.
        let mut b = HistoryBuilder::new();
        let enq = b.invoke(p(0), queue::enqueue(1));
        b.respond(enq, OpValue::Bool(true));
        b.invoke(p(1), queue::dequeue());
        assert!(object.check(&b.build()).is_member());
    }

    #[test]
    fn empty_history_is_linearizable() {
        let object = LinSpec::new(QueueSpec::new());
        let verdict = object.check(&History::new());
        assert!(verdict.is_member());
        assert!(verdict.linearization().unwrap().is_empty());
    }

    #[test]
    fn malformed_history_is_rejected_with_explanation() {
        let mut h = History::new();
        h.push(linrv_history::Event::response(
            p(0),
            linrv_history::OpId::new(0),
            OpValue::Unit,
        ));
        let object = LinSpec::new(QueueSpec::new());
        let verdict = object.check(&h);
        let violation = verdict.violation().expect("not well formed");
        assert!(violation.explanation.contains("well formed"));
    }

    #[test]
    fn register_new_old_inversion_is_detected() {
        // W(1) completes, then W(2) completes, then a read returns 1: not linearizable.
        use linrv_spec::ops::register as reg;
        let mut b = HistoryBuilder::new();
        let w1 = b.invoke(p(0), reg::write(1));
        b.respond(w1, OpValue::Bool(true));
        let w2 = b.invoke(p(0), reg::write(2));
        b.respond(w2, OpValue::Bool(true));
        let r = b.invoke(p(1), reg::read());
        b.respond(r, OpValue::Int(1));
        let object = LinSpec::new(RegisterSpec::new());
        assert!(object.check(&b.build()).is_violation());
    }

    #[test]
    fn unknown_operations_make_history_non_linearizable() {
        let mut b = HistoryBuilder::new();
        let op = b.invoke(p(0), Operation::nullary("Frobnicate"));
        b.respond(op, OpValue::Unit);
        let object = LinSpec::new(QueueSpec::new());
        assert!(object.check(&b.build()).is_violation());
    }

    #[test]
    fn budget_exhaustion_is_inconclusive_and_fails_open() {
        // A moderately concurrent correct history with a budget of one node.
        let mut b = HistoryBuilder::new();
        let mut ops = Vec::new();
        for i in 0..4 {
            ops.push(b.invoke(p(i), queue::enqueue(i64::from(i))));
        }
        for op in ops {
            b.respond(op, OpValue::Bool(true));
        }
        let history = b.build();
        let object = LinSpec::with_config(
            QueueSpec::new(),
            CheckerConfig {
                memoize: true,
                max_explored_states: Some(1),
            },
        );
        assert_eq!(object.check(&history), Verdict::Inconclusive);
        assert!(object.contains(&history)); // fails open
    }

    #[test]
    fn memoization_does_not_change_verdicts() {
        let mut b = HistoryBuilder::new();
        let e1 = b.invoke(p(0), queue::enqueue(1));
        let e2 = b.invoke(p(1), queue::enqueue(2));
        b.respond(e2, OpValue::Bool(true));
        b.respond(e1, OpValue::Bool(true));
        let d1 = b.invoke(p(0), queue::dequeue());
        let d2 = b.invoke(p(1), queue::dequeue());
        b.respond(d1, OpValue::Int(2));
        b.respond(d2, OpValue::Int(1));
        let history = b.build();

        let with = LinSpec::new(QueueSpec::new());
        let without = LinSpec::with_config(
            QueueSpec::new(),
            CheckerConfig {
                memoize: false,
                max_explored_states: None,
            },
        );
        assert_eq!(
            with.check(&history).is_member(),
            without.check(&history).is_member()
        );
    }

    #[test]
    fn genlin_description_names_the_object() {
        let object = LinSpec::new(QueueSpec::new());
        assert!(object.description().contains("queue"));
    }
}
