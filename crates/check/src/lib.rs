//! # linrv-check
//!
//! Decision procedures for the correctness conditions of Castañeda & Rodríguez
//! (PODC 2023): linearizability (Definition 4.2), set-linearizability,
//! interval-linearizability for one-shot tasks, and the umbrella family **GenLin**
//! (Definition 7.2) — abstract objects closed under prefixes and *similarity*.
//!
//! The paper's interactive model assumes every process "can locally test if a given
//! finite history satisfies `P_O`" (Section 3); this crate is that local test. It is
//! used by the wait-free predictive verifier `V_O` (Figure 10) and by the self-enforced
//! implementations `V_{O,A}` (Figure 11) in `linrv-core`.
//!
//! * [`GenLinObject`] — membership predicate over finite histories with the closure
//!   properties of `GenLin` documented and testable.
//! * [`LinSpec`] — linearizability with respect to a [`SequentialSpec`](linrv_spec::SequentialSpec), decided with a
//!   Wing–Gong search enhanced with Lowe-style memoisation.
//! * [`PartitionedSpec`] — product-object specialisation (partition the history by key
//!   and check each part independently), the tractable fast path for sets and
//!   key-value maps.
//! * [`SetLinSpec`] — set-linearizability for set-sequential specifications.
//! * [`tasks`] — one-shot tasks and their interval-linearizability membership
//!   (Section 9.3).
//!
//! ```
//! use linrv_check::{GenLinObject, LinSpec};
//! use linrv_spec::QueueSpec;
//! use linrv_history::{HistoryBuilder, Operation, OpValue, ProcessId};
//!
//! // Figure 5 (bottom), detected history: enq(1) and deq():1 overlap — linearizable.
//! let mut b = HistoryBuilder::new();
//! let enq = b.invoke(ProcessId::new(0), Operation::new("Enqueue", OpValue::Int(1)));
//! let deq = b.invoke(ProcessId::new(1), Operation::nullary("Dequeue"));
//! b.respond(deq, OpValue::Int(1));
//! b.respond(enq, OpValue::Bool(true));
//! let object = LinSpec::new(QueueSpec::new());
//! assert!(object.contains(&b.build()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genlin;
pub mod linearizability;
pub mod metrics;
pub mod partitioned;
pub mod pattern;
pub mod setlin;
pub mod specialized;
pub mod stream;
pub mod tasks;
pub mod witness;

pub use genlin::{ClosureReport, GenLinObject};
pub use linearizability::{CheckerConfig, LinSpec};
pub use partitioned::PartitionedSpec;
pub use pattern::BadPattern;
pub use setlin::{SetLinCounterSpec, SetLinSpec, SetSequentialSpec};
pub use specialized::{
    check_specialized, CheckerStrategy, FallbackReason, Route, SpecializedResult, StrategyChecker,
};
pub use stream::{check_events, StreamingChecker};
pub use tasks::{OneShotTaskObject, Task, TaskInstance};
pub use witness::{SearchFrontier, Verdict, Violation};
