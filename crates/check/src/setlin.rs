//! Set-linearizability membership.
//!
//! Set-linearizability (Neiger, cited as \[81\] in the paper) generalises linearizability
//! by letting a *set* of mutually concurrent operations take effect simultaneously: a
//! set-linearization is a sequence of non-empty *concurrency classes*; the object's
//! transition function consumes a whole class at a time. Linearizability is the special
//! case where every class is a singleton. Like linearizability, set-linearizability is
//! prefix- and similarity-closed, hence belongs to `GenLin` (Section 7.1).

use crate::genlin::GenLinObject;
use crate::witness::{Verdict, Violation};
use linrv_history::{History, OpRecord, OpValue, Operation};
use linrv_spec::SequentialSpec;
use std::collections::HashSet;

/// A set-sequential specification: a state machine whose transition function consumes a
/// non-empty *batch* of operations that take effect simultaneously.
pub trait SetSequentialSpec: Send + Sync {
    /// State of the machine.
    type State: Clone + Eq + std::hash::Hash + std::fmt::Debug + Send + Sync;

    /// Initial state.
    fn initial_state(&self) -> Self::State;

    /// Applies a non-empty batch of operations simultaneously. Returns the successor
    /// state and one response per operation (in batch order), or `None` when the batch
    /// is not allowed in `state`.
    fn step_batch(
        &self,
        state: &Self::State,
        batch: &[Operation],
    ) -> Option<(Self::State, Vec<OpValue>)>;

    /// Human-readable name of the object.
    fn name(&self) -> String;
}

/// Adapter: any sequential specification is a set-sequential specification whose only
/// allowed batches are singletons. Set-linearizability then coincides with
/// linearizability, which the tests use as a cross-check.
#[derive(Debug, Clone)]
pub struct Singletons<S>(pub S);

impl<S: SequentialSpec> SetSequentialSpec for Singletons<S> {
    type State = S::State;

    fn initial_state(&self) -> Self::State {
        self.0.initial_state()
    }

    fn step_batch(
        &self,
        state: &Self::State,
        batch: &[Operation],
    ) -> Option<(Self::State, Vec<OpValue>)> {
        if batch.len() != 1 {
            return None;
        }
        let successors = self.0.step(state, &batch[0]).ok()?;
        successors
            .into_iter()
            .next()
            .map(|(next, response)| (next, vec![response]))
    }

    fn name(&self) -> String {
        format!("{} (singleton batches)", self.0.kind())
    }
}

/// The classic set-linearizable counter: concurrent `Inc` operations may be merged into
/// one concurrency class; every `Inc` of the class returns the counter value *before*
/// the class and the counter then grows by the class size. `Read` operations in a class
/// also return the pre-class value.
///
/// This object is set-linearizable but **not** linearizable for histories where two
/// overlapping `Inc`s both return the same value — the canonical separation example.
#[derive(Debug, Clone, Copy, Default)]
pub struct SetLinCounterSpec;

impl SetLinCounterSpec {
    /// Creates the specification.
    pub fn new() -> Self {
        SetLinCounterSpec
    }
}

impl SetSequentialSpec for SetLinCounterSpec {
    type State = i64;

    fn initial_state(&self) -> Self::State {
        0
    }

    fn step_batch(
        &self,
        state: &Self::State,
        batch: &[Operation],
    ) -> Option<(Self::State, Vec<OpValue>)> {
        let mut increments = 0i64;
        let mut responses = Vec::with_capacity(batch.len());
        for op in batch {
            match op.kind.as_str() {
                "Inc" => {
                    increments += 1;
                    responses.push(OpValue::Int(*state));
                }
                "Read" => responses.push(OpValue::Int(*state)),
                _ => return None,
            }
        }
        Some((*state + increments, responses))
    }

    fn name(&self) -> String {
        "set-linearizable counter".into()
    }
}

/// Set-linearizability with respect to a set-sequential specification, as an abstract
/// object (the set of all finite histories that are set-linearizable w.r.t. the spec).
pub struct SetLinSpec<S> {
    spec: S,
    /// Largest concurrency class the search will try. Classes larger than this bound
    /// are never proposed, which keeps the subset enumeration tractable; histories
    /// needing larger classes are (conservatively) rejected.
    max_class_size: usize,
}

impl<S: SetSequentialSpec> SetLinSpec<S> {
    /// Creates the checker with a default maximum concurrency-class size of 8.
    pub fn new(spec: S) -> Self {
        SetLinSpec {
            spec,
            max_class_size: 8,
        }
    }

    /// Creates the checker with an explicit maximum concurrency-class size.
    pub fn with_max_class_size(spec: S, max_class_size: usize) -> Self {
        SetLinSpec {
            spec,
            max_class_size: max_class_size.max(1),
        }
    }

    /// Decides set-linearizability of `history`.
    pub fn check(&self, history: &History) -> Verdict {
        if let Err(err) = history.check_well_formed() {
            return Verdict::NotMember {
                violation: Violation::new(
                    history.clone(),
                    format!("history is not well formed: {err}"),
                ),
            };
        }
        let records = history.operations();
        let complete_count = records.iter().filter(|r| r.is_complete()).count();
        let mut memo = HashSet::new();
        let mut linearized = vec![false; records.len()];
        if self.dfs(
            &records,
            &mut linearized,
            self.spec.initial_state(),
            complete_count,
            0,
            &mut memo,
        ) {
            Verdict::Member {
                linearization: None,
            }
        } else {
            Verdict::NotMember {
                violation: Violation::new(
                    history.clone(),
                    format!("no set-linearization w.r.t. {} exists", self.spec.name()),
                ),
            }
        }
    }

    fn dfs(
        &self,
        records: &[OpRecord],
        linearized: &mut Vec<bool>,
        state: S::State,
        complete_count: usize,
        done_complete: usize,
        memo: &mut HashSet<(Vec<bool>, S::State)>,
    ) -> bool {
        if done_complete == complete_count {
            return true;
        }
        if !memo.insert((linearized.clone(), state.clone())) {
            return false;
        }
        // Candidates: operations every one of whose real-time predecessors is linearized.
        let candidates: Vec<usize> = (0..records.len())
            .filter(|&i| !linearized[i] && self.is_minimal(records, linearized, i))
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let limit = candidates.len().min(self.max_class_size);
        // Enumerate non-empty subsets of the candidates (bounded size), try each as the
        // next concurrency class.
        for mask in 1u64..(1u64 << candidates.len().min(20)) {
            let class: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &idx)| idx)
                .collect();
            if class.is_empty() || class.len() > limit {
                continue;
            }
            // The whole class must be mutually concurrent in the history: no member may
            // really precede another member.
            if !self.mutually_concurrent(records, &class) {
                continue;
            }
            let ops: Vec<Operation> = class
                .iter()
                .map(|&i| records[i].operation.clone())
                .collect();
            let Some((next_state, responses)) = self.spec.step_batch(&state, &ops) else {
                continue;
            };
            // Complete operations must reproduce their recorded response.
            let matches = class.iter().zip(&responses).all(|(&i, response)| {
                records[i]
                    .response
                    .as_ref()
                    .map(|r| r == response)
                    .unwrap_or(true)
            });
            if !matches {
                continue;
            }
            for &i in &class {
                linearized[i] = true;
            }
            let newly_complete = class.iter().filter(|&&i| records[i].is_complete()).count();
            if self.dfs(
                records,
                linearized,
                next_state,
                complete_count,
                done_complete + newly_complete,
                memo,
            ) {
                return true;
            }
            for &i in &class {
                linearized[i] = false;
            }
        }
        false
    }

    fn is_minimal(&self, records: &[OpRecord], linearized: &[bool], i: usize) -> bool {
        let op = &records[i];
        records.iter().enumerate().all(|(j, other)| {
            if linearized[j] || j == i {
                return true;
            }
            match other.response_index {
                Some(res) => res > op.invocation_index,
                None => true,
            }
        })
    }

    fn mutually_concurrent(&self, records: &[OpRecord], class: &[usize]) -> bool {
        class.iter().all(|&i| {
            class.iter().all(|&j| {
                if i == j {
                    return true;
                }
                match records[i].response_index {
                    Some(res) => res > records[j].invocation_index,
                    None => true,
                }
            })
        })
    }
}

impl<S: SetSequentialSpec> GenLinObject for SetLinSpec<S> {
    fn contains(&self, history: &History) -> bool {
        !self.check(history).is_violation()
    }

    fn description(&self) -> String {
        format!("set-linearizability w.r.t. {}", self.spec.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::LinSpec;
    use linrv_history::{HistoryBuilder, ProcessId};
    use linrv_spec::ops::counter as ops;
    use linrv_spec::CounterSpec;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Two overlapping Incs that both return 0: set-linearizable (one class of two
    /// Incs) but not linearizable.
    fn merged_increments() -> History {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::inc());
        let c = b.invoke(p(1), ops::inc());
        b.respond(a, OpValue::Int(0));
        b.respond(c, OpValue::Int(0));
        let r = b.invoke(p(0), ops::read());
        b.respond(r, OpValue::Int(2));
        b.build()
    }

    #[test]
    fn merged_increments_are_set_linearizable_but_not_linearizable() {
        let h = merged_increments();
        let setlin = SetLinSpec::new(SetLinCounterSpec::new());
        let lin = LinSpec::new(CounterSpec::new());
        assert!(setlin.contains(&h));
        assert!(!lin.contains(&h));
    }

    #[test]
    fn sequential_increments_are_both() {
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        b.complete(p(1), ops::inc(), OpValue::Int(1));
        b.complete(p(0), ops::read(), OpValue::Int(2));
        let h = b.build();
        assert!(SetLinSpec::new(SetLinCounterSpec::new()).contains(&h));
        assert!(LinSpec::new(CounterSpec::new()).contains(&h));
    }

    #[test]
    fn non_overlapping_increments_cannot_be_merged() {
        // Inc():0 completes before the second Inc starts, yet the second also returns 0.
        let mut b = HistoryBuilder::new();
        b.complete(p(0), ops::inc(), OpValue::Int(0));
        b.complete(p(1), ops::inc(), OpValue::Int(0));
        let h = b.build();
        assert!(!SetLinSpec::new(SetLinCounterSpec::new()).contains(&h));
    }

    #[test]
    fn singleton_adapter_matches_linearizability() {
        use linrv_spec::ops::queue;
        use linrv_spec::QueueSpec;
        // Linearizable queue history.
        let mut b = HistoryBuilder::new();
        let e = b.invoke(p(0), queue::enqueue(1));
        let d = b.invoke(p(1), queue::dequeue());
        b.respond(d, OpValue::Int(1));
        b.respond(e, OpValue::Bool(true));
        let good = b.build();
        // Non-linearizable queue history.
        let mut b = HistoryBuilder::new();
        let d = b.invoke(p(1), queue::dequeue());
        b.respond(d, OpValue::Int(1));
        let e = b.invoke(p(0), queue::enqueue(1));
        b.respond(e, OpValue::Bool(true));
        let bad = b.build();

        let setlin = SetLinSpec::new(Singletons(QueueSpec::new()));
        let lin = LinSpec::new(QueueSpec::new());
        assert_eq!(setlin.contains(&good), lin.contains(&good));
        assert_eq!(setlin.contains(&bad), lin.contains(&bad));
        assert!(setlin.contains(&good));
        assert!(!setlin.contains(&bad));
    }

    #[test]
    fn pending_operations_are_optional() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::inc());
        b.respond(a, OpValue::Int(0));
        b.invoke(p(1), ops::inc()); // pending
        let h = b.build();
        assert!(SetLinSpec::new(SetLinCounterSpec::new()).contains(&h));
    }

    #[test]
    fn description_and_malformed_histories() {
        let checker = SetLinSpec::new(SetLinCounterSpec::new());
        assert!(checker.description().contains("set-linearizability"));
        let mut h = History::new();
        h.push(linrv_history::Event::response(
            p(0),
            linrv_history::OpId::new(0),
            OpValue::Unit,
        ));
        assert!(checker.check(&h).is_violation());
    }
}
