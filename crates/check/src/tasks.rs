//! One-shot tasks and their runtime-verifiable abstract objects (Section 9.3).
//!
//! A *task* is a one-shot distributed problem: every process invokes exactly one
//! operation, proposing an input, and must produce an output such that the global
//! input/output assignment satisfies the task's relation. The paper notes that any task
//! can be modelled as a one-shot interval-sequential object, which belongs to `GenLin`,
//! and hence task solvability can be predictively runtime verified; the only difference
//! is that the interaction is finite.
//!
//! [`OneShotTaskObject`] turns a [`Task`] into a [`GenLinObject`]: a history is a
//! member when every process performs at most one operation and the outputs produced
//! so far are consistent with the task relation, taking *participation* into account —
//! an output may only depend on inputs of operations that did not start strictly after
//! it (the real-time "validity" the paper's views mechanism is designed to catch,
//! cf. the consensus discussion in Section 10).

use crate::genlin::GenLinObject;
use linrv_history::{History, OpValue};
use std::collections::BTreeSet;

/// A one-shot task: a relation between the multiset of proposed inputs and the outputs
/// each participant may produce.
pub trait Task: Send + Sync {
    /// Name of the task (for diagnostics).
    fn name(&self) -> String;

    /// Decides whether the outputs are allowed given the participating inputs.
    ///
    /// `inputs` are the proposals of the processes considered participating;
    /// `outputs` are the values decided so far (one per completed operation).
    fn allowed(&self, inputs: &[i64], outputs: &[i64]) -> bool;
}

/// Consensus as a task: all outputs agree on a single value that is one of the inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConsensusTask;

impl Task for ConsensusTask {
    fn name(&self) -> String {
        "consensus".into()
    }

    fn allowed(&self, inputs: &[i64], outputs: &[i64]) -> bool {
        let distinct: BTreeSet<i64> = outputs.iter().copied().collect();
        match distinct.len() {
            0 => true,
            1 => {
                let v = *distinct.iter().next().expect("non-empty");
                inputs.contains(&v)
            }
            _ => false,
        }
    }
}

/// `k`-set agreement: outputs are inputs, and at most `k` distinct values are decided.
#[derive(Debug, Clone, Copy)]
pub struct KSetAgreementTask {
    /// Maximum number of distinct decided values.
    pub k: usize,
}

impl Task for KSetAgreementTask {
    fn name(&self) -> String {
        format!("{}-set agreement", self.k)
    }

    fn allowed(&self, inputs: &[i64], outputs: &[i64]) -> bool {
        let distinct: BTreeSet<i64> = outputs.iter().copied().collect();
        distinct.len() <= self.k && outputs.iter().all(|v| inputs.contains(v))
    }
}

/// A single invocation of a task operation: the proposing process's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskInstance {
    /// The proposed input value.
    pub input: i64,
    /// The decided output, if the operation completed.
    pub output: Option<i64>,
}

/// The abstract object of a one-shot task: the set of histories in which every process
/// proposes at most once and the decided outputs are consistent with the task relation
/// over the *participating* inputs.
///
/// Participation is computed per output: the inputs available to an output are those of
/// operations that do not start strictly after the output's operation responds
/// (formally, inputs of operations `op'` with `¬(op ≺_E op')` where `op` is the
/// responding operation). This makes the object prefix- and similarity-closed, hence a
/// `GenLin` member, while still catching real-time validity violations such as a solo
/// run deciding a value different from its own input.
pub struct OneShotTaskObject<T> {
    task: T,
    /// Name of the single high-level operation of the task (e.g. `"Decide"`).
    operation_kind: String,
}

impl<T: Task> OneShotTaskObject<T> {
    /// Wraps a task whose single operation is named `operation_kind`.
    pub fn new(task: T, operation_kind: impl Into<String>) -> Self {
        OneShotTaskObject {
            task,
            operation_kind: operation_kind.into(),
        }
    }
}

impl<T: Task> GenLinObject for OneShotTaskObject<T> {
    fn contains(&self, history: &History) -> bool {
        if !history.is_well_formed() {
            return false;
        }
        let records = history.operations();
        // One-shot: every process invokes at most one operation, of the right kind,
        // with an integer input.
        let mut seen = BTreeSet::new();
        for r in &records {
            if !seen.insert(r.process) {
                return false;
            }
            if r.operation.kind != self.operation_kind {
                return false;
            }
            if r.operation.arg.as_int().is_none() {
                return false;
            }
            if let Some(out) = &r.response {
                if out.as_int().is_none() {
                    return false;
                }
            }
        }
        // For every completed operation, the decided outputs so far must be explainable
        // by the inputs of operations that were invoked no later than that response.
        for r in &records {
            let Some(response_index) = r.response_index else {
                continue;
            };
            let participating: Vec<i64> = records
                .iter()
                .filter(|other| other.invocation_index < response_index)
                .filter_map(|other| other.operation.arg.as_int())
                .collect();
            let outputs: Vec<i64> = records
                .iter()
                .filter(|other| {
                    other
                        .response_index
                        .map(|idx| idx <= response_index)
                        .unwrap_or(false)
                })
                .filter_map(|other| other.response.as_ref().and_then(OpValue::as_int))
                .collect();
            if !self.task.allowed(&participating, &outputs) {
                return false;
            }
        }
        true
    }

    fn description(&self) -> String {
        format!("one-shot task {}", self.task.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, Operation, ProcessId};
    use linrv_spec::ops::consensus as ops;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn consensus_object() -> OneShotTaskObject<ConsensusTask> {
        OneShotTaskObject::new(ConsensusTask, "Decide")
    }

    #[test]
    fn agreeing_outputs_on_a_proposed_value_are_accepted() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(5));
        let c = b.invoke(p(1), ops::decide(7));
        b.respond(a, OpValue::Int(5));
        b.respond(c, OpValue::Int(5));
        assert!(consensus_object().contains(&b.build()));
    }

    #[test]
    fn disagreement_is_rejected() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(5));
        let c = b.invoke(p(1), ops::decide(7));
        b.respond(a, OpValue::Int(5));
        b.respond(c, OpValue::Int(7));
        assert!(!consensus_object().contains(&b.build()));
    }

    #[test]
    fn solo_run_must_decide_its_own_input() {
        // Section 10: a solo Decide(3) returning 5 violates validity. Observing only
        // (input, output) pairs cannot catch this; the history (with real-time order)
        // can.
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(3));
        b.respond(a, OpValue::Int(5));
        let c = b.invoke(p(1), ops::decide(5));
        b.respond(c, OpValue::Int(5));
        assert!(!consensus_object().contains(&b.build()));
    }

    #[test]
    fn overlapping_proposer_may_explain_the_decision() {
        // Decide(3) overlaps Decide(5); deciding 5 is then valid.
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(3));
        let c = b.invoke(p(1), ops::decide(5));
        b.respond(a, OpValue::Int(5));
        b.respond(c, OpValue::Int(5));
        assert!(consensus_object().contains(&b.build()));
    }

    #[test]
    fn processes_may_decide_at_most_once() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(1));
        b.respond(a, OpValue::Int(1));
        let again = b.invoke(p(0), ops::decide(2));
        b.respond(again, OpValue::Int(1));
        assert!(!consensus_object().contains(&b.build()));
    }

    #[test]
    fn wrong_operation_kind_is_rejected() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), Operation::new("Propose", OpValue::Int(1)));
        b.respond(a, OpValue::Int(1));
        assert!(!consensus_object().contains(&b.build()));
    }

    #[test]
    fn k_set_agreement_allows_up_to_k_values() {
        let object = OneShotTaskObject::new(KSetAgreementTask { k: 2 }, "Decide");
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(1));
        let c = b.invoke(p(1), ops::decide(2));
        let d = b.invoke(p(2), ops::decide(3));
        b.respond(a, OpValue::Int(1));
        b.respond(c, OpValue::Int(2));
        b.respond(d, OpValue::Int(1));
        assert!(object.contains(&b.build()));

        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(1));
        let c = b.invoke(p(1), ops::decide(2));
        let d = b.invoke(p(2), ops::decide(3));
        b.respond(a, OpValue::Int(1));
        b.respond(c, OpValue::Int(2));
        b.respond(d, OpValue::Int(3));
        assert!(!object.contains(&b.build()));
    }

    #[test]
    fn prefixes_of_members_are_members() {
        let mut b = HistoryBuilder::new();
        let a = b.invoke(p(0), ops::decide(5));
        let c = b.invoke(p(1), ops::decide(7));
        b.respond(a, OpValue::Int(5));
        b.respond(c, OpValue::Int(5));
        let h = b.build();
        let object = consensus_object();
        assert!(object.contains(&h));
        for prefix in h.prefixes() {
            assert!(object.contains(&prefix), "prefix closure violated");
        }
    }

    #[test]
    fn description_names_the_task() {
        assert!(consensus_object().description().contains("consensus"));
        assert!(OneShotTaskObject::new(KSetAgreementTask { k: 3 }, "Decide")
            .description()
            .contains("3-set"));
    }
}
