//! Named bad patterns: structured evidence behind a `NotMember` verdict.
//!
//! The specialized monitors decide non-membership from individually sound
//! *bad patterns* in the style of Bouajjani et al. and Lee & Mathur. Until
//! now that evidence was collapsed into a bare explanation string; this
//! module keeps it structured so downstream tooling (`linrv explain`, the
//! `linrv-cert/1` certificate) can name the reason a history is not
//! linearizable and point at the culprit values.

use std::fmt;

/// A named bad pattern witnessed by a specialized monitor.
///
/// The `name` is drawn from a small closed vocabulary (kebab-case, stable
/// across releases — see `CERT.md`):
///
/// | name | meaning |
/// |---|---|
/// | `bad-response` | a response of an impossible shape, or a foreign operation |
/// | `duplicate-add` | a value inserted more often than the object can hold |
/// | `duplicate-remove` | a value removed more often than it was added |
/// | `never-added` | a value observed or removed that was never added |
/// | `remove-before-add` | a removal/read completing before its matching add was invoked |
/// | `order-inversion` | a removal order the real-time order forbids (FIFO inversion, LIFO crossing, priority inversion) |
/// | `stale-read` | a register read of an overwritten (or initial) value after an overwriting write completed |
/// | `covered-empty` | an empty response inside a window where the object is necessarily non-empty |
/// | `count-mismatch` | counter results inconsistent with the number of increments |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPattern {
    /// Stable kebab-case pattern name.
    pub name: &'static str,
    /// Human-readable explanation of the concrete occurrence.
    pub message: String,
    /// The culprit values (operation arguments or responses), when the
    /// pattern names specific values.
    pub values: Vec<i64>,
}

impl BadPattern {
    /// A pattern with no culprit values.
    pub fn new(name: &'static str, message: impl Into<String>) -> Self {
        BadPattern {
            name,
            message: message.into(),
            values: Vec::new(),
        }
    }

    /// Attaches the culprit values.
    #[must_use]
    pub fn with_values(mut self, values: Vec<i64>) -> Self {
        self.values = values;
        self
    }
}

impl fmt::Display for BadPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_the_message() {
        let pattern = BadPattern::new("never-added", "value 7 dequeued but never enqueued")
            .with_values(vec![7]);
        assert_eq!(pattern.to_string(), "value 7 dequeued but never enqueued");
        assert_eq!(pattern.name, "never-added");
        assert_eq!(pattern.values, [7]);
    }
}
