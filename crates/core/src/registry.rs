//! Capacity-bounded dynamic process registration.
//!
//! The paper's constructions are parameterised by a fixed number of processes `n`
//! because their snapshot base objects have one entry per process. Call sites,
//! however, should not have to thread `ProcessId`s around manually: the facade
//! crate hands out per-process *session* handles instead. [`ProcessRegistry`]
//! bridges the two worlds — it owns the `n` entry slots of a construction and
//! leases zero-based process identifiers to callers, recycling a slot once its
//! holder releases it.
//!
//! Recycling is sound for the DRV/verifier constructions: the per-process
//! persistent sets (`set_i` of Figure 7, `res_i` of Figure 10) survive across
//! leases, and because a slot is only ever re-leased after its previous holder
//! released it, all operations attributed to process `p_i` remain totally ordered
//! in real time — exactly the *process sequentiality* property of Remark 7.2.
//!
//! The one obligation on callers: a slot must **not** be released while an
//! operation announced on it is still incomplete (an announcement can never be
//! withdrawn, so a new holder would overlap it and make the history ill-formed).
//! The facade upholds this by *retiring* the slot of a session dropped with a
//! staged-but-uncommitted operation — modelling a crashed process.

use linrv_history::ProcessId;
use parking_lot::Mutex;
use std::fmt;

/// Error returned when every process slot of a construction is currently leased.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryFull {
    /// Total number of slots of the construction.
    pub capacity: usize,
}

impl fmt::Display for RegistryFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "all {} process slots are registered; release a session first or \
             rebuild with a larger capacity",
            self.capacity
        )
    }
}

impl std::error::Error for RegistryFull {}

/// A capacity-bounded lease manager for the process slots of a construction.
///
/// Identifiers are handed out lowest-index-first; released identifiers return to
/// the pool and are re-leased before fresh ones, which keeps the set of live
/// indices dense (snapshot scans touch every entry, so dense is cheap).
pub struct ProcessRegistry {
    capacity: usize,
    /// `free[i]` is `true` when slot `i` is available for lease.
    free: Mutex<Vec<bool>>,
}

impl ProcessRegistry {
    /// Creates a registry managing `capacity` slots, all initially free.
    pub fn new(capacity: usize) -> Self {
        ProcessRegistry {
            capacity,
            free: Mutex::new(vec![true; capacity]),
        }
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently leased slots.
    pub fn registered(&self) -> usize {
        self.capacity - self.free.lock().iter().filter(|f| **f).count()
    }

    /// Leases the lowest free slot.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when every slot is leased.
    pub fn register(&self) -> Result<ProcessId, RegistryFull> {
        let mut free = self.free.lock();
        match free.iter().position(|f| *f) {
            Some(index) => {
                free[index] = false;
                Ok(ProcessId::new(index as u32))
            }
            None => Err(RegistryFull {
                capacity: self.capacity,
            }),
        }
    }

    /// Returns a leased slot to the pool.
    ///
    /// Releasing an id that is not currently leased (double release, or an id the
    /// caller minted directly) is a no-op rather than an error: the registry
    /// coexists with the raw API, where callers construct `ProcessId`s freely.
    pub fn release(&self, process: ProcessId) {
        let mut free = self.free.lock();
        if let Some(slot) = free.get_mut(process.index()) {
            *slot = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_lowest_free_slot_first() {
        let registry = ProcessRegistry::new(2);
        assert_eq!(registry.register().unwrap().index(), 0);
        assert_eq!(registry.register().unwrap().index(), 1);
        assert_eq!(registry.register(), Err(RegistryFull { capacity: 2 }));
        assert_eq!(registry.registered(), 2);
    }

    #[test]
    fn released_slots_are_recycled() {
        let registry = ProcessRegistry::new(2);
        let a = registry.register().unwrap();
        let _b = registry.register().unwrap();
        registry.release(a);
        assert_eq!(registry.register().unwrap(), a);
    }

    #[test]
    fn double_release_is_a_no_op() {
        let registry = ProcessRegistry::new(1);
        let a = registry.register().unwrap();
        registry.release(a);
        registry.release(a);
        registry.release(ProcessId::new(17)); // out of range: ignored
        assert_eq!(registry.registered(), 0);
        assert_eq!(registry.register().unwrap(), a);
    }

    #[test]
    fn error_message_names_the_capacity() {
        let registry = ProcessRegistry::new(0);
        let err = registry.register().unwrap_err();
        assert!(err.to_string().contains("all 0 process slots"));
        assert_eq!(err.capacity, 0);
    }

    #[test]
    fn concurrent_registration_hands_out_distinct_ids() {
        use std::sync::Arc;
        let registry = Arc::new(ProcessRegistry::new(8));
        let ids = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let registry = Arc::clone(&registry);
                    scope.spawn(move || registry.register().unwrap())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<std::collections::BTreeSet<_>>()
        });
        assert_eq!(ids.len(), 8);
        assert!(registry.register().is_err());
    }
}
