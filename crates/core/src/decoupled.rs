//! Decoupled self-enforced implementations `D_{O,A}` (Figure 12, Section 9.2).
//!
//! In the coupled construction (Figure 11) every process both produces responses and
//! verifies them, paying the membership test on its critical path. The decoupled
//! variant splits the roles: **producers** obtain responses from `A*` and publish the
//! resulting view tuples in the shared snapshot `M`, returning the response immediately;
//! **verifiers** run a separate loop that scans `M`, rebuilds the sketch and reports
//! `ERROR` with a witness when it is not a member of the object.
//!
//! As the paper notes, `D_{O,A}` may return responses that are later found incorrect
//! (verification lags production), but every violation is eventually detected as long as
//! not all verifiers crash.

use crate::drv::Drv;
use crate::registry::RegistryFull;
use crate::verifier::{Verifier, VerifierOutcome};
use crate::view::{TupleSet, View};
use linrv_check::GenLinObject;
use linrv_history::{History, OpValue, Operation, ProcessId};
use linrv_runtime::ConcurrentObject;
use linrv_snapshot::{AfekSnapshot, Snapshot};
use linrv_spec::ObjectKind;
use parking_lot::Mutex;
use std::sync::Arc;

/// The producer side of `D_{O,A}`: a concurrent object whose operations are served by
/// `A*` and whose view tuples are published for asynchronous verification
/// (Figure 12, producer code).
pub struct DecoupledProducer<A> {
    drv: Drv<A>,
    results: Arc<dyn Snapshot<TupleSet>>,
    local_results: Vec<Mutex<TupleSet>>,
}

impl<A: ConcurrentObject> DecoupledProducer<A> {
    /// Applies an operation: obtain `(y, λ)` from `A*`, publish the tuple, return `y`
    /// immediately (Lines 01–05 of Figure 12).
    ///
    /// The publish step mirrors [`Verifier::record`] over the producer's own
    /// `res_i` sets (producers and verifiers share the snapshot `M` but not the
    /// local sets); keep the two in sync when changing either.
    pub fn apply_and_publish(&self, process: ProcessId, op: &Operation) -> OpValue {
        let response = self.drv.apply_drv(process, op);
        let local = {
            let mut res = self.local_results[process.index()].lock();
            res.insert(response.tuple());
            res.clone()
        };
        self.results.write(process.index(), local);
        response.value
    }

    /// The wrapped implementation.
    pub fn inner(&self) -> &A {
        self.drv.inner()
    }

    /// Number of producer processes.
    pub fn processes(&self) -> usize {
        self.local_results.len()
    }

    /// Leases a free producer slot (capacity-bounded dynamic registration).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when all `processes()` slots are leased.
    pub fn register(&self) -> Result<ProcessId, RegistryFull> {
        self.drv.register()
    }

    /// Returns a leased producer slot to the pool.
    pub fn release(&self, process: ProcessId) {
        self.drv.release(process);
    }
}

impl<A: ConcurrentObject> ConcurrentObject for DecoupledProducer<A> {
    fn kind(&self) -> ObjectKind {
        self.drv.inner().kind()
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        self.apply_and_publish(process, op)
    }

    fn name(&self) -> String {
        format!("decoupled producer over {}", self.drv.inner().name())
    }
}

/// The verifier side of `D_{O,A}`: scans the published tuples and checks the sketch
/// (Figure 12, verifier code).
pub struct DecoupledVerifier<O> {
    verifier: Verifier<O>,
}

impl<O: GenLinObject> DecoupledVerifier<O> {
    /// One iteration of the verifier loop (Lines 07–11): scan, rebuild, test.
    pub fn check_once(&self) -> VerifierOutcome {
        self.verifier.verdict_from_scan(ProcessId::new(0))
    }

    /// Runs `rounds` verification iterations and returns the witnesses of all rounds
    /// that reported `ERROR`.
    pub fn run(&self, rounds: usize) -> Vec<History> {
        (0..rounds)
            .filter_map(|_| match self.check_once() {
                VerifierOutcome::Error { witness } => Some(witness),
                _ => None,
            })
            .collect()
    }

    /// The abstract object being verified against.
    pub fn object(&self) -> &O {
        self.verifier.object()
    }
}

/// Builds a decoupled self-enforced implementation: `producers` processes may invoke
/// the returned producer object; any number of verifier threads may share the returned
/// verifier.
pub fn decoupled<A: ConcurrentObject, O: GenLinObject>(
    inner: A,
    object: O,
    producers: usize,
) -> (DecoupledProducer<A>, DecoupledVerifier<O>) {
    let results: Arc<dyn Snapshot<TupleSet>> =
        Arc::new(AfekSnapshot::new(producers, TupleSet::new()));
    let announcements: Arc<dyn Snapshot<View>> =
        Arc::new(AfekSnapshot::new(producers, View::new()));
    let producer = DecoupledProducer {
        drv: Drv::with_snapshot(inner, announcements),
        results: Arc::clone(&results),
        local_results: (0..producers)
            .map(|_| Mutex::new(TupleSet::new()))
            .collect(),
    };
    let verifier = DecoupledVerifier {
        verifier: Verifier::with_snapshot(object, results),
    };
    (producer, verifier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_check::LinSpec;
    use linrv_runtime::faulty::LossyQueue;
    use linrv_runtime::impls::MsQueue;
    use linrv_runtime::{Workload, WorkloadKind};
    use linrv_spec::ops::queue;
    use linrv_spec::QueueSpec;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn producers_return_immediately_and_verifier_confirms_correct_runs() {
        let (producer, verifier) = decoupled(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
        assert_eq!(
            producer.apply(p(0), &queue::enqueue(1)),
            OpValue::Bool(true)
        );
        assert_eq!(producer.apply(p(1), &queue::dequeue()), OpValue::Int(1));
        assert!(verifier.check_once().is_ok());
        assert!(verifier.run(3).is_empty());
        assert!(producer.name().contains("decoupled"));
        assert_eq!(producer.kind(), ObjectKind::Queue);
        assert_eq!(producer.processes(), 2);
        assert!(verifier.object().description().contains("queue"));
    }

    #[test]
    fn verifier_eventually_detects_a_lossy_queue() {
        let (producer, verifier) = decoupled(LossyQueue::new(2), LinSpec::new(QueueSpec::new()), 1);
        for i in 0..6 {
            producer.apply(p(0), &queue::enqueue(i));
        }
        for _ in 0..6 {
            producer.apply(p(0), &queue::dequeue());
        }
        let witnesses = verifier.run(2);
        assert!(!witnesses.is_empty(), "violation never detected");
        assert!(!LinSpec::new(QueueSpec::new()).contains(&witnesses[0]));
    }

    #[test]
    fn concurrent_producers_with_background_verifier() {
        let (producer, verifier) = decoupled(MsQueue::new(), LinSpec::new(QueueSpec::new()), 3);
        let producer = Arc::new(producer);
        let workload = Workload::new(WorkloadKind::Queue, 37);
        let verifier_errors = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..3usize {
                let producer = Arc::clone(&producer);
                let ops = workload.operations_for(t, 15);
                handles.push(scope.spawn(move || {
                    for op in &ops {
                        producer.apply(p(t as u32), op);
                    }
                }));
            }
            // The verifier runs concurrently with the producers.
            let errors = verifier.run(20);
            for h in handles {
                h.join().unwrap();
            }
            errors
        });
        // Concurrent verification of a correct queue must not raise false alarms, and a
        // final check over the complete run must also pass.
        assert!(verifier_errors.is_empty());
        assert!(verifier.check_once().is_ok());
    }
}
