//! Self-enforced implementations `V_{O,A}` (Figure 11, Theorem 8.2).
//!
//! A self-enforced implementation wraps an arbitrary implementation `A` so that **every
//! non-ERROR response is runtime verified**: each `Apply` first obtains `(y_i, λ_i)`
//! from the `DRV` counterpart `A*`, exchanges the resulting tuple through the
//! verifier's snapshot object, rebuilds the sketch and tests membership. If the sketch
//! is a member of the object, the underlying response is returned; otherwise the
//! operation returns `ERROR` together with the witness.
//!
//! Theorem 8.2: `V_{O,A}` has the same progress condition as `A`; if `A` is correct,
//! `V_{O,A}` is correct (and never returns ERROR); if `A` is incorrect, every execution
//! of `V_{O,A}` is correct up to a prefix after which new operations return ERROR with
//! a witness; and at any time a certificate of the computation so far can be produced.

use crate::certificate::Certificate;
use crate::drv::Drv;
use crate::registry::RegistryFull;
use crate::verifier::{Verifier, VerifierOutcome};
use linrv_check::GenLinObject;
use linrv_history::{History, OpValue, Operation, ProcessId};
use linrv_runtime::ConcurrentObject;
use linrv_snapshot::Snapshot;
use linrv_spec::ObjectKind;
use std::sync::Arc;

/// The typed response of a self-enforced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnforcedResponse {
    /// The value returned to the caller: the underlying response when verification
    /// succeeded, [`OpValue::Error`] otherwise.
    pub value: OpValue,
    /// The underlying implementation's response (always available, even on ERROR).
    pub underlying: OpValue,
    /// The witness history, when verification failed.
    pub witness: Option<History>,
}

impl EnforcedResponse {
    /// Returns `true` when the response was verified correct.
    pub fn is_verified(&self) -> bool {
        self.witness.is_none()
    }
}

/// A self-enforced implementation: `A` wrapped into `A*` plus an embedded predictive
/// verifier, so that its responses verify themselves (Figure 11).
pub struct SelfEnforced<A, O> {
    drv: Drv<A>,
    verifier: Verifier<O>,
}

impl<A: ConcurrentObject, O: GenLinObject> SelfEnforced<A, O> {
    /// Wraps `inner` for a system of `processes` processes, verifying against `object`.
    pub fn new(inner: A, object: O, processes: usize) -> Self {
        SelfEnforced {
            drv: Drv::new(inner, processes),
            verifier: Verifier::new(object, processes),
        }
    }

    /// Wraps `inner` with explicit snapshot implementations for the announcement array
    /// (`N` of Figure 7) and the result array (`M` of Figures 10–11).
    pub fn with_snapshots(
        inner: A,
        object: O,
        announcements: Arc<dyn Snapshot<crate::view::View>>,
        results: Arc<dyn Snapshot<crate::view::TupleSet>>,
    ) -> Self {
        SelfEnforced {
            drv: Drv::with_snapshot(inner, announcements),
            verifier: Verifier::with_snapshot(object, results),
        }
    }

    /// Number of processes the wrapper was created for.
    pub fn processes(&self) -> usize {
        self.drv.processes()
    }

    /// Leases a free process slot, valid for both the embedded `DRV` wrapper and
    /// the embedded verifier (they share one id space).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when all `processes()` slots are leased.
    pub fn register(&self) -> Result<ProcessId, RegistryFull> {
        self.drv.register()
    }

    /// Returns a leased process slot to the pool (see [`SelfEnforced::register`]).
    pub fn release(&self, process: ProcessId) {
        self.drv.release(process);
    }

    /// The wrapped implementation.
    pub fn inner(&self) -> &A {
        self.drv.inner()
    }

    /// The embedded verifier (exposed for experiments).
    pub fn verifier(&self) -> &Verifier<O> {
        &self.verifier
    }

    /// The embedded `DRV` wrapper (exposed for experiments).
    pub fn drv(&self) -> &Drv<A> {
        &self.drv
    }

    /// Applies an operation and returns the typed, self-verified response
    /// (Figure 11, Lines 01–11).
    ///
    /// # Panics
    ///
    /// Panics when `process` is outside the range the wrapper was created for.
    pub fn apply_verified(&self, process: ProcessId, op: &Operation) -> EnforcedResponse {
        let response = self.drv.apply_drv(process, op);
        match self.verifier.observe(process, response.tuple()) {
            VerifierOutcome::Ok => EnforcedResponse {
                value: response.value.clone(),
                underlying: response.value,
                witness: None,
            },
            VerifierOutcome::Error { witness } => EnforcedResponse {
                value: OpValue::Error,
                underlying: response.value,
                witness: Some(witness),
            },
            VerifierOutcome::InvalidViews(err) => {
                panic!("DRV wrapper produced invalid views: {err}")
            }
        }
    }

    /// Produces a certificate of the computation so far (Theorem 8.2 (3)): the visible
    /// tuples, the sketch history they encode — similar to the actual history of the
    /// implementation at the moment of the request — and the verdict.
    pub fn certificate(&self) -> Certificate {
        self.certificate_as(ProcessId::new(0))
    }

    /// [`SelfEnforced::certificate`] scanning on behalf of a specific process.
    pub fn certificate_as(&self, process: ProcessId) -> Certificate {
        let tuples = self.verifier.collect_tuples(process);
        let (sketch, correct) = match crate::sketch::sketch_history(&tuples) {
            Ok(sketch) => {
                let correct = self.verifier.object().contains(&sketch);
                (sketch, correct)
            }
            Err(_) => (History::new(), false),
        };
        Certificate {
            object: self.verifier.object().description(),
            implementation: self.drv.inner().name(),
            tuples,
            sketch,
            correct,
        }
    }
}

impl<A: ConcurrentObject, O: GenLinObject> ConcurrentObject for SelfEnforced<A, O> {
    fn kind(&self) -> ObjectKind {
        self.drv.inner().kind()
    }

    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        self.apply_verified(process, op).value
    }

    fn name(&self) -> String {
        format!("self-enforced {}", self.drv.inner().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_check::LinSpec;
    use linrv_runtime::faulty::{DuplicatingStack, LossyQueue, StaleRegister};
    use linrv_runtime::impls::{AtomicIntRegister, MsQueue, TreiberStack};
    use linrv_runtime::{Workload, WorkloadKind};
    use linrv_spec::ops::{queue, register, stack};
    use linrv_spec::{QueueSpec, RegisterSpec, StackSpec};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn correct_queue_responses_are_passed_through_verified() {
        let enforced = SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
        assert_eq!(
            enforced.apply(p(0), &queue::enqueue(5)),
            OpValue::Bool(true)
        );
        assert_eq!(enforced.apply(p(1), &queue::dequeue()), OpValue::Int(5));
        assert_eq!(enforced.apply(p(0), &queue::dequeue()), OpValue::Empty);
        let cert = enforced.certificate();
        assert!(cert.is_correct());
        assert_eq!(cert.operations(), 3);
        assert!(enforced.name().contains("self-enforced"));
        assert_eq!(enforced.kind(), linrv_spec::ObjectKind::Queue);
    }

    #[test]
    fn lossy_queue_eventually_returns_error_with_witness() {
        let enforced = SelfEnforced::new(LossyQueue::new(2), LinSpec::new(QueueSpec::new()), 1);
        let mut saw_error = false;
        for i in 0..6 {
            enforced.apply_verified(p(0), &queue::enqueue(i));
        }
        for _ in 0..6 {
            let r = enforced.apply_verified(p(0), &queue::dequeue());
            if !r.is_verified() {
                saw_error = true;
                assert_eq!(r.value, OpValue::Error);
                let witness = r.witness.as_ref().unwrap();
                assert!(!LinSpec::new(QueueSpec::new()).contains(witness));
            }
        }
        assert!(saw_error);
        let cert = enforced.certificate();
        assert!(!cert.is_correct());
        assert!(cert.render().contains("VIOLATION"));
    }

    #[test]
    fn duplicating_stack_is_caught() {
        let enforced =
            SelfEnforced::new(DuplicatingStack::new(2), LinSpec::new(StackSpec::new()), 1);
        enforced.apply_verified(p(0), &stack::push(1));
        enforced.apply_verified(p(0), &stack::push(2));
        let mut saw_error = false;
        for _ in 0..4 {
            if !enforced.apply_verified(p(0), &stack::pop()).is_verified() {
                saw_error = true;
            }
        }
        assert!(saw_error, "duplicated pop was never reported");
    }

    #[test]
    fn stale_register_is_caught() {
        let enforced =
            SelfEnforced::new(StaleRegister::new(2), LinSpec::new(RegisterSpec::new()), 1);
        enforced.apply_verified(p(0), &register::write(1));
        enforced.apply_verified(p(0), &register::write(2));
        let mut saw_error = false;
        for _ in 0..4 {
            if !enforced
                .apply_verified(p(0), &register::read())
                .is_verified()
            {
                saw_error = true;
            }
        }
        assert!(saw_error, "stale read was never reported");
    }

    #[test]
    fn correct_register_is_never_flagged() {
        let enforced = SelfEnforced::new(
            AtomicIntRegister::new(),
            LinSpec::new(RegisterSpec::new()),
            2,
        );
        for i in 0..10 {
            assert!(enforced
                .apply_verified(p((i % 2) as u32), &register::write(i))
                .is_verified());
            assert!(enforced
                .apply_verified(p(((i + 1) % 2) as u32), &register::read())
                .is_verified());
        }
        assert!(enforced.certificate().is_correct());
    }

    #[test]
    fn multithreaded_correct_stack_never_errors() {
        let enforced = std::sync::Arc::new(SelfEnforced::new(
            TreiberStack::new(),
            LinSpec::new(StackSpec::new()),
            3,
        ));
        let workload = Workload::new(WorkloadKind::Stack, 31);
        let any_error = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..3usize {
                let enforced = std::sync::Arc::clone(&enforced);
                let ops = workload.operations_for(t, 20);
                handles.push(scope.spawn(move || {
                    ops.iter()
                        .any(|op| !enforced.apply_verified(p(t as u32), op).is_verified())
                }));
            }
            handles.into_iter().any(|h| h.join().unwrap())
        });
        assert!(!any_error, "false alarm on a correct stack");
        assert!(enforced.certificate().is_correct());
    }
}
