//! The `X(λ)` construction: from views to the sketch of a tight execution
//! (Section 7.3.3).
//!
//! Given the set `λ` of 4-tuples `(p_i, op_i, y_i, λ_i)` produced by an implementation
//! in the `DRV` class, the construction rebuilds a well-formed history:
//!
//! 1. order the distinct views in strictly ascending containment order
//!    `σ_1 ⊂ σ_2 ⊂ … ⊂ σ_m` (possible by containment comparability, Remark 7.2 (2));
//! 2. for each `σ_k`, first append the invocations of the pairs in `σ_k \ σ_{k-1}`,
//!    then append the responses of the tuples whose view is exactly `σ_k`.
//!
//! Operations that are announced (appear in some view) but have no tuple remain
//! pending. All histories obtainable by permuting events inside a step are equivalent
//! with identical `≺` relations, so `X(λ)` denotes an equivalence class; we return its
//! canonical representative (events within a step are emitted in `BTreeSet` order).
//!
//! Lemma 7.4: for a tight execution `E` of `A*`, `X(λ_E)` is equivalent to `E` with
//! `≺_E = ≺_{X(λ_E)}` — i.e. the views are a faithful static encoding of real-time
//! order.

use crate::view::{check_view_properties, TupleSet, View, ViewPropertyError};
use linrv_history::{History, IntervalHistory};
use std::collections::BTreeMap;
use std::fmt;

/// Why a set of view tuples cannot be turned into a sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The tuples violate one of the view properties of Remark 7.2; such a set cannot
    /// have been produced by a `DRV` implementation communicating through a
    /// linearizable snapshot.
    ViewProperty(ViewPropertyError),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::ViewProperty(err) => write!(f, "invalid views: {err}"),
        }
    }
}

impl std::error::Error for SketchError {}

impl From<ViewPropertyError> for SketchError {
    fn from(err: ViewPropertyError) -> Self {
        SketchError::ViewProperty(err)
    }
}

/// Builds the interval-sequential sketch `X(λ)` from a set of view tuples.
///
/// # Errors
///
/// Returns [`SketchError::ViewProperty`] when the tuples violate Remark 7.2.
pub fn sketch_interval(tuples: &TupleSet) -> Result<IntervalHistory, SketchError> {
    check_view_properties(tuples)?;
    if tuples.is_empty() {
        return Ok(IntervalHistory::new());
    }

    // Distinct views in strictly ascending containment order. Comparability guarantees
    // that ordering by size is the containment order.
    let mut distinct: Vec<&View> = Vec::new();
    for tuple in tuples {
        if !distinct.contains(&&tuple.view) {
            distinct.push(&tuple.view);
        }
    }
    distinct.sort_by_key(|v| v.len());

    // Tuples grouped by their view, in the same order.
    let mut by_view: BTreeMap<usize, Vec<&crate::view::ViewTuple>> = BTreeMap::new();
    for tuple in tuples {
        let index = distinct
            .iter()
            .position(|v| *v == &tuple.view)
            .expect("view collected above");
        by_view.entry(index).or_default().push(tuple);
    }

    let mut interval = IntervalHistory::new();
    let mut previous: View = View::new();
    for (k, view) in distinct.iter().enumerate() {
        let fresh: Vec<_> = view.difference(&previous).cloned().collect();
        if !fresh.is_empty() {
            interval.push_invocations(
                fresh
                    .iter()
                    .map(|pair| (pair.process, pair.op_id, pair.operation.clone()))
                    .collect(),
            );
        }
        let responders = &by_view[&k];
        interval.push_responses(
            responders
                .iter()
                .map(|t| (t.pair.process, t.pair.op_id, t.response.clone()))
                .collect(),
        );
        previous = (*view).clone();
    }
    Ok(interval)
}

/// Builds the canonical flattened history of the sketch `X(λ)`.
///
/// # Errors
///
/// Returns [`SketchError::ViewProperty`] when the tuples violate Remark 7.2.
pub fn sketch_history(tuples: &TupleSet) -> Result<History, SketchError> {
    linrv_obs::time(crate::metrics::sketch_ns(), || {
        Ok(sketch_interval(tuples)?.flatten())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{InvocationPair, ViewTuple};
    use linrv_history::{OpId, OpValue, Operation, ProcessId};
    use linrv_spec::ops::{queue, stack};

    fn pair(p: u32, id: u64, op: Operation) -> InvocationPair {
        InvocationPair {
            process: ProcessId::new(p),
            op_id: OpId::new(id),
            operation: op,
        }
    }

    fn view_of(pairs: &[&InvocationPair]) -> crate::view::View {
        pairs.iter().map(|p| (*p).clone()).collect()
    }

    /// Figure 9 of the paper: three processes, four operations, nested views.
    #[test]
    fn figure9_reconstruction() {
        let op1 = pair(0, 0, Operation::new("Apply", OpValue::Int(1)));
        let op1b = pair(0, 1, Operation::new("Apply", OpValue::Int(2)));
        let op2 = pair(1, 2, Operation::new("Apply", OpValue::Int(3)));
        let op3 = pair(2, 3, Operation::new("Apply", OpValue::Int(4)));

        let view = view_of(&[&op1]);
        let view_p = view_of(&[&op1, &op1b, &op2]);
        let view_pp = view_of(&[&op1, &op1b, &op2, &op3]);

        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(op1.clone(), OpValue::Str("a".into()), view));
        tuples.insert(ViewTuple::new(
            op1b.clone(),
            OpValue::Str("b".into()),
            view_p,
        ));
        tuples.insert(ViewTuple::new(
            op3.clone(),
            OpValue::Str("d".into()),
            view_pp,
        ));
        // (p2, op2) has no tuple: its operation is pending (as in the figure, where only
        // λ_E's three tuples appear).

        let interval = sketch_interval(&tuples).expect("valid views");
        // Steps: {op1} / resp a / {op1', op2} / resp b / {op3} / resp d
        assert_eq!(interval.len(), 6);
        let history = interval.flatten();
        assert!(history.is_well_formed());
        assert_eq!(history.complete_operations().count(), 3);
        assert_eq!(history.pending_operations().count(), 1);

        // Real-time order encoded by the views: op1 precedes op1', op1 precedes op3,
        // op1' precedes op3, while op2 is concurrent with op1' (same invocation step).
        use linrv_history::precedes_all;
        assert!(precedes_all(&history, OpId::new(0), OpId::new(1)));
        assert!(precedes_all(&history, OpId::new(0), OpId::new(3)));
        assert!(precedes_all(&history, OpId::new(1), OpId::new(3)));
        assert!(!precedes_all(&history, OpId::new(2), OpId::new(1)));
        assert!(!precedes_all(&history, OpId::new(1), OpId::new(2)));
    }

    /// Sequential announcements produce a sequential sketch.
    #[test]
    fn sequential_views_produce_sequential_history() {
        let a = pair(0, 0, queue::enqueue(1));
        let b = pair(1, 1, queue::dequeue());
        let va = view_of(&[&a]);
        let vb = view_of(&[&a, &b]);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(a.clone(), OpValue::Bool(true), va));
        tuples.insert(ViewTuple::new(b.clone(), OpValue::Int(1), vb));
        let history = sketch_history(&tuples).unwrap();
        assert!(history.is_sequential());
        assert_eq!(history.len(), 4);
    }

    /// Operations whose views are equal overlap in the sketch.
    #[test]
    fn equal_views_yield_concurrent_operations() {
        let a = pair(0, 0, stack::push(1));
        let b = pair(1, 1, stack::pop());
        let shared = view_of(&[&a, &b]);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(
            a.clone(),
            OpValue::Bool(true),
            shared.clone(),
        ));
        tuples.insert(ViewTuple::new(b.clone(), OpValue::Int(1), shared));
        let history = sketch_history(&tuples).unwrap();
        let order = linrv_history::RealTimeOrder::complete_order(&history);
        assert!(order.concurrent(OpId::new(0), OpId::new(1)));
    }

    #[test]
    fn empty_tuple_set_produces_empty_history() {
        let history = sketch_history(&TupleSet::new()).unwrap();
        assert!(history.is_empty());
    }

    #[test]
    fn invalid_views_are_rejected() {
        let a = pair(0, 0, queue::enqueue(1));
        let b = pair(1, 1, queue::enqueue(2));
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(
            a.clone(),
            OpValue::Bool(true),
            view_of(&[&a]),
        ));
        tuples.insert(ViewTuple::new(
            b.clone(),
            OpValue::Bool(true),
            view_of(&[&b]),
        ));
        let err = sketch_history(&tuples).unwrap_err();
        assert!(err.to_string().contains("incomparable"));
    }

    /// The flattened sketch is always a well-formed history (given valid views).
    #[test]
    fn sketches_are_well_formed() {
        let a = pair(0, 0, queue::enqueue(1));
        let b = pair(1, 1, queue::dequeue());
        let c = pair(2, 2, queue::dequeue());
        let v1 = view_of(&[&a, &b]);
        let v2 = view_of(&[&a, &b, &c]);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(a.clone(), OpValue::Bool(true), v1.clone()));
        tuples.insert(ViewTuple::new(b.clone(), OpValue::Empty, v1));
        tuples.insert(ViewTuple::new(c.clone(), OpValue::Int(1), v2));
        let history = sketch_history(&tuples).unwrap();
        assert!(history.is_well_formed());
        assert_eq!(history.complete_operations().count(), 3);
    }
}
