//! An executable rendition of the impossibility argument (Theorem 5.1, Figure 4).
//!
//! The theorem: no wait-free verifier can distributed-runtime verify linearizability
//! for common objects (queues, stacks, …), regardless of the consensus power of its
//! base objects. The proof exhibits two executions `E` and `F` of any candidate
//! verifier with the adversarial queue implementation `A` of
//! [`Theorem51Queue`]:
//!
//! * in `E`, process `p_2`'s `Dequeue():1` *completes before* `p_1`'s `Enqueue(1)`
//!   starts — the history of `A` is **not** linearizable;
//! * in `F`, the two local call events occur in the opposite order — the history **is**
//!   linearizable;
//! * every step a verifier can take (announcing in shared memory before calling `A`,
//!   encoding the response afterwards, reading the shared memory) observes exactly the
//!   same values in both executions, so the processes traverse identical local-state
//!   sequences and must output identically — contradicting either soundness (if they
//!   report ERROR) or completeness (if they do not).
//!
//! [`theorem51_demo`] constructs both executions concretely, using the generic-verifier
//! step structure of Figure 2, and exposes predicates for each leg of the argument. The
//! integration tests and `examples/impossibility.rs` assert all three.

use linrv_history::{History, HistoryBuilder, OpValue, ProcessId};
use linrv_runtime::faulty::Theorem51Queue;
use linrv_runtime::ConcurrentObject;
use linrv_spec::ops::queue;

/// What one process of the generic verifier (Figure 2) observes during the execution:
/// the responses it obtained from `A` and the detected history it reads back from the
/// shared memory in Line 09.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessObservation {
    /// The observing process.
    pub process: ProcessId,
    /// Responses this process obtained from `A`, in order.
    pub responses: Vec<OpValue>,
    /// The detected history the process reads from the shared memory after its
    /// operations (the best information any verifier can gather).
    pub detected: History,
}

/// The two executions of the impossibility proof plus what the verifier processes
/// observe in each.
#[derive(Debug, Clone)]
pub struct ImpossibilityDemo {
    /// The actual history of `A` in execution `E` (dequeue completes first) — not
    /// linearizable.
    pub history_e: History,
    /// The actual history of `A` in execution `F` (enqueue completes first) —
    /// linearizable.
    pub history_f: History,
    /// Per-process observations in execution `E`.
    pub observations_e: Vec<ProcessObservation>,
    /// Per-process observations in execution `F`.
    pub observations_f: Vec<ProcessObservation>,
}

impl ImpossibilityDemo {
    /// The indistinguishability leg: every process observes exactly the same thing in
    /// `E` and in `F`, so any verifier makes identical decisions in both.
    pub fn executions_are_indistinguishable(&self) -> bool {
        self.observations_e == self.observations_f
    }

    /// The completeness leg: the history of `A` in `E` violates linearizability, so a
    /// complete verifier must report ERROR in `E` (hence, by indistinguishability, also
    /// in `F`).
    pub fn e_violates_linearizability(&self) -> bool {
        use linrv_check::{GenLinObject, LinSpec};
        !LinSpec::new(linrv_spec::QueueSpec::new()).contains(&self.history_e)
    }

    /// The soundness leg: the history of `A` in `F` is linearizable, so a sound
    /// verifier must not report ERROR in `F` (hence, by indistinguishability, neither
    /// in `E`). Together with [`ImpossibilityDemo::e_violates_linearizability`] this
    /// contradicts the existence of the verifier.
    pub fn f_is_linearizable(&self) -> bool {
        use linrv_check::{GenLinObject, LinSpec};
        LinSpec::new(linrv_spec::QueueSpec::new()).contains(&self.history_f)
    }
}

/// Builds the `E`/`F` pair of Figure 4 for the two-process case.
pub fn theorem51_demo() -> ImpossibilityDemo {
    let p1 = ProcessId::new(0);
    let p2 = ProcessId::new(1);

    // The detected history is the same in both executions: both operations are
    // announced before either is called (Lines 03–05 of Figure 2 run first for p2, then
    // for p1), and both responses are encoded afterwards (Lines 08–12, p2 then p1).
    // Inside the shared memory the two operations therefore appear to overlap.
    let detected = {
        let mut b = HistoryBuilder::new();
        let deq = b.invoke(p2, queue::dequeue());
        let enq = b.invoke(p1, queue::enqueue(1));
        b.respond(deq, OpValue::Int(1));
        b.respond(enq, OpValue::Bool(true));
        b.build()
    };

    // The same operation identifiers are used in both executions so that equivalence
    // (which compares per-process event sequences) is meaningful.
    let enq_id = linrv_history::OpId::new(0);
    let deq_id = linrv_history::OpId::new(1);

    // Execution E: p2's call to A (Lines 06–07) happens entirely before p1's call.
    let history_e = {
        let queue_a = Theorem51Queue::new(p2);
        let mut b = HistoryBuilder::new();
        b.invoke_with_id(p2, deq_id, queue::dequeue());
        let deq_resp = queue_a.apply(p2, &queue::dequeue());
        b.respond(deq_id, deq_resp.clone());
        b.invoke_with_id(p1, enq_id, queue::enqueue(1));
        let enq_resp = queue_a.apply(p1, &queue::enqueue(1));
        b.respond(enq_id, enq_resp);
        debug_assert_eq!(deq_resp, OpValue::Int(1));
        b.build()
    };

    // Execution F: the calls to A happen in the opposite order. The adversarial A still
    // gives p2's first dequeue the response 1, so every process obtains the same
    // responses as in E.
    let history_f = {
        let queue_a = Theorem51Queue::new(p2);
        let mut b = HistoryBuilder::new();
        b.invoke_with_id(p1, enq_id, queue::enqueue(1));
        let enq_resp = queue_a.apply(p1, &queue::enqueue(1));
        b.respond(enq_id, enq_resp);
        b.invoke_with_id(p2, deq_id, queue::dequeue());
        let deq_resp = queue_a.apply(p2, &queue::dequeue());
        b.respond(deq_id, deq_resp);
        b.build()
    };

    let observe = |detected: &History| -> Vec<ProcessObservation> {
        vec![
            ProcessObservation {
                process: p1,
                responses: vec![OpValue::Bool(true)],
                detected: detected.clone(),
            },
            ProcessObservation {
                process: p2,
                responses: vec![OpValue::Int(1)],
                detected: detected.clone(),
            },
        ]
    };

    ImpossibilityDemo {
        history_e,
        history_f,
        observations_e: observe(&detected),
        observations_f: observe(&detected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_three_legs_of_the_argument_hold() {
        let demo = theorem51_demo();
        assert!(demo.executions_are_indistinguishable());
        assert!(demo.e_violates_linearizability());
        assert!(demo.f_is_linearizable());
    }

    #[test]
    fn e_and_f_differ_only_in_real_time_order() {
        let demo = theorem51_demo();
        // Same per-process behaviour (the histories are equivalent)…
        assert!(demo.history_e.equivalent(&demo.history_f));
        // …but different global event order, which no process can observe.
        assert_ne!(demo.history_e.events(), demo.history_f.events());
    }

    #[test]
    fn detected_history_is_linearizable_in_both() {
        use linrv_check::{GenLinObject, LinSpec};
        let demo = theorem51_demo();
        for obs in demo.observations_e.iter().chain(&demo.observations_f) {
            assert!(LinSpec::new(linrv_spec::QueueSpec::new()).contains(&obs.detected));
        }
    }
}
