//! The `A → A*` transform (Figure 7): making any implementation Distributed Runtime
//! Verifiable.
//!
//! `A*` wraps a black-box implementation `A`. For each operation it
//!
//! 1. adds the invocation pair `(p_i, op_i)` to the process's persistent local set and
//!    publishes that set in the process's entry of a wait-free linearizable snapshot
//!    object `N` (Lines 01–02),
//! 2. obtains the response `y_i` from `A` (Lines 03–04),
//! 3. takes a snapshot of `N`, unions all entries into the *view* `λ_i`
//!    (Lines 05–06), and
//! 4. returns `(y_i, λ_i)` (Line 07).
//!
//! Lemma 7.2: `A*` implements the same object as `A`, preserves `A`'s progress
//! condition (the added code is wait-free), and adds `O(n)` steps per operation.
//! The views returned by `A*` are what make it predictively verifiable.
//!
//! [`Drv`] also exposes the three phases separately ([`Drv::announce`],
//! [`Drv::call_inner`], [`Drv::collect`]) so that tests, examples and the
//! figure-reproduction experiments can interleave them deterministically — this is how
//! the "stretch"/"shrink" pictures of Figures 5, 6 and 8 are reproduced without relying
//! on racy timing.

use crate::registry::{ProcessRegistry, RegistryFull};
use crate::view::{InvocationPair, View, ViewTuple};
use linrv_history::{OpId, OpValue, Operation, ProcessId};
use linrv_runtime::ConcurrentObject;
use linrv_snapshot::{AfekSnapshot, Snapshot};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The response of an `A*` operation: the underlying response together with the view
/// (Figure 7, Line 07).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrvResponse {
    /// The invocation pair of the operation that produced this response.
    pub pair: InvocationPair,
    /// The response obtained from the wrapped implementation `A`.
    pub value: OpValue,
    /// The view `λ_i` collected after `A` responded.
    pub view: View,
}

impl DrvResponse {
    /// The 4-tuple `(p_i, op_i, y_i, λ_i)` used by verifiers and self-enforced
    /// implementations.
    pub fn tuple(&self) -> ViewTuple {
        ViewTuple::new(self.pair.clone(), self.value.clone(), self.view.clone())
    }
}

/// An operation of `A*` that has been announced but whose later phases have not run
/// yet. Returned by [`Drv::announce`]; consumed by [`Drv::call_inner`] and
/// [`Drv::collect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Announced {
    /// The announced invocation pair.
    pub pair: InvocationPair,
}

/// The `DRV`-class counterpart `A*` of a concurrent implementation `A` (Figure 7).
pub struct Drv<A> {
    inner: A,
    /// The snapshot object `N` of Figure 7; entry `i` holds `set_i`.
    announcements: Arc<dyn Snapshot<View>>,
    /// The persistent local variable `set_i` of each process.
    local_sets: Vec<Mutex<View>>,
    next_op: AtomicU64,
    registry: ProcessRegistry,
}

impl<A: ConcurrentObject> Drv<A> {
    /// Wraps `inner` for a system of `processes` processes, communicating through the
    /// wait-free [`AfekSnapshot`].
    pub fn new(inner: A, processes: usize) -> Self {
        Self::with_snapshot(inner, Arc::new(AfekSnapshot::new(processes, View::new())))
    }

    /// Wraps `inner` using an explicit snapshot implementation (its number of entries
    /// determines the number of processes).
    pub fn with_snapshot(inner: A, snapshot: Arc<dyn Snapshot<View>>) -> Self {
        let n = snapshot.entries();
        Drv {
            inner,
            announcements: snapshot,
            local_sets: (0..n).map(|_| Mutex::new(View::new())).collect(),
            next_op: AtomicU64::new(0),
            registry: ProcessRegistry::new(n),
        }
    }

    /// Number of processes the wrapper was created for.
    pub fn processes(&self) -> usize {
        self.local_sets.len()
    }

    /// Leases a free process slot (capacity-bounded dynamic registration).
    ///
    /// The returned identifier is exclusively owned by the caller until it is
    /// handed back via [`Drv::release`]. Callers that prefer to manage ids
    /// themselves (the raw API) may keep constructing `ProcessId`s directly.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when all `processes()` slots are leased.
    pub fn register(&self) -> Result<ProcessId, RegistryFull> {
        self.registry.register()
    }

    /// Returns a leased process slot to the pool (see [`Drv::register`]).
    pub fn release(&self, process: ProcessId) {
        self.registry.release(process);
    }

    /// The lease manager for this wrapper's process slots.
    pub fn registry(&self) -> &ProcessRegistry {
        &self.registry
    }

    /// The wrapped implementation.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn check_process(&self, process: ProcessId) {
        assert!(
            process.index() < self.processes(),
            "process {process} out of range for a {}-process DRV wrapper",
            self.processes()
        );
    }

    /// Phase 1 (Lines 01–02): announce the operation in the snapshot object.
    pub fn announce(&self, process: ProcessId, op: &Operation) -> Announced {
        let span = linrv_obs::Span::start(crate::metrics::announce_ns());
        self.check_process(process);
        let pair = InvocationPair {
            process,
            op_id: OpId::new(self.next_op.fetch_add(1, Ordering::Relaxed)),
            operation: op.clone(),
        };
        let set = {
            let mut local = self.local_sets[process.index()].lock();
            local.insert(pair.clone());
            local.clone()
        };
        self.announcements.write(process.index(), set);
        drop(span);
        if linrv_obs::enabled() {
            crate::metrics::ops_announced().inc();
        }
        Announced { pair }
    }

    /// Phase 2 (Lines 03–04): obtain the response from the wrapped implementation.
    pub fn call_inner(&self, announced: &Announced) -> OpValue {
        self.inner
            .apply(announced.pair.process, &announced.pair.operation)
    }

    /// Phase 3 (Lines 05–07): snapshot the announcements, union them into the view and
    /// assemble the response.
    pub fn collect(&self, announced: Announced, value: OpValue) -> DrvResponse {
        let span = linrv_obs::Span::start(crate::metrics::collect_ns());
        let process = announced.pair.process;
        let scanned = self.announcements.scan(process.index());
        let view: View = scanned.into_iter().flatten().collect();
        drop(span);
        if linrv_obs::enabled() {
            crate::metrics::view_size().record(view.len() as u64);
            crate::metrics::ops_collected().inc();
        }
        DrvResponse {
            pair: announced.pair,
            value,
            view,
        }
    }

    /// The full `Apply(op_i)` of Figure 7: announce, call `A`, collect.
    ///
    /// # Panics
    ///
    /// Panics when `process` is outside the range the wrapper was created for.
    pub fn apply_drv(&self, process: ProcessId, op: &Operation) -> DrvResponse {
        let announced = self.announce(process, op);
        let value = self.call_inner(&announced);
        self.collect(announced, value)
    }
}

impl<A: ConcurrentObject> ConcurrentObject for Drv<A> {
    fn kind(&self) -> linrv_spec::ObjectKind {
        self.inner.kind()
    }

    /// Applies the operation and returns only the underlying response, discarding the
    /// view (the typed [`Drv::apply_drv`] keeps it).
    fn apply(&self, process: ProcessId, op: &Operation) -> OpValue {
        self.apply_drv(process, op).value
    }

    fn name(&self) -> String {
        format!("DRV wrapper around {}", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::sketch_history;
    use crate::view::{check_view_properties, TupleSet};
    use linrv_check::{GenLinObject, LinSpec};
    use linrv_runtime::faulty::Theorem51Queue;
    use linrv_runtime::impls::{MsQueue, SpecObject};
    use linrv_spec::ops::queue;
    use linrv_spec::QueueSpec;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn responses_carry_self_including_views() {
        let drv = Drv::new(MsQueue::new(), 2);
        let r = drv.apply_drv(p(0), &queue::enqueue(1));
        assert_eq!(r.value, OpValue::Bool(true));
        assert!(r.view.contains(&r.pair));
        assert_eq!(drv.processes(), 2);
        assert!(drv.name().contains("DRV wrapper"));
    }

    #[test]
    fn sequential_usage_produces_valid_views_and_correct_sketch() {
        let drv = Drv::new(SpecObject::new(QueueSpec::new()), 2);
        let mut tuples = TupleSet::new();
        tuples.insert(drv.apply_drv(p(0), &queue::enqueue(1)).tuple());
        tuples.insert(drv.apply_drv(p(1), &queue::dequeue()).tuple());
        tuples.insert(drv.apply_drv(p(0), &queue::dequeue()).tuple());
        assert_eq!(check_view_properties(&tuples), Ok(()));
        let sketch = sketch_history(&tuples).unwrap();
        assert!(sketch.is_sequential());
        assert!(LinSpec::new(QueueSpec::new()).contains(&sketch));
    }

    /// Figure 8: the non-linearizable behaviour of `A` (dequeue of a never-enqueued
    /// element) is *enforced correct* by `A*` when the announce of the enqueue lands
    /// before the dequeue collects its view: in the sketch the two operations overlap.
    #[test]
    fn figure8_drv_fixes_some_incorrect_histories() {
        let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
        // p2 announces its dequeue, p1 announces its enqueue (both before any call).
        let deq = drv.announce(p(1), &queue::dequeue());
        let enq = drv.announce(p(0), &queue::enqueue(1));
        // A executes the dequeue first (returning 1 — A is incorrect), then the enqueue.
        let deq_value = drv.call_inner(&deq);
        let enq_value = drv.call_inner(&enq);
        assert_eq!(deq_value, OpValue::Int(1));
        // Both operations collect: each view contains both announcements, so in the
        // sketch they overlap and the history is linearizable — A* enforced correctness.
        let mut tuples = TupleSet::new();
        tuples.insert(drv.collect(deq, deq_value).tuple());
        tuples.insert(drv.collect(enq, enq_value).tuple());
        let sketch = sketch_history(&tuples).unwrap();
        assert!(LinSpec::new(QueueSpec::new()).contains(&sketch));
    }

    /// Figure 6 (bottom): when the announce/collect phases are tight around the calls,
    /// the real-time violation survives into the sketch and is detectable.
    #[test]
    fn tight_interleaving_preserves_the_violation() {
        let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
        // p2 runs its entire dequeue (announce, call, collect) before p1 even announces.
        let deq = drv.announce(p(1), &queue::dequeue());
        let deq_value = drv.call_inner(&deq);
        let deq_resp = drv.collect(deq, deq_value);
        let enq = drv.announce(p(0), &queue::enqueue(1));
        let enq_value = drv.call_inner(&enq);
        let enq_resp = drv.collect(enq, enq_value);
        let mut tuples = TupleSet::new();
        tuples.insert(deq_resp.tuple());
        tuples.insert(enq_resp.tuple());
        let sketch = sketch_history(&tuples).unwrap();
        // The dequeue's view does not contain the enqueue, so in the sketch the dequeue
        // precedes the enqueue and returning 1 is a violation.
        assert!(!LinSpec::new(QueueSpec::new()).contains(&sketch));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let drv = Drv::new(MsQueue::new(), 1);
        let _ = drv.apply_drv(p(5), &queue::dequeue());
    }

    #[test]
    fn concurrent_threads_produce_containment_comparable_views() {
        use std::sync::Arc;
        let drv = Arc::new(Drv::new(MsQueue::new(), 3));
        let tuples = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..3u32 {
                let drv = Arc::clone(&drv);
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..30 {
                        let op = if i % 2 == 0 {
                            queue::enqueue(i64::from(t) * 100 + i)
                        } else {
                            queue::dequeue()
                        };
                        out.push(drv.apply_drv(p(t), &op).tuple());
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<TupleSet>()
        });
        assert_eq!(check_view_properties(&tuples), Ok(()));
        // The sketch of the whole run is a well-formed history over 90 operations.
        let sketch = sketch_history(&tuples).unwrap();
        assert_eq!(sketch.complete_operations().count(), 90);
    }
}
