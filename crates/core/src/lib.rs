//! # linrv-core
//!
//! The primary contribution of Castañeda & Rodríguez, *Asynchronous Wait-Free Runtime
//! Verification and Enforcement of Linearizability* (PODC 2023), as a Rust library:
//!
//! * [`view`] — invocation pairs, views and the view properties of Remark 7.2;
//! * [`sketch`] — the `X(λ)` construction (Section 7.3.3) that turns a set of views
//!   into the interval-sequential sketch of a tight execution;
//! * [`drv`] — the `A → A*` transform of Figure 7: wrap any black-box implementation so
//!   that every response additionally carries a view, making the implementation a
//!   member of the *Distributed Runtime Verifiable* (`DRV`) class;
//! * [`verifier`] — the wait-free predictive verifier `V_O` of Figure 10
//!   (Theorem 8.1): read/write base objects only, `O(n)`-step loop, predictive
//!   soundness + completeness + stability;
//! * [`enforce`] — self-enforced implementations `V_{O,A}` of Figure 11
//!   (Theorem 8.2): every non-ERROR response is runtime verified, and a certificate of
//!   the current computation can be produced on demand;
//! * [`decoupled`] — the decoupled variant `D_{O,A}` of Figure 12 (Section 9.2), with
//!   separate producer and verifier roles;
//! * [`impossibility`] — an executable rendition of the Theorem 5.1 indistinguishability
//!   argument;
//! * [`bounded`] — the Section 9.1 linked-list representation of grow-only sets;
//! * [`certificate`] — serialisable accountability/forensics certificates
//!   (Section 8.3);
//! * [`registry`] — capacity-bounded dynamic process registration, backing the
//!   session handles of the `linrv` facade crate;
//! * [`metrics`] — `linrv-obs` profiling hooks for the DRV hot path
//!   (announce/collect/sketch latency, announce-view size), recording only
//!   while `linrv_obs::enabled()` is on.
//!
//! ## Quick start
//!
//! ```
//! use linrv_core::enforce::SelfEnforced;
//! use linrv_check::LinSpec;
//! use linrv_spec::{QueueSpec, ops::queue};
//! use linrv_runtime::impls::MsQueue;
//! use linrv_runtime::ConcurrentObject;
//! use linrv_history::{OpValue, ProcessId};
//!
//! // Wrap a lock-free queue into its self-enforced counterpart for 2 processes.
//! let enforced = SelfEnforced::new(MsQueue::new(), LinSpec::new(QueueSpec::new()), 2);
//! let p0 = ProcessId::new(0);
//! assert_eq!(enforced.apply(p0, &queue::enqueue(7)), OpValue::Bool(true));
//! assert_eq!(enforced.apply(p0, &queue::dequeue()), OpValue::Int(7));
//! // Every response above was runtime verified; the certificate proves it.
//! let cert = enforced.certificate();
//! assert!(cert.is_correct());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounded;
pub mod certificate;
pub mod decoupled;
pub mod drv;
pub mod enforce;
pub mod impossibility;
pub mod metrics;
pub mod registry;
pub mod sketch;
pub mod verifier;
pub mod view;

pub use certificate::Certificate;
pub use decoupled::{DecoupledProducer, DecoupledVerifier};
pub use drv::{Drv, DrvResponse};
pub use enforce::{EnforcedResponse, SelfEnforced};
pub use registry::{ProcessRegistry, RegistryFull};
pub use sketch::{sketch_history, SketchError};
pub use verifier::{Verifier, VerifierOutcome, VerifierRun};
pub use view::{InvocationPair, TupleSet, View, ViewPropertyError, ViewTuple};
