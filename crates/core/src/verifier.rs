//! The wait-free predictive verifier `V_O` (Figure 10, Theorem 8.1).
//!
//! Each process, after completing an operation of an `A* ∈ DRV` and obtaining its
//! `(y_i, λ_i)` response, hands the resulting 4-tuple to the verifier
//! ([`Verifier::observe`]). The verifier adds the tuple to the process's persistent
//! result set `res_i`, publishes it in the shared snapshot object `M`, takes a snapshot,
//! unions all entries into `τ_i`, rebuilds the sketch `X(τ_i)` and locally tests
//! membership in the abstract object `O`. If the sketch is not a member, the process
//! reports `ERROR` together with `X(τ_i)` — which, by Lemma 8.1, *is* a history of
//! `A*`, i.e. a genuine witness.
//!
//! Guarantees (Theorem 8.1), exercised in the integration tests and experiments:
//!
//! * **Efficiency** — only read/write base objects (through the snapshot), `O(n)` step
//!   complexity per loop iteration plus the local membership test.
//! * **Predictive soundness** — every reported `ERROR` carries a witness history of
//!   `A*`.
//! * **Soundness for correct executions of `A`** — if `A`'s history is correct, no
//!   process ever reports `ERROR`.
//! * **Completeness and stability** — if `A*`'s history is incorrect, eventually every
//!   new observation reports `ERROR`.

use crate::sketch::{sketch_history, SketchError};
use crate::view::{TupleSet, ViewTuple};
use linrv_check::GenLinObject;
use linrv_history::{History, ProcessId};
use linrv_snapshot::{AfekSnapshot, Snapshot};
use parking_lot::Mutex;
use std::sync::Arc;

/// Outcome of one verification step (Lines 06–12 of Figure 10).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifierOutcome {
    /// The sketch built from the locally visible tuples is a member of the object.
    Ok,
    /// The sketch is not a member: `ERROR` is reported together with the witness
    /// history `X(τ_i)`, which is a history of `A*` (Lemma 8.1).
    Error {
        /// The witness history.
        witness: History,
    },
    /// The exchanged tuples violate the view properties of Remark 7.2. This cannot
    /// happen when `A*` is a genuine `DRV` implementation communicating through a
    /// linearizable snapshot; it indicates a corrupted or forged input.
    InvalidViews(SketchError),
}

impl VerifierOutcome {
    /// Returns `true` when no error was reported.
    pub fn is_ok(&self) -> bool {
        matches!(self, VerifierOutcome::Ok)
    }

    /// Returns the witness history when an error was reported.
    pub fn witness(&self) -> Option<&History> {
        match self {
            VerifierOutcome::Error { witness } => Some(witness),
            _ => None,
        }
    }
}

/// The wait-free predictive verifier `V_O` for an object `O ∈ GenLin` and
/// implementations `A* ∈ DRV`.
pub struct Verifier<O> {
    object: O,
    /// The snapshot object `M` of Figure 10; entry `i` holds `res_i`.
    results: Arc<dyn Snapshot<TupleSet>>,
    /// The persistent local variable `res_i` of each process.
    local_results: Vec<Mutex<TupleSet>>,
}

impl<O: GenLinObject> Verifier<O> {
    /// Creates a verifier for `processes` processes using the wait-free
    /// [`AfekSnapshot`].
    pub fn new(object: O, processes: usize) -> Self {
        Self::with_snapshot(
            object,
            Arc::new(AfekSnapshot::new(processes, TupleSet::new())),
        )
    }

    /// Creates a verifier with an explicit snapshot implementation.
    pub fn with_snapshot(object: O, snapshot: Arc<dyn Snapshot<TupleSet>>) -> Self {
        let n = snapshot.entries();
        Verifier {
            object,
            results: snapshot,
            local_results: (0..n).map(|_| Mutex::new(TupleSet::new())).collect(),
        }
    }

    /// The abstract object being verified against.
    pub fn object(&self) -> &O {
        &self.object
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.local_results.len()
    }

    /// One verification step (Figure 10, Lines 06–12): record the tuple obtained from
    /// `A*`, exchange it through the snapshot, rebuild the sketch and test membership.
    ///
    /// # Panics
    ///
    /// Panics when `process` is outside the range the verifier was created for.
    pub fn observe(&self, process: ProcessId, tuple: ViewTuple) -> VerifierOutcome {
        self.record(process, tuple);
        self.verdict_from_scan(process)
    }

    /// The publication half of [`Verifier::observe`] (Figure 10, Lines 06–08):
    /// record the tuple in `res_i` and exchange it through the snapshot, *without*
    /// computing a verdict.
    ///
    /// This is the publish-only step of the decoupled construction (Figure 12,
    /// producer code — `DecoupledProducer` maintains its own equivalent `res_i`
    /// sets); verdicts are then computed asynchronously via
    /// [`Verifier::verdict_from_scan`]. The facade's Observe mode calls this on
    /// the critical path instead of [`Verifier::observe`].
    ///
    /// # Panics
    ///
    /// Panics when `process` is outside the range the verifier was created for.
    pub fn record(&self, process: ProcessId, tuple: ViewTuple) {
        assert!(
            process.index() < self.processes(),
            "process {process} out of range for a {}-process verifier",
            self.processes()
        );
        let local = {
            let mut res = self.local_results[process.index()].lock();
            res.insert(tuple);
            res.clone()
        };
        self.results.write(process.index(), local);
    }

    /// Re-evaluates the verdict from the current shared state without contributing a
    /// new tuple (used by decoupled verifiers and by certificate extraction).
    pub fn verdict_from_scan(&self, scanner: ProcessId) -> VerifierOutcome {
        let tau = self.collect_tuples(scanner);
        match sketch_history(&tau) {
            Ok(sketch) => {
                if self.object.contains(&sketch) {
                    VerifierOutcome::Ok
                } else {
                    VerifierOutcome::Error { witness: sketch }
                }
            }
            Err(err) => VerifierOutcome::InvalidViews(err),
        }
    }

    /// The union `τ` of all result sets currently readable from `M`.
    pub fn collect_tuples(&self, scanner: ProcessId) -> TupleSet {
        self.results
            .scan(scanner.index().min(self.processes().saturating_sub(1)))
            .into_iter()
            .flatten()
            .collect()
    }

    /// The sketch `X(τ)` of the currently visible tuples, if the views are valid.
    ///
    /// # Errors
    ///
    /// Returns the [`SketchError`] when the visible tuples violate Remark 7.2.
    pub fn current_sketch(&self, scanner: ProcessId) -> Result<History, SketchError> {
        sketch_history(&self.collect_tuples(scanner))
    }
}

/// Summary of a multi-threaded verifier run driven by [`run_verified`].
#[derive(Debug, Clone)]
pub struct VerifierRun {
    /// Total operations applied across all processes.
    pub operations: usize,
    /// For each process, the index of its first operation whose verification reported
    /// `ERROR` (if any).
    pub first_error_at: Vec<Option<usize>>,
    /// All distinct error witnesses reported, in no particular order.
    pub witnesses: Vec<History>,
}

impl VerifierRun {
    /// Returns `true` when no process ever reported `ERROR`.
    pub fn error_free(&self) -> bool {
        self.first_error_at.iter().all(Option::is_none)
    }
}

/// Drives the full Figure 10 loop: `threads` processes each apply the per-process
/// operations produced by `workload_for` against `A*` and verify every response.
///
/// This is the harness used by the soundness/completeness experiments (E10) and by the
/// examples; library users embedding verification into an existing system call
/// [`Verifier::observe`] directly instead.
pub fn run_verified<A, O>(
    drv: &crate::drv::Drv<A>,
    verifier: &Verifier<O>,
    workload_for: impl Fn(usize) -> Vec<linrv_history::Operation> + Sync,
) -> VerifierRun
where
    A: linrv_runtime::ConcurrentObject,
    O: GenLinObject,
{
    let n = verifier.processes().min(drv.processes());
    let results: Vec<(usize, Option<usize>, Vec<History>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for index in 0..n {
            let drv = &drv;
            let verifier = &verifier;
            let workload_for = &workload_for;
            handles.push(scope.spawn(move || {
                let process = ProcessId::new(index as u32);
                let ops = workload_for(index);
                let mut first_error = None;
                let mut witnesses = Vec::new();
                for (k, op) in ops.iter().enumerate() {
                    let response = drv.apply_drv(process, op);
                    match verifier.observe(process, response.tuple()) {
                        VerifierOutcome::Ok => {}
                        VerifierOutcome::Error { witness } => {
                            if first_error.is_none() {
                                first_error = Some(k);
                            }
                            witnesses.push(witness);
                        }
                        VerifierOutcome::InvalidViews(err) => {
                            panic!("DRV wrapper produced invalid views: {err}")
                        }
                    }
                }
                (ops.len(), first_error, witnesses)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut run = VerifierRun {
        operations: results.iter().map(|(ops, _, _)| ops).sum(),
        first_error_at: results.iter().map(|(_, first, _)| *first).collect(),
        witnesses: Vec::new(),
    };
    for (_, _, mut w) in results {
        run.witnesses.append(&mut w);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drv::Drv;
    use linrv_check::LinSpec;
    use linrv_runtime::faulty::{LossyQueue, StutteringCounter, Theorem51Queue};
    use linrv_runtime::impls::{AtomicCounter, MsQueue, SpecObject, TreiberStack};
    use linrv_runtime::{Workload, WorkloadKind};
    use linrv_spec::ops::queue;
    use linrv_spec::{CounterSpec, QueueSpec, StackSpec};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn observing_correct_sequential_usage_reports_no_error() {
        let drv = Drv::new(SpecObject::new(QueueSpec::new()), 2);
        let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), 2);
        for (proc_index, op) in [
            (0, queue::enqueue(1)),
            (1, queue::dequeue()),
            (0, queue::dequeue()),
        ] {
            let r = drv.apply_drv(p(proc_index), &op);
            assert!(verifier.observe(p(proc_index), r.tuple()).is_ok());
        }
        assert!(verifier.current_sketch(p(0)).unwrap().is_sequential());
        assert_eq!(verifier.processes(), 2);
    }

    #[test]
    fn completeness_detected_violation_carries_a_witness() {
        // Tight interleaving over the Theorem 5.1 queue: p2's dequeue completes
        // entirely before p1's enqueue is announced, so the violation is visible.
        let drv = Drv::new(Theorem51Queue::new(p(1)), 2);
        let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), 2);

        let deq = drv.announce(p(1), &queue::dequeue());
        let deq_value = drv.call_inner(&deq);
        let deq_resp = drv.collect(deq, deq_value);
        assert!(!verifier.observe(p(1), deq_resp.tuple()).is_ok());

        let enq = drv.apply_drv(p(0), &queue::enqueue(1));
        let outcome = verifier.observe(p(0), enq.tuple());
        let witness = outcome.witness().expect("stability: error persists");
        // The witness is itself a non-linearizable history of A* (predictive soundness).
        assert!(!LinSpec::new(QueueSpec::new()).contains(witness));
    }

    #[test]
    fn soundness_multi_threaded_correct_queue_never_errors() {
        let n = 3;
        let drv = Drv::new(MsQueue::new(), n);
        let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), n);
        let workload = Workload::new(WorkloadKind::Queue, 17);
        let run = run_verified(&drv, &verifier, |i| workload.operations_for(i, 20));
        assert!(run.error_free(), "false alarm on a correct queue");
        assert_eq!(run.operations, 60);
    }

    #[test]
    fn soundness_multi_threaded_correct_stack_never_errors() {
        let n = 2;
        let drv = Drv::new(TreiberStack::new(), n);
        let verifier = Verifier::new(LinSpec::new(StackSpec::new()), n);
        let workload = Workload::new(WorkloadKind::Stack, 23);
        let run = run_verified(&drv, &verifier, |i| workload.operations_for(i, 25));
        assert!(run.error_free(), "false alarm on a correct stack");
    }

    #[test]
    fn soundness_multi_threaded_correct_counter_never_errors() {
        let n = 3;
        let drv = Drv::new(AtomicCounter::new(), n);
        let verifier = Verifier::new(LinSpec::new(CounterSpec::new()), n);
        let workload = Workload::new(WorkloadKind::Counter, 29);
        let run = run_verified(&drv, &verifier, |i| workload.operations_for(i, 15));
        assert!(run.error_free(), "false alarm on a correct counter");
    }

    #[test]
    fn completeness_lossy_queue_is_eventually_reported() {
        // Single process: every lost element eventually shows up as a dequeue of the
        // wrong value or a premature `empty`, and the verifier must flag it.
        let drv = Drv::new(LossyQueue::new(2), 1);
        let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), 1);
        let mut errored = false;
        for i in 0..10 {
            let r = drv.apply_drv(p(0), &queue::enqueue(i));
            if !verifier.observe(p(0), r.tuple()).is_ok() {
                errored = true;
            }
        }
        for _ in 0..10 {
            let r = drv.apply_drv(p(0), &queue::dequeue());
            if !verifier.observe(p(0), r.tuple()).is_ok() {
                errored = true;
            }
        }
        assert!(errored, "lossy queue was never reported");
    }

    #[test]
    fn completeness_and_stability_stuttering_counter() {
        use linrv_spec::ops::counter;
        let drv = Drv::new(StutteringCounter::new(2), 1);
        let verifier = Verifier::new(LinSpec::new(CounterSpec::new()), 1);
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            let r = drv.apply_drv(p(0), &counter::inc());
            outcomes.push(verifier.observe(p(0), r.tuple()).is_ok());
        }
        // The third increment repeats a value; from then on every observation errors
        // (stability, Theorem 8.1 (3)).
        assert!(outcomes.iter().any(|ok| !ok));
        let first_bad = outcomes.iter().position(|ok| !ok).unwrap();
        assert!(outcomes[first_bad..].iter().all(|ok| !ok));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_panics() {
        let verifier = Verifier::new(LinSpec::new(QueueSpec::new()), 1);
        let drv = Drv::new(MsQueue::new(), 2);
        let r = drv.apply_drv(p(1), &queue::dequeue());
        let _ = verifier.observe(p(1), r.tuple());
    }
}
