//! Execution certificates for accountability and forensics (Section 8.3).

use crate::view::TupleSet;
use linrv_history::History;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A certificate of the computation performed so far by a self-enforced implementation
/// (Theorem 8.2 (3)): the exchanged view tuples, the sketch history they encode, and
/// whether that history is a member of the verified object.
///
/// Certificates are serialisable (via `serde`) so that a client can persist them for a
/// later forensic stage, as Section 8.3 suggests: once an incorrect response is
/// detected at runtime, the certificate names the offending implementation and contains
/// a history witnessing the violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Description of the abstract object the implementation claims to implement.
    pub object: String,
    /// Name of the wrapped implementation.
    pub implementation: String,
    /// The view tuples visible at certification time.
    pub tuples: TupleSet,
    /// The sketch history `X(τ)` rebuilt from the tuples — similar to the actual
    /// history of the self-enforced implementation at the moment of the request.
    pub sketch: History,
    /// Whether the sketch is a member of the object (i.e. whether all responses so far
    /// are certified correct).
    pub correct: bool,
}

impl Certificate {
    /// Returns `true` when the certificate attests that all responses so far are
    /// correct.
    pub fn is_correct(&self) -> bool {
        self.correct
    }

    /// Number of completed operations covered by the certificate.
    pub fn operations(&self) -> usize {
        self.tuples.len()
    }

    /// Renders the certificate as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "certificate for {} (object: {})\n",
            self.implementation, self.object
        ));
        out.push_str(&format!(
            "verdict: {}\n",
            if self.correct { "CORRECT" } else { "VIOLATION" }
        ));
        out.push_str(&format!("operations covered: {}\n", self.operations()));
        out.push_str("sketch history:\n");
        out.push_str(&self.sketch.to_string());
        out
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_mentions_verdict_and_counts() {
        let cert = Certificate {
            object: "queue".into(),
            implementation: "test".into(),
            tuples: TupleSet::new(),
            sketch: History::new(),
            correct: true,
        };
        assert!(cert.is_correct());
        assert_eq!(cert.operations(), 0);
        assert!(cert.render().contains("CORRECT"));
        assert!(cert.to_string().contains("queue"));
    }
}
