//! Views: the static encoding of real-time order (Section 7.3.3, Remark 7.2).
//!
//! In the `A → A*` transform (Figure 7), every operation announces an *invocation pair*
//! before calling the underlying implementation `A`, and returns — together with `A`'s
//! response — the set of all invocation pairs announced so far, obtained with an atomic
//! snapshot. That set is the operation's **view**. Views are unordered sets, yet (for
//! tight executions) they capture the real-time order of the execution exactly: this
//! duality between views and interval-sequential histories is what makes the `DRV`
//! class predictively verifiable.

use linrv_history::{OpId, OpValue, Operation, ProcessId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The announcement a process publishes before invoking the wrapped implementation:
/// "process `p` is about to execute operation `op`" (the pair `(p_i, op_i)` of
/// Figure 7, Line 01).
///
/// The paper assumes all `Apply` inputs are distinct; `op_id` realises that assumption
/// by tagging each announcement with a unique identifier, so a process may re-issue the
/// same operation description without creating ambiguity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvocationPair {
    /// Announcing process.
    pub process: ProcessId,
    /// Unique identifier of the operation instance.
    pub op_id: OpId,
    /// Operation description.
    pub operation: Operation,
}

impl fmt::Display for InvocationPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {} #{})", self.process, self.operation, self.op_id)
    }
}

/// A view: the set of invocation pairs a completed operation observed in its snapshot
/// (Figure 7, Lines 05–06).
pub type View = BTreeSet<InvocationPair>;

/// The 4-tuple `(p_i, op_i, y_i, λ_i)` associated with a completed operation of an
/// implementation in the `DRV` class: the process, the operation, the response obtained
/// from the underlying implementation, and the view.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewTuple {
    /// The invocation pair identifying the operation.
    pub pair: InvocationPair,
    /// The response obtained from the underlying implementation `A`.
    pub response: OpValue,
    /// The view returned by the operation.
    pub view: View,
}

impl ViewTuple {
    /// Creates a view tuple.
    pub fn new(pair: InvocationPair, response: OpValue, view: View) -> Self {
        ViewTuple {
            pair,
            response,
            view,
        }
    }
}

impl fmt::Display for ViewTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} : {}  view={{{}}}",
            self.pair,
            self.response,
            self.view
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// A set of view tuples — the `λ_E` of Section 7.3.3 and the content the verifier
/// exchanges through its snapshot object (Figure 10, variable `τ_i`).
pub type TupleSet = BTreeSet<ViewTuple>;

/// Violations of the view properties of Remark 7.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewPropertyError {
    /// An operation's own invocation pair is missing from its view (self-inclusion).
    SelfInclusion {
        /// The offending tuple's invocation pair.
        pair: InvocationPair,
    },
    /// Two views are incomparable under containment (containment comparability).
    Incomparable {
        /// One of the two offending operations.
        left: InvocationPair,
        /// The other offending operation.
        right: InvocationPair,
    },
    /// Two operations of the same process each contain the other in their views
    /// (process sequentiality).
    ProcessSequentiality {
        /// One of the two offending operations.
        first: InvocationPair,
        /// The other offending operation.
        second: InvocationPair,
    },
}

impl fmt::Display for ViewPropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewPropertyError::SelfInclusion { pair } => {
                write!(f, "view of {pair} does not contain the operation itself")
            }
            ViewPropertyError::Incomparable { left, right } => {
                write!(
                    f,
                    "views of {left} and {right} are incomparable under containment"
                )
            }
            ViewPropertyError::ProcessSequentiality { first, second } => write!(
                f,
                "operations {first} and {second} of the same process observe each other"
            ),
        }
    }
}

impl std::error::Error for ViewPropertyError {}

/// Checks the three view properties of Remark 7.2 over a set of view tuples:
///
/// 1. **Self-inclusion** — `(p_i, op_i) ∈ λ_i`;
/// 2. **Containment comparability** — any two views are ⊆-comparable;
/// 3. **Process sequentiality** — two distinct operations of the same process cannot
///    both appear in each other's views.
///
/// Any set of tuples produced by an implementation in the `DRV` class satisfies these
/// properties; the sketch construction ([`crate::sketch`]) relies on them.
pub fn check_view_properties(tuples: &TupleSet) -> Result<(), ViewPropertyError> {
    for tuple in tuples {
        if !tuple.view.contains(&tuple.pair) {
            return Err(ViewPropertyError::SelfInclusion {
                pair: tuple.pair.clone(),
            });
        }
    }
    for a in tuples {
        for b in tuples {
            if a == b {
                continue;
            }
            let a_in_b = a.view.is_subset(&b.view);
            let b_in_a = b.view.is_subset(&a.view);
            if !a_in_b && !b_in_a {
                return Err(ViewPropertyError::Incomparable {
                    left: a.pair.clone(),
                    right: b.pair.clone(),
                });
            }
            if a.pair.process == b.pair.process
                && a.pair.op_id != b.pair.op_id
                && a.view.contains(&b.pair)
                && b.view.contains(&a.pair)
            {
                return Err(ViewPropertyError::ProcessSequentiality {
                    first: a.pair.clone(),
                    second: b.pair.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_spec::ops::queue;

    fn pair(p: u32, id: u64) -> InvocationPair {
        InvocationPair {
            process: ProcessId::new(p),
            op_id: OpId::new(id),
            operation: queue::enqueue(id as i64),
        }
    }

    fn view_of(pairs: &[&InvocationPair]) -> View {
        pairs.iter().map(|p| (*p).clone()).collect()
    }

    #[test]
    fn valid_views_pass_all_three_properties() {
        let a = pair(0, 0);
        let b = pair(1, 1);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(
            a.clone(),
            OpValue::Bool(true),
            view_of(&[&a]),
        ));
        tuples.insert(ViewTuple::new(
            b.clone(),
            OpValue::Bool(true),
            view_of(&[&a, &b]),
        ));
        assert_eq!(check_view_properties(&tuples), Ok(()));
    }

    #[test]
    fn missing_self_inclusion_is_detected() {
        let a = pair(0, 0);
        let b = pair(1, 1);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(
            a.clone(),
            OpValue::Bool(true),
            view_of(&[&b]),
        ));
        assert!(matches!(
            check_view_properties(&tuples),
            Err(ViewPropertyError::SelfInclusion { .. })
        ));
    }

    #[test]
    fn incomparable_views_are_detected() {
        let a = pair(0, 0);
        let b = pair(1, 1);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(
            a.clone(),
            OpValue::Bool(true),
            view_of(&[&a]),
        ));
        tuples.insert(ViewTuple::new(
            b.clone(),
            OpValue::Bool(true),
            view_of(&[&b]),
        ));
        assert!(matches!(
            check_view_properties(&tuples),
            Err(ViewPropertyError::Incomparable { .. })
        ));
    }

    #[test]
    fn mutual_observation_by_one_process_is_detected() {
        let a = pair(0, 0);
        let b = pair(0, 1);
        let mut tuples = TupleSet::new();
        tuples.insert(ViewTuple::new(
            a.clone(),
            OpValue::Bool(true),
            view_of(&[&a, &b]),
        ));
        tuples.insert(ViewTuple::new(
            b.clone(),
            OpValue::Bool(true),
            view_of(&[&a, &b]),
        ));
        assert!(matches!(
            check_view_properties(&tuples),
            Err(ViewPropertyError::ProcessSequentiality { .. })
        ));
    }

    #[test]
    fn display_formats_are_informative() {
        let a = pair(0, 3);
        let t = ViewTuple::new(a.clone(), OpValue::Bool(true), view_of(&[&a]));
        assert!(t.to_string().contains("Enqueue(3)"));
        let err = ViewPropertyError::SelfInclusion { pair: a };
        assert!(err.to_string().contains("does not contain"));
    }
}
