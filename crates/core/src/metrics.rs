//! DRV hot-path metrics: lazily registered handles in the global
//! [`Registry`].
//!
//! These are the profiling hooks the ROADMAP's hot-path item asks for: the
//! announce/collect tax of the Figure 7 transform is known to be ~300µs/op
//! and quadratic in the object's op count (views grow with every operation),
//! and `linrv_drv_view_size` measures exactly that growth on a live run.
//!
//! Everything here is gated on [`linrv_obs::enabled`] at the call sites in
//! [`crate::drv`] and [`crate::sketch`]: with recording disabled (the
//! default) the hot path pays one relaxed load and a predicted branch per
//! phase, nothing else.

use linrv_obs::{Counter, Histogram, MetricKind, Registry};
use std::sync::OnceLock;

const ANNOUNCE_NS: &str = "linrv_drv_announce_ns";
const ANNOUNCE_NS_HELP: &str = "DRV announce phase latency (Figure 7 lines 01-02), nanoseconds";
const COLLECT_NS: &str = "linrv_drv_collect_ns";
const COLLECT_NS_HELP: &str = "DRV collect phase latency (Figure 7 lines 05-07), nanoseconds";
const SKETCH_NS: &str = "linrv_drv_sketch_ns";
const SKETCH_NS_HELP: &str = "sketch_history construction latency, nanoseconds";
const VIEW_SIZE: &str = "linrv_drv_view_size";
const VIEW_SIZE_HELP: &str = "announce-view size per collected operation (invocation pairs)";
const OPS_ANNOUNCED: &str = "linrv_drv_ops_announced_total";
const OPS_ANNOUNCED_HELP: &str = "operations announced in the snapshot object";
const OPS_COLLECTED: &str = "linrv_drv_ops_collected_total";
const OPS_COLLECTED_HELP: &str = "operations whose view has been collected";

/// Announce-phase latency histogram.
pub fn announce_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(ANNOUNCE_NS, ANNOUNCE_NS_HELP))
}

/// Collect-phase latency histogram.
pub fn collect_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(COLLECT_NS, COLLECT_NS_HELP))
}

/// `sketch_history` construction latency histogram.
pub fn sketch_ns() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(SKETCH_NS, SKETCH_NS_HELP))
}

/// Announce-view size distribution (one sample per collected operation).
pub fn view_size() -> &'static Histogram {
    static SLOT: OnceLock<Histogram> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().histogram(VIEW_SIZE, VIEW_SIZE_HELP))
}

/// Operations announced (phase 1 completions).
pub fn ops_announced() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(OPS_ANNOUNCED, OPS_ANNOUNCED_HELP))
}

/// Operations collected (phase 3 completions). At quiescence
/// `ops_announced() - ops_collected()` is the number of announced-but-pending
/// operations (crashed or in-flight processes).
pub fn ops_collected() -> &'static Counter {
    static SLOT: OnceLock<Counter> = OnceLock::new();
    SLOT.get_or_init(|| Registry::global().counter(OPS_COLLECTED, OPS_COLLECTED_HELP))
}

/// Declares every DRV family in the global registry so exports list them
/// even before (or without) any recording. Called by `--stats` surfaces.
pub fn declare() {
    let registry = Registry::global();
    registry.declare(ANNOUNCE_NS, MetricKind::Histogram, ANNOUNCE_NS_HELP);
    registry.declare(COLLECT_NS, MetricKind::Histogram, COLLECT_NS_HELP);
    registry.declare(SKETCH_NS, MetricKind::Histogram, SKETCH_NS_HELP);
    registry.declare(VIEW_SIZE, MetricKind::Histogram, VIEW_SIZE_HELP);
    registry.declare(OPS_ANNOUNCED, MetricKind::Counter, OPS_ANNOUNCED_HELP);
    registry.declare(OPS_COLLECTED, MetricKind::Counter, OPS_COLLECTED_HELP);
}
