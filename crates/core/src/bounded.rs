//! Bounded-size base objects via linked lists (Section 9.1).
//!
//! The constructions of Figures 7 and 10 write ever-growing sets into shared registers,
//! which requires registers of unbounded size. Section 9.1 removes the assumption:
//! represent each set as a singly linked list, and let the register hold only the
//! (bounded-size) pointer to the first node; adding an element allocates one node that
//! points to the previous head. [`PersistentList`] is that representation: an immutable
//! cons list with `O(1)` insertion and full structural sharing, so publishing a new
//! head costs one pointer write regardless of how many elements have accumulated.
//!
//! The `bounded_sets` benchmark (experiment E13) compares announcement publishing with
//! `PersistentList` heads against cloning whole `BTreeSet`s.

use std::fmt;
use std::sync::Arc;

/// One node of a persistent cons list.
#[derive(Debug)]
struct Node<T> {
    value: T,
    next: Option<Arc<Node<T>>>,
}

/// An immutable singly linked list with structural sharing: pushing returns a new list
/// whose tail is shared with the original, so the head pointer is the only per-update
/// allocation — the Section 9.1 representation of grow-only sets.
#[derive(Debug, Clone, Default)]
pub struct PersistentList<T> {
    head: Option<Arc<Node<T>>>,
    len: usize,
}

impl<T> PersistentList<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        PersistentList { head: None, len: 0 }
    }

    /// Number of elements in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a new list with `value` prepended; the original is untouched and its
    /// nodes are shared.
    pub fn push(&self, value: T) -> Self {
        PersistentList {
            head: Some(Arc::new(Node {
                value,
                next: self.head.clone(),
            })),
            len: self.len + 1,
        }
    }

    /// Iterates over the elements, most recently pushed first.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            next: self.head.as_deref(),
        }
    }
}

impl<T: PartialEq> PersistentList<T> {
    /// Returns `true` when `value` appears in the list.
    pub fn contains(&self, value: &T) -> bool {
        self.iter().any(|v| v == value)
    }
}

impl<T: Ord + Clone> PersistentList<T> {
    /// Collects the elements into a sorted set (deduplicated).
    pub fn to_set(&self) -> std::collections::BTreeSet<T> {
        self.iter().cloned().collect()
    }

    /// Returns `true` when every element of `self` also appears in `other`, comparing
    /// as sets.
    pub fn subset_of(&self, other: &Self) -> bool {
        self.to_set().is_subset(&other.to_set())
    }
}

impl<'a, T> IntoIterator for &'a PersistentList<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T> FromIterator<T> for PersistentList<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut list = PersistentList::new();
        for value in iter {
            list = list.push(value);
        }
        list
    }
}

/// Iterator over a [`PersistentList`], most recently pushed element first.
#[derive(Debug)]
pub struct Iter<'a, T> {
    next: Option<&'a Node<T>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.next?;
        self.next = node.next.as_deref();
        Some(&node.value)
    }
}

impl<T: fmt::Display> fmt::Display for PersistentList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shares_structure() {
        let a = PersistentList::new().push(1).push(2);
        let b = a.push(3);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert!(b.contains(&1));
        assert!(!a.contains(&3));
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![3, 2, 1]);
    }

    #[test]
    fn set_conversions_and_subset() {
        let a: PersistentList<i32> = [1, 2, 3].into_iter().collect();
        let b = a.push(4);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert_eq!(a.to_set().len(), 3);
    }

    #[test]
    fn empty_list_behaviour_and_display() {
        let empty: PersistentList<i32> = PersistentList::new();
        assert!(empty.is_empty());
        assert_eq!(empty.iter().count(), 0);
        assert_eq!(empty.to_string(), "[]");
        assert_eq!(PersistentList::new().push(7).to_string(), "[7]");
    }

    #[test]
    fn publishing_heads_is_cheap_even_for_long_lists() {
        // Pushing onto a long list must not clone the tail: lengths grow but the
        // shared suffix is the same allocation.
        let mut list = PersistentList::new();
        for i in 0..10_000 {
            list = list.push(i);
        }
        let before = list.clone();
        let after = list.push(10_000);
        assert_eq!(before.len() + 1, after.len());
        assert!(before.subset_of(&after));
    }
}
