//! Per-shard bounded MPSC batch queues.
//!
//! Every shard owns one [`BoundedQueue`]: sessions (many producers) push
//! `(object, event)` pairs, checker threads (one drainer at a time per shard,
//! enforced by the shard's drain lock) take them out in batches. The queue is
//! bounded so a slow checker pool back-pressures producers instead of letting
//! unchecked events pile up without limit.
//!
//! Built on `std::sync` primitives: the vendored `parking_lot` stub has no
//! `Condvar`, and the pool needs real blocking waits.

use linrv_history::Event;
use linrv_obs::{Gauge, Histogram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One shard's bounded event queue.
pub(crate) struct BoundedQueue {
    inner: Mutex<VecDeque<(u64, Event)>>,
    not_full: Condvar,
    capacity: usize,
    /// Registry gauge mirroring the current queue length (updated under the
    /// queue mutex, so it never drifts from `len()`).
    depth: Gauge,
    /// How long producers spent blocked on this queue being full.
    blocked_ns: Histogram,
}

impl BoundedQueue {
    pub(crate) fn new(capacity: usize, depth: Gauge, blocked_ns: Histogram) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            depth,
            blocked_ns,
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<(u64, Event)>> {
        // Checker threads do not panic while holding the lock; recover from
        // poisoning anyway rather than wedging every producer.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues one event, blocking while the queue is full.
    ///
    /// Returns `false` (the event is dropped) when `shutdown` is set — during
    /// teardown nothing will ever drain the queue again, so blocking would
    /// deadlock the producer against the dying pool.
    pub(crate) fn push(&self, item: (u64, Event), shutdown: &AtomicBool) -> bool {
        let mut queue = self.lock();
        // Only take a clock reading when the push actually blocks *and*
        // recording is on: the uncontended fast path stays timer-free.
        let mut blocked_at: Option<Instant> = None;
        while queue.len() >= self.capacity {
            if shutdown.load(Ordering::Acquire) {
                drop(queue);
                self.record_blocked(blocked_at);
                return false;
            }
            if blocked_at.is_none() && linrv_obs::enabled() {
                blocked_at = Some(Instant::now());
            }
            // A timed wait keeps the producer live across missed wakeups and
            // shutdown races without any elaborate signalling protocol.
            let (guard, _) = self
                .not_full
                .wait_timeout(queue, Duration::from_millis(10))
                .unwrap_or_else(|p| p.into_inner());
            queue = guard;
        }
        queue.push_back(item);
        self.depth.set(queue.len() as i64);
        drop(queue);
        self.record_blocked(blocked_at);
        true
    }

    fn record_blocked(&self, blocked_at: Option<Instant>) {
        if let Some(start) = blocked_at {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.blocked_ns.record(ns);
        }
    }

    /// Moves up to `max` events into `out`, preserving order; returns how many.
    pub(crate) fn drain_into(&self, out: &mut Vec<(u64, Event)>, max: usize) -> usize {
        let mut queue = self.lock();
        let n = queue.len().min(max);
        out.extend(queue.drain(..n));
        self.depth.set(queue.len() as i64);
        if n > 0 {
            self.not_full.notify_all();
        }
        n
    }

    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{OpId, OpValue, ProcessId};
    use std::sync::atomic::AtomicBool;

    fn ev(i: u64) -> (u64, Event) {
        (
            i,
            Event::response(ProcessId::new(0), OpId::new(i), OpValue::Unit),
        )
    }

    fn queue_of(capacity: usize) -> BoundedQueue {
        BoundedQueue::new(capacity, Gauge::standalone(), Histogram::standalone())
    }

    #[test]
    fn drains_in_fifo_order_and_respects_batch_size() {
        let queue = queue_of(16);
        let shutdown = AtomicBool::new(false);
        for i in 0..5 {
            assert!(queue.push(ev(i), &shutdown));
        }
        assert_eq!(queue.depth.get(), 5, "the gauge tracks the length");
        let mut out = Vec::new();
        assert_eq!(queue.drain_into(&mut out, 3), 3);
        assert_eq!(queue.depth.get(), 2);
        assert_eq!(queue.drain_into(&mut out, 100), 2);
        let objects: Vec<u64> = out.iter().map(|(o, _)| *o).collect();
        assert_eq!(objects, vec![0, 1, 2, 3, 4]);
        assert_eq!(queue.len(), 0);
        assert_eq!(queue.depth.get(), 0);
    }

    #[test]
    fn full_queue_blocks_until_drained_and_drops_on_shutdown() {
        let queue = std::sync::Arc::new(queue_of(2));
        let shutdown = AtomicBool::new(false);
        assert!(queue.push(ev(0), &shutdown));
        assert!(queue.push(ev(1), &shutdown));
        // A third push blocks until a concurrent drain frees a slot.
        std::thread::scope(|scope| {
            let q = std::sync::Arc::clone(&queue);
            let pusher = scope.spawn(move || {
                let shutdown = AtomicBool::new(false);
                q.push(ev(2), &shutdown)
            });
            std::thread::sleep(Duration::from_millis(20));
            let mut out = Vec::new();
            queue.drain_into(&mut out, 1);
            assert!(pusher.join().unwrap());
        });
        // Once shut down, a push into a full queue drops instead of blocking.
        let mut out = Vec::new();
        queue.drain_into(&mut out, 100);
        let down = AtomicBool::new(true);
        assert!(queue.push(ev(3), &down));
        assert!(queue.push(ev(4), &down));
        assert!(!queue.push(ev(5), &down), "full + shutdown must drop");
    }
}
