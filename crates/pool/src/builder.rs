//! The fluent [`PoolBuilder`]: sharding, checker threads, queueing and
//! per-object monitor configuration in one chain.

use crate::pool::{MonitorPool, PoolConfig};
use crate::state::CheckCfg;
use linrv::{Mode, SnapshotBackend, DEFAULT_CAPACITY};
use linrv_runtime::ConcurrentObject;
use linrv_spec::TypedObject;
use linrv_trace::TaggedEventSink;
use std::fmt;
use std::sync::Arc;

/// Default number of shards when [`PoolBuilder::shards`] is not called.
pub const DEFAULT_SHARDS: usize = 16;

/// Default bound of each shard's event queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

/// Default batch size of one drain.
pub const DEFAULT_BATCH: usize = 256;

/// Default completed-operation count triggering an object's first incremental
/// check (the schedule doubles from there).
pub const DEFAULT_FIRST_CHECK: usize = 64;

/// Fluent configuration of a [`MonitorPool`].
///
/// ```
/// use linrv_pool::prelude::*;
/// use linrv::runtime::impls::AtomicIntRegister;
///
/// let pool = PoolBuilder::new(RegisterSpec::new())
///     .shards(4)
///     .workers(2)
///     .build(|_object| AtomicIntRegister::new());
/// let session = pool.session(7).unwrap();
/// session.write(42).unwrap();
/// assert_eq!(session.read().unwrap(), 42);
/// assert!(pool.check_all().values().all(|verdict| verdict.is_correct()));
/// ```
pub struct PoolBuilder<S> {
    spec: S,
    shards: usize,
    workers: usize,
    queue_capacity: usize,
    batch: usize,
    sessions_per_object: usize,
    backend: SnapshotBackend,
    mode: Mode,
    gc: bool,
    first_check: usize,
    sink: Option<Arc<dyn TaggedEventSink>>,
}

impl<S: fmt::Debug> fmt::Debug for PoolBuilder<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolBuilder")
            .field("spec", &self.spec)
            .field("shards", &self.shards)
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("batch", &self.batch)
            .field("sessions_per_object", &self.sessions_per_object)
            .field("backend", &self.backend)
            .field("mode", &self.mode)
            .field("gc", &self.gc)
            .field("first_check", &self.first_check)
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

impl<S: TypedObject + Clone + Send + Sync + 'static> PoolBuilder<S> {
    /// Starts a builder for pools verifying every object against `spec`.
    pub fn new(spec: S) -> Self {
        PoolBuilder {
            spec,
            shards: DEFAULT_SHARDS,
            workers: default_workers(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            batch: DEFAULT_BATCH,
            sessions_per_object: DEFAULT_CAPACITY,
            backend: SnapshotBackend::default(),
            mode: Mode::Observe,
            gc: true,
            first_check: DEFAULT_FIRST_CHECK,
            sink: None,
        }
    }

    /// Number of shards object ids are hashed across. Each shard has its own
    /// bounded event queue and object registry. Defaults to
    /// [`DEFAULT_SHARDS`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Number of checker threads draining the shards. Defaults to the
    /// machine's available parallelism, clamped to `2..=8`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bound of each shard's event queue: producers block (back-pressure) when
    /// their shard's queue is full. Defaults to [`DEFAULT_QUEUE_CAPACITY`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Maximum events one drain takes from a shard. Defaults to
    /// [`DEFAULT_BATCH`].
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Maximum concurrently registered sessions per object (the per-object
    /// monitor's process capacity). Defaults to
    /// [`DEFAULT_CAPACITY`](linrv::DEFAULT_CAPACITY).
    pub fn sessions_per_object(mut self, sessions: usize) -> Self {
        self.sessions_per_object = sessions.max(1);
        self
    }

    /// Snapshot construction of every per-object monitor. Defaults to
    /// [`SnapshotBackend::Afek`].
    pub fn snapshot(mut self, backend: SnapshotBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Verification mode of every per-object monitor. Defaults to
    /// [`Mode::Observe`] — the pool's own incremental checkers already verify
    /// off the critical path, which is the point of pooling; select
    /// [`Mode::Enforce`] to additionally gate every response.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether checked prefixes are garbage-collected (default `true`).
    /// Disable to retain each object's full history in its check state — full
    /// violation witnesses at unbounded memory.
    pub fn gc(mut self, gc: bool) -> Self {
        self.gc = gc;
        self
    }

    /// Completed-operation count triggering an object's first incremental
    /// check; subsequent checks follow a doubling schedule. Defaults to
    /// [`DEFAULT_FIRST_CHECK`].
    pub fn first_check(mut self, first_check: usize) -> Self {
        self.first_check = first_check.max(1);
        self
    }

    /// Streams every ingested event, tagged with its object id, into `sink` —
    /// with a [`SharedTraceWriter`](linrv_trace::SharedTraceWriter) this
    /// captures a multi-object trace that `linrv check` re-verifies offline by
    /// per-object projection.
    pub fn trace_to(mut self, sink: impl TaggedEventSink + 'static) -> Self {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Finishes the pool. `factory` builds the black-box implementation
    /// instance of each object on first use.
    pub fn build<A, F>(self, factory: F) -> MonitorPool<A, S>
    where
        A: ConcurrentObject + 'static,
        F: Fn(u64) -> A + Send + Sync + 'static,
    {
        MonitorPool::start(
            self.spec,
            Box::new(factory),
            self.shards,
            self.workers,
            self.queue_capacity,
            PoolConfig {
                sessions_per_object: self.sessions_per_object,
                backend: self.backend,
                mode: self.mode,
                batch: self.batch,
                check: CheckCfg {
                    gc: self.gc,
                    first_check: self.first_check,
                },
            },
            self.sink,
        )
    }
}
