//! Sharded multi-object monitoring on top of the `linrv` facade.
//!
//! A single [`Monitor`](linrv::Monitor) verifies one object. Real services
//! host *many* logical objects — one queue per tenant, one register per key —
//! and verifying each with its own dedicated checker thread does not scale.
//! This crate adds the missing layer: a [`MonitorPool`] that
//!
//! * **shards** object ids across a fixed number of shards (splitmix64 hash),
//!   creating each object's monitor — and, through a user factory, its
//!   implementation instance — lazily on first use;
//! * **ingests** events through per-shard bounded MPSC queues: every
//!   per-object monitor taps its session traffic into its shard's queue, and
//!   full queues back-pressure producers instead of buffering without limit;
//! * **checks** asynchronously with a small work-stealing pool of checker
//!   threads that drain the shards in batches and run each object's
//!   incremental membership check on a geometric schedule (the total work
//!   stays within a constant factor of one final check);
//! * **bounds memory** by garbage-collecting each object's *checked prefix*:
//!   after a passing check, the maximal run of operations whose linearization
//!   order is forced by real time is replayed through the specification and
//!   replaced by its unique successor state, so the retained tail scales with
//!   the object's concurrency, not with its age. The effect is observable via
//!   [`MonitorPool::stats`] (`gced_events` vs `retained_events`).
//!
//! Sessions keep the full typed API: [`MonitorPool::session`] returns a
//! [`PoolSession`] dereferencing to the ordinary [`Session`](linrv::Session).
//! Verdicts come per object — [`MonitorPool::check_all`] yields a
//! `BTreeMap<u64, PoolVerdict>`, and a faulty object is reported with its id
//! and violating prefix while every other object keeps verifying.
//!
//! ```
//! use linrv_pool::prelude::*;
//! use linrv::runtime::impls::AtomicCounter;
//!
//! let pool = PoolBuilder::new(CounterSpec::new())
//!     .shards(8)
//!     .workers(2)
//!     .build(|_object| AtomicCounter::new());
//! for object in 0..100 {
//!     let session = pool.session(object).unwrap();
//!     session.inc().unwrap();
//!     assert_eq!(session.read().unwrap(), 1);
//! }
//! let verdicts = pool.check_all();
//! assert_eq!(verdicts.len(), 100);
//! assert!(verdicts.values().all(|verdict| verdict.is_correct()));
//! ```
//!
//! For multi-object traces, [`PoolBuilder::trace_to`] streams every event
//! tagged with its object id into a
//! [`TaggedEventSink`](linrv_trace::TaggedEventSink) — with a
//! [`SharedTraceWriter`](linrv_trace::SharedTraceWriter) this produces a
//! portable trace that `linrv check` re-verifies offline per object.

mod builder;
pub mod metrics;
mod pool;
mod queue;
mod state;
mod verdict;

pub use builder::{
    PoolBuilder, DEFAULT_BATCH, DEFAULT_FIRST_CHECK, DEFAULT_QUEUE_CAPACITY, DEFAULT_SHARDS,
};
pub use pool::{MonitorPool, ObjectStats, PoolSession, PoolStats, ShardStats};
pub use verdict::{PoolVerdict, PoolViolation};

/// Everything needed to build and drive a pool: the pool types plus the full
/// single-monitor prelude of [`linrv::prelude`].
pub mod prelude {
    pub use crate::{MonitorPool, PoolBuilder, PoolSession, PoolStats, PoolVerdict, PoolViolation};
    pub use linrv::prelude::*;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use linrv_history::OpValue;
    use linrv_runtime::faulty::StaleRegister;
    use linrv_runtime::impls::{AtomicCounter, AtomicIntRegister};
    use linrv_spec::ops;

    #[test]
    fn pool_verifies_many_objects_and_reports_stats() {
        let pool = PoolBuilder::new(CounterSpec::new())
            .shards(4)
            .workers(2)
            .first_check(4)
            .build(|_| AtomicCounter::new());
        for object in 0..50 {
            let session = pool.session(object).unwrap();
            for i in 0..10 {
                assert_eq!(session.inc().unwrap(), i);
            }
        }
        let verdicts = pool.check_all();
        assert_eq!(verdicts.len(), 50);
        assert!(verdicts.values().all(|verdict| verdict.is_correct()));
        let stats = pool.stats();
        assert_eq!(stats.objects, 50);
        assert_eq!(stats.ingested, 1000, "20 events per object");
        assert_eq!(stats.processed, 1000);
        assert_eq!(stats.dropped, 0);
        assert!(stats.gced_events > 0, "sequential load must be GC'd");
        assert!(stats.checks >= 50);
        assert_eq!(stats.violations, 0);
        let shard_stats = pool.shard_stats();
        assert_eq!(shard_stats.len(), 4);
        assert_eq!(shard_stats.iter().map(|s| s.objects).sum::<u64>(), 50);
        assert_eq!(shard_stats.iter().map(|s| s.ingested).sum::<u64>(), 1000);
    }

    #[test]
    fn faulty_object_is_isolated_with_its_id() {
        let bad = 13u64;
        let pool = PoolBuilder::new(RegisterSpec::new())
            .shards(4)
            .workers(2)
            .first_check(2)
            .build(move |object| -> Box<dyn linrv::runtime::ConcurrentObject> {
                if object == bad {
                    // Serves reads from a stale snapshot of the register.
                    Box::new(StaleRegister::new(3))
                } else {
                    Box::new(AtomicIntRegister::new())
                }
            });
        for object in 0..20 {
            let session = pool.session(object).unwrap();
            for i in 1..=6 {
                let _ = session.write(i);
                let _ = session.read();
            }
        }
        let verdicts = pool.check_all();
        let violating: Vec<u64> = verdicts
            .iter()
            .filter(|(_, verdict)| !verdict.is_correct())
            .map(|(object, _)| *object)
            .collect();
        assert_eq!(violating, vec![bad], "exactly the faulty object is flagged");
        let violation = verdicts[&bad].violation().unwrap();
        assert_eq!(violation.object, bad);
        assert!(!violation.witness.is_empty());
        let violations = pool.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].object, bad);
    }

    #[test]
    fn concurrent_sessions_per_object_are_checked() {
        let pool = std::sync::Arc::new(
            PoolBuilder::new(CounterSpec::new())
                .shards(2)
                .workers(2)
                .sessions_per_object(4)
                .first_check(8)
                .build(|_| AtomicCounter::new()),
        );
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                scope.spawn(move || {
                    for object in 0..8 {
                        let session = pool.session(object).unwrap();
                        for _ in 0..25 {
                            session.inc().unwrap();
                        }
                    }
                });
            }
        });
        let verdicts = pool.check_all();
        assert_eq!(verdicts.len(), 8);
        assert!(verdicts.values().all(|verdict| verdict.is_correct()));
        let stats = pool.stats();
        assert_eq!(stats.ingested, 4 * 8 * 25 * 2);
        assert_eq!(stats.processed, stats.ingested);
    }

    #[test]
    fn tagged_trace_is_captured_per_object() {
        use linrv_trace::{read_tagged_history, SharedTraceWriter, TraceFormat, TraceHeader};
        let sink = SharedTraceWriter::new(
            Vec::new(),
            TraceFormat::Jsonl,
            &TraceHeader::new(linrv_spec::ObjectKind::Counter).with_objects(3),
        )
        .unwrap();
        let pool = PoolBuilder::new(CounterSpec::new())
            .shards(2)
            .workers(1)
            .trace_to(sink.clone())
            .build(|_| AtomicCounter::new());
        for object in [3, 5, 9] {
            let session = pool.session(object).unwrap();
            session.inc().unwrap();
        }
        pool.quiesce();
        drop(pool);
        let bytes = sink.finish().unwrap();
        let (header, tagged) = read_tagged_history(bytes.as_slice()).unwrap();
        assert_eq!(header.objects, Some(3));
        assert_eq!(tagged.len(), 6);
        let mut objects: Vec<Option<u64>> = tagged.iter().map(|(object, _)| *object).collect();
        objects.dedup();
        assert_eq!(objects, vec![Some(3), Some(5), Some(9)]);
    }

    #[test]
    fn check_partitioned_runs_per_key_on_the_pool() {
        use linrv::check::PartitionedSpec;
        use linrv_history::{Event, History, OpId, ProcessId};
        let pool = PoolBuilder::new(RegisterSpec::new())
            .shards(2)
            .workers(2)
            .build(|_| AtomicIntRegister::new());
        let spec = PartitionedSpec::new(
            RegisterSpec::new,
            |operation| operation.arg.as_int().unwrap_or(0) / 10,
            "registers keyed by value decade",
        );
        let mut history = History::new();
        let mut op = |id: u64, operation, value| {
            history.push(Event::invocation(
                ProcessId::new(0),
                OpId::new(id),
                operation,
            ));
            history.push(Event::response(ProcessId::new(0), OpId::new(id), value));
        };
        // Key 0 behaves; key 1 claims a write of 10 returned false.
        op(0, ops::register::write(1), OpValue::Bool(true));
        op(1, ops::register::write(10), OpValue::Bool(false));
        let verdicts = pool.check_partitioned(&spec, &history).unwrap();
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[&0].is_member());
        assert!(verdicts[&1].is_violation());
    }
}
