//! The [`MonitorPool`]: many per-object monitors behind sharded ingestion and
//! a work-stealing pool of checker threads.

use crate::metrics::PoolMetrics;
use crate::queue::BoundedQueue;
use crate::state::{CheckCfg, CheckState};
use crate::verdict::{PoolVerdict, PoolViolation};
use linrv::{Mode, Monitor, MonitorBuilder, RegistryFull, Session, SnapshotBackend};
use linrv_check::{PartitionedSpec, Verdict, Violation};
use linrv_history::{Event, History};
use linrv_runtime::ConcurrentObject;
use linrv_spec::{SequentialSpec, TypedObject};
use linrv_trace::TaggedEventSink;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Non-generic ingestion state shared by sessions (producers) and checker
/// threads (consumers): the per-shard queues, the drain/shutdown signalling and
/// the injector for out-of-band jobs.
pub(crate) struct Ingest {
    queues: Vec<BoundedQueue>,
    shutdown: AtomicBool,
    /// Events handed to the pool (counted *before* enqueueing, so quiesce never
    /// declares victory while a push is in flight).
    ingested: AtomicU64,
    /// Events fed to a per-object check state.
    processed: AtomicU64,
    /// Events dropped because the pool shut down while a producer was blocked.
    dropped: AtomicU64,
    /// This pool's registry-backed series; the atomics above are mirrored
    /// into it at their increment sites, everything else records here only.
    metrics: Arc<PoolMetrics>,
    /// Wakes idle workers when events or jobs arrive.
    work_mutex: Mutex<()>,
    work_cv: Condvar,
    /// Wakes `quiesce` when processed/dropped catch up with ingested.
    quiesce_mutex: Mutex<()>,
    quiesce_cv: Condvar,
    /// Out-of-band jobs (final checks, partitioned sub-checks) run by the same
    /// worker threads that drain the shards.
    injector: Mutex<VecDeque<Job>>,
    /// The user's trace tap: every ingested event is forwarded here, tagged
    /// with its object id, before it enters the shard queue.
    sink: Option<Arc<dyn TaggedEventSink>>,
}

type Job = Box<dyn FnOnce() + Send>;

impl Ingest {
    fn new(
        shards: usize,
        queue_capacity: usize,
        sink: Option<Arc<dyn TaggedEventSink>>,
        metrics: Arc<PoolMetrics>,
    ) -> Self {
        Ingest {
            queues: (0..shards)
                .map(|shard| {
                    BoundedQueue::new(
                        queue_capacity,
                        metrics.queue_depth[shard].clone(),
                        metrics.producer_block_ns.clone(),
                    )
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            ingested: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            metrics,
            work_mutex: Mutex::new(()),
            work_cv: Condvar::new(),
            quiesce_mutex: Mutex::new(()),
            quiesce_cv: Condvar::new(),
            injector: Mutex::new(VecDeque::new()),
            sink,
        }
    }

    fn notify_work(&self) {
        drop(lock(&self.work_mutex));
        self.work_cv.notify_all();
    }

    fn notify_quiesce(&self) {
        drop(lock(&self.quiesce_mutex));
        self.quiesce_cv.notify_all();
    }

    fn push_job(&self, job: Job) {
        lock(&self.injector).push_back(job);
        self.notify_work();
    }

    fn pop_job(&self) -> Option<Job> {
        lock(&self.injector).pop_front()
    }

    fn backlog(&self) -> bool {
        self.queues.iter().any(|q| q.len() > 0) || !lock(&self.injector).is_empty()
    }

    /// Blocks until every event handed to the pool so far has been processed
    /// (or dropped by shutdown).
    fn quiesce(&self) {
        loop {
            let done =
                self.processed.load(Ordering::Acquire) + self.dropped.load(Ordering::Acquire);
            if done >= self.ingested.load(Ordering::Acquire) {
                return;
            }
            self.notify_work();
            let guard = lock(&self.quiesce_mutex);
            let _ = self
                .quiesce_cv
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// The per-session trace tap: forwards each event of one object into its
/// shard's queue (and to the user's tagged sink, when installed).
struct ObjectSink {
    object: u64,
    shard: usize,
    ingest: Arc<Ingest>,
}

impl linrv_trace::EventSink for ObjectSink {
    fn event(&self, event: &Event) {
        if let Some(sink) = &self.ingest.sink {
            sink.tagged_event(self.object, event);
        }
        // Mirror into the registry before the control increment: the control
        // atomic's release/acquire pair then publishes the mirror too.
        self.ingest.metrics.ingested.inc();
        self.ingest.metrics.shard_ingested[self.shard].inc();
        // Count before pushing: quiesce must not observe ingested < queued.
        self.ingest.ingested.fetch_add(1, Ordering::Release);
        let accepted = self.ingest.queues[self.shard]
            .push((self.object, event.clone()), &self.ingest.shutdown);
        if accepted {
            self.ingest.notify_work();
        } else {
            self.ingest.metrics.dropped.inc();
            self.ingest.dropped.fetch_add(1, Ordering::Release);
            self.ingest.notify_quiesce();
        }
    }
}

/// One shard: its lazily-populated object registry and the drain lock that
/// serialises consumers (whoever holds it owns the shard's event order).
struct Shard<A, S: TypedObject> {
    registry: Mutex<HashMap<u64, Arc<ObjectEntry<A, S>>>>,
    drain: Mutex<()>,
}

/// One monitored object: its DRV monitor and its incremental check state.
struct ObjectEntry<A, S: TypedObject> {
    monitor: Monitor<A, S>,
    state: Mutex<CheckState<S>>,
}

/// Pool configuration frozen at build time (see `PoolBuilder` for the knobs).
pub(crate) struct PoolConfig {
    pub(crate) sessions_per_object: usize,
    pub(crate) backend: SnapshotBackend,
    pub(crate) mode: Mode,
    pub(crate) batch: usize,
    pub(crate) check: CheckCfg,
}

/// State shared between the pool handle and its checker threads.
struct Shared<A, S: TypedObject> {
    ingest: Arc<Ingest>,
    shards: Vec<Shard<A, S>>,
    spec: S,
    factory: Box<dyn Fn(u64) -> A + Send + Sync>,
    config: PoolConfig,
}

fn shard_of(object: u64, shards: usize) -> usize {
    // splitmix64 finaliser: cheap, stateless, and spreads sequential ids.
    let mut x = object.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) as usize % shards
}

impl<A, S> Shared<A, S>
where
    A: ConcurrentObject + 'static,
    S: TypedObject + Clone + Send + Sync + 'static,
{
    fn entry(&self, object: u64) -> Arc<ObjectEntry<A, S>> {
        let shard = shard_of(object, self.shards.len());
        let mut registry = lock(&self.shards[shard].registry);
        Arc::clone(registry.entry(object).or_insert_with(|| {
            let sink = ObjectSink {
                object,
                shard,
                ingest: Arc::clone(&self.ingest),
            };
            let monitor = MonitorBuilder::new(self.spec.clone())
                .processes(self.config.sessions_per_object)
                .snapshot(self.config.backend)
                .mode(self.config.mode)
                .trace_to(sink)
                .build((self.factory)(object));
            Arc::new(ObjectEntry {
                monitor,
                state: Mutex::new(CheckState::new(&self.spec, &self.config.check)),
            })
        }))
    }

    fn lookup(&self, object: u64) -> Option<Arc<ObjectEntry<A, S>>> {
        let shard = shard_of(object, self.shards.len());
        lock(&self.shards[shard].registry).get(&object).cloned()
    }

    /// One worker's main loop: injector jobs first, then drain the home shard,
    /// then steal from the others.
    fn worker(self: &Arc<Self>, home: usize) {
        let shards = self.shards.len();
        let mut batch: Vec<(u64, Event)> = Vec::with_capacity(self.config.batch);
        // Consecutive events usually belong to few objects; cache the last hit.
        let mut cached: Option<(u64, Arc<ObjectEntry<A, S>>)> = None;
        loop {
            if let Some(job) = self.ingest.pop_job() {
                job();
                continue;
            }
            let mut drained = false;
            for k in 0..shards {
                let shard = (home + k) % shards;
                if self.ingest.queues[shard].len() == 0 {
                    continue;
                }
                // One drainer per shard at a time: holding the guard through
                // batch processing keeps every object's event order intact.
                let _guard = match self.shards[shard].drain.try_lock() {
                    Ok(guard) => guard,
                    Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => continue,
                };
                let n = self.ingest.queues[shard].drain_into(&mut batch, self.config.batch);
                if n == 0 {
                    continue;
                }
                if k != 0 {
                    self.ingest.metrics.steals.inc();
                }
                for (object, event) in batch.drain(..) {
                    let entry = match &cached {
                        Some((id, entry)) if *id == object => Arc::clone(entry),
                        _ => {
                            let entry = self
                                .lookup(object)
                                .expect("events only come from registered objects");
                            cached = Some((object, Arc::clone(&entry)));
                            entry
                        }
                    };
                    lock(&entry.state).on_event(
                        object,
                        event,
                        &self.spec,
                        &self.config.check,
                        &self.ingest.metrics.counters,
                    );
                }
                self.ingest.metrics.processed.add(n as u64);
                self.ingest.processed.fetch_add(n as u64, Ordering::Release);
                self.ingest.notify_quiesce();
                drained = true;
                break; // recheck the injector between batches
            }
            if drained {
                continue;
            }
            if self.ingest.shutdown.load(Ordering::Acquire) && !self.ingest.backlog() {
                return;
            }
            let guard = lock(&self.ingest.work_mutex);
            let _ = self
                .ingest
                .work_cv
                .wait_timeout(guard, Duration::from_millis(20))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn entries(&self) -> Vec<(u64, Arc<ObjectEntry<A, S>>)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let registry = lock(&shard.registry);
            all.extend(registry.iter().map(|(id, entry)| (*id, Arc::clone(entry))));
        }
        all.sort_by_key(|(id, _)| *id);
        all
    }
}

/// Runs `jobs` on the pool's worker threads and returns their results (in job
/// order). The calling thread helps drain the injector while it waits, so this
/// also works when every worker is busy (or the pool was built with one).
fn run_parallel<T: Send + 'static>(
    ingest: &Arc<Ingest>,
    jobs: Vec<Box<dyn FnOnce() -> T + Send>>,
) -> Vec<T> {
    type Collector<T> = (Mutex<Vec<(usize, T)>>, Condvar);
    let total = jobs.len();
    let collector: Arc<Collector<T>> =
        Arc::new((Mutex::new(Vec::with_capacity(total)), Condvar::new()));
    for (index, job) in jobs.into_iter().enumerate() {
        let collector = Arc::clone(&collector);
        ingest.push_job(Box::new(move || {
            let result = job();
            let (slot, done) = &*collector;
            lock(slot).push((index, result));
            done.notify_all();
        }));
    }
    loop {
        if let Some(job) = ingest.pop_job() {
            job();
            continue;
        }
        let (slot, done) = &*collector;
        let mut guard = lock(slot);
        if guard.len() == total {
            let mut results = std::mem::take(&mut *guard);
            drop(guard);
            results.sort_by_key(|(index, _)| *index);
            return results.into_iter().map(|(_, result)| result).collect();
        }
        let _ = done
            .wait_timeout(guard, Duration::from_millis(5))
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

/// Aggregate counters of a [`MonitorPool`] (see [`MonitorPool::stats`]).
///
/// `gced_events > 0` together with a small `retained_events` is the observable
/// form of the pool's bounded-memory guarantee: verified prefixes are
/// summarised away, only the concurrent frontier of each object is retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Objects with a live monitor.
    pub objects: u64,
    /// Events handed to the pool by sessions.
    pub ingested: u64,
    /// Events fed into per-object incremental checks.
    pub processed: u64,
    /// Events dropped during shutdown.
    pub dropped: u64,
    /// Checker invocations across all objects.
    pub checks: u64,
    /// Events garbage-collected after passing checks.
    pub gced_events: u64,
    /// Events currently retained across all per-object tails.
    pub retained_events: u64,
    /// Objects with a latched violation.
    pub violations: u64,
    /// Batches a worker drained from a shard other than its home shard.
    pub steals: u64,
}

/// Per-object counters (see [`MonitorPool::object_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjectStats {
    /// The object id.
    pub object: u64,
    /// Events currently retained in the object's tail.
    pub retained_events: u64,
    /// Events of this object garbage-collected after passing checks.
    pub gced_events: u64,
    /// Checker invocations for this object.
    pub checks: u64,
    /// Whether a violation has been latched for this object.
    pub violating: bool,
}

/// Per-shard counters (see [`MonitorPool::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// The shard index.
    pub shard: usize,
    /// Objects registered in this shard.
    pub objects: u64,
    /// Events ingested through this shard's queue.
    pub ingested: u64,
    /// Events currently waiting in this shard's queue.
    pub queued: u64,
}

/// A sharded pool of per-object monitors with asynchronous incremental
/// checking.
///
/// Events flow: each object's [`Monitor`] taps its session traffic into the
/// object's shard queue; a work-stealing pool of checker threads drains the
/// shards in batches, feeds per-object incremental checks (geometric schedule)
/// and garbage-collects verified prefixes so per-object memory stays bounded
/// by concurrency, not by history length.
///
/// Build one with [`PoolBuilder`](crate::PoolBuilder); obtain per-object typed
/// session handles with [`MonitorPool::session`].
pub struct MonitorPool<A, S: TypedObject> {
    shared: Arc<Shared<A, S>>,
    workers: Vec<JoinHandle<()>>,
}

/// A typed session on one object of a [`MonitorPool`].
///
/// Dereferences to the underlying [`Session`], so every typed operation
/// (`enqueue`, `write`, …) and the raw escape hatch work unchanged.
///
/// # Per-object operation cost
///
/// The pool's GC bounds how much *history* each object retains, but the DRV
/// wrapper underneath follows Figure 7 of the paper: announce views grow with
/// the object's total operation count, so each operation on one object costs
/// time linear in how many that object has already served (Section 9.1
/// discusses bounded-size representations). Spreading load across many
/// objects is cheap; funnelling millions of operations through a single
/// object is quadratic overall — at the monitor layer, independently of this
/// crate.
pub struct PoolSession<A: ConcurrentObject, S: TypedObject> {
    object: u64,
    session: Session<A, S>,
}

impl<A: ConcurrentObject, S: TypedObject> PoolSession<A, S> {
    /// The object this session operates on.
    pub fn object(&self) -> u64 {
        self.object
    }
}

impl<A: ConcurrentObject, S: TypedObject> Deref for PoolSession<A, S> {
    type Target = Session<A, S>;

    fn deref(&self) -> &Session<A, S> {
        &self.session
    }
}

impl<A, S> MonitorPool<A, S>
where
    A: ConcurrentObject + 'static,
    S: TypedObject + Clone + Send + Sync + 'static,
{
    pub(crate) fn start(
        spec: S,
        factory: Box<dyn Fn(u64) -> A + Send + Sync>,
        shards: usize,
        workers: usize,
        queue_capacity: usize,
        config: PoolConfig,
        sink: Option<Arc<dyn TaggedEventSink>>,
    ) -> Self {
        let shards = shards.max(1);
        let metrics = Arc::new(PoolMetrics::register(shards));
        let ingest = Arc::new(Ingest::new(shards, queue_capacity, sink, metrics));
        let shared = Arc::new(Shared {
            ingest,
            shards: (0..shards)
                .map(|_| Shard {
                    registry: Mutex::new(HashMap::new()),
                    drain: Mutex::new(()),
                })
                .collect(),
            spec,
            factory,
            config,
        });
        let workers = (0..workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                let home = index % shards;
                std::thread::Builder::new()
                    .name(format!("linrv-pool-{index}"))
                    .spawn(move || shared.worker(home))
                    .expect("spawning a checker thread")
            })
            .collect();
        MonitorPool { shared, workers }
    }

    /// Registers a typed session on `object`, creating the object's monitor
    /// (and its implementation instance, via the factory) on first use.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryFull`] when the object already has
    /// `sessions_per_object` live sessions.
    pub fn session(&self, object: u64) -> Result<PoolSession<A, S>, RegistryFull> {
        let entry = self.shared.entry(object);
        Ok(PoolSession {
            object,
            session: entry.monitor.register()?,
        })
    }

    /// The monitor of `object`, when the object has been touched.
    ///
    /// Gives access to the full single-object API — certificates,
    /// [`Monitor::check`], capacity inspection.
    pub fn monitor(&self, object: u64) -> Option<Monitor<A, S>> {
        self.shared
            .lookup(object)
            .map(|entry| entry.monitor.clone())
    }

    /// Blocks until every event ingested so far has been fed through the
    /// incremental checkers.
    pub fn quiesce(&self) {
        self.shared.ingest.quiesce();
    }

    /// Quiesces, runs a final incremental check on every object that has
    /// unchecked events (in parallel, on the pool's own checker threads) and
    /// returns the per-object verdicts.
    pub fn check_all(&self) -> BTreeMap<u64, PoolVerdict> {
        self.quiesce();
        let entries = self.shared.entries();
        let jobs: Vec<Box<dyn FnOnce() -> (u64, PoolVerdict) + Send>> = entries
            .into_iter()
            .map(|(object, entry)| {
                let shared = Arc::clone(&self.shared);
                let job: Box<dyn FnOnce() -> (u64, PoolVerdict) + Send> = Box::new(move || {
                    let mut state = lock(&entry.state);
                    state.finalize(
                        object,
                        &shared.spec,
                        &shared.config.check,
                        &shared.ingest.metrics.counters,
                    );
                    (object, state.verdict())
                });
                job
            })
            .collect();
        run_parallel(&self.shared.ingest, jobs)
            .into_iter()
            .collect()
    }

    /// The violations latched so far, ordered by object id. Unlike
    /// [`check_all`](Self::check_all) this does not quiesce or run final
    /// checks — it reports what the asynchronous checkers have already found.
    pub fn violations(&self) -> Vec<PoolViolation> {
        self.shared
            .entries()
            .into_iter()
            .filter_map(|(_, entry)| lock(&entry.state).violation().cloned())
            .collect()
    }

    /// Splits `history` with `spec` and checks every key's sub-history in
    /// parallel on the pool's checker threads, returning the per-key verdict
    /// map (no early exit: every key gets a verdict).
    ///
    /// # Errors
    ///
    /// Returns the splitting violation when `history` is malformed (not
    /// well-formed, or an operation without the partition key).
    pub fn check_partitioned<P, F>(
        &self,
        spec: &PartitionedSpec<P, F>,
        history: &History,
    ) -> Result<BTreeMap<i64, Verdict>, Violation>
    where
        P: SequentialSpec + Clone + Send + 'static,
        F: Fn(&linrv_history::Operation) -> i64 + Send + Sync,
    {
        let partitions = spec.split(history)?;
        let jobs: Vec<Box<dyn FnOnce() -> (i64, Verdict) + Send>> = partitions
            .into_iter()
            .map(|(key, sub_history)| {
                let sub_spec = spec.sub_spec();
                let job: Box<dyn FnOnce() -> (i64, Verdict) + Send> = Box::new(move || {
                    (
                        key,
                        linrv_check::StrategyChecker::new(sub_spec).check(&sub_history),
                    )
                });
                job
            })
            .collect();
        Ok(run_parallel(&self.shared.ingest, jobs)
            .into_iter()
            .collect())
    }

    /// Aggregate counters: ingestion, checks, GC, retention, steals.
    ///
    /// A thin view over this pool's series in the global [`linrv_obs`]
    /// registry — a Prometheus or JSON export reads the same numbers. The
    /// retention and object-count gauges are refreshed here (they summarise
    /// per-object state too expensive to maintain on the hot path).
    pub fn stats(&self) -> PoolStats {
        let metrics = &self.shared.ingest.metrics;
        let mut objects = 0;
        let mut retained = 0;
        for (_, entry) in self.shared.entries() {
            objects += 1;
            retained += lock(&entry.state).retained() as u64;
        }
        metrics.objects.set(objects as i64);
        metrics.retained_events.set(retained as i64);
        PoolStats {
            objects,
            ingested: metrics.ingested.get(),
            processed: metrics.processed.get(),
            dropped: metrics.dropped.get(),
            checks: metrics.counters.checks.get(),
            gced_events: metrics.counters.gced.get(),
            retained_events: retained,
            violations: metrics.counters.violations.get(),
            steals: metrics.steals.get(),
        }
    }

    /// Per-object counters of `object`, when the object has been touched.
    ///
    /// `gced_events` growing while `retained_events` stays small is the
    /// observable form of checked-prefix GC: verified history is summarised
    /// away, only the concurrent frontier is kept.
    pub fn object_stats(&self, object: u64) -> Option<ObjectStats> {
        self.shared.lookup(object).map(|entry| {
            let state = lock(&entry.state);
            ObjectStats {
                object,
                retained_events: state.retained() as u64,
                gced_events: state.gced(),
                checks: state.checks(),
                violating: state.violation().is_some(),
            }
        })
    }

    /// Per-shard counters, one entry per shard — a thin view over this pool's
    /// `shard`-labeled registry series.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let metrics = &self.shared.ingest.metrics;
        self.shared
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| ShardStats {
                shard: index,
                objects: lock(&shard.registry).len() as u64,
                ingested: metrics.shard_ingested[index].get(),
                queued: metrics.queue_depth[index].get().max(0) as u64,
            })
            .collect()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Number of checker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<A, S: TypedObject> Drop for MonitorPool<A, S> {
    fn drop(&mut self) {
        self.shared.ingest.shutdown.store(true, Ordering::Release);
        self.shared.ingest.notify_work();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
