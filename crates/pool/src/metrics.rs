//! Pool metrics: every [`MonitorPool`](crate::MonitorPool) counter lives in
//! the global [`linrv_obs`] registry, labeled `pool="<n>"` so concurrent pools
//! in one process (tests, multi-tenant hosts) never mix their series.
//!
//! The public stats API — [`MonitorPool::stats`](crate::MonitorPool::stats),
//! [`MonitorPool::shard_stats`](crate::MonitorPool::shard_stats) — reads these
//! handles back, so `stats()` and a Prometheus/JSON export of the registry
//! always agree. The only counters *not* sourced from here are the ingest
//! control atomics (`ingested`/`processed`/`dropped` with acquire/release
//! ordering) that `quiesce` synchronises on; those keep their roles and are
//! mirrored into the registry at the same increment sites.

use crate::state::Counters;
use linrv_obs::{Counter, Gauge, Histogram, MetricKind, Registry};
use std::sync::atomic::{AtomicU64, Ordering};

const INGESTED: &str = "linrv_pool_ingested_total";
const INGESTED_HELP: &str = "events handed to the pool by sessions";
const PROCESSED: &str = "linrv_pool_processed_total";
const PROCESSED_HELP: &str = "events fed into per-object incremental checks";
const DROPPED: &str = "linrv_pool_dropped_total";
const DROPPED_HELP: &str = "events dropped because the pool shut down mid-push";
const CHECKS: &str = "linrv_pool_checks_total";
const CHECKS_HELP: &str = "incremental + final checker invocations across all objects";
const GCED: &str = "linrv_pool_gced_events_total";
const GCED_HELP: &str = "GC watermark: events reclaimed from checked prefixes";
const CHECKED: &str = "linrv_pool_checked_events_total";
const CHECKED_HELP: &str = "checked-prefix watermark: events first covered by a check";
const VIOLATIONS: &str = "linrv_pool_violations_total";
const VIOLATIONS_HELP: &str = "objects with a latched linearizability violation";
const STEALS: &str = "linrv_pool_steals_total";
const STEALS_HELP: &str = "batches a worker drained from a non-home shard";
const RETAINED: &str = "linrv_pool_retained_events";
const RETAINED_HELP: &str = "events currently retained across all per-object tails";
const OBJECTS: &str = "linrv_pool_objects";
const OBJECTS_HELP: &str = "objects with a live monitor";
const SHARD_INGESTED: &str = "linrv_pool_shard_ingested_total";
const SHARD_INGESTED_HELP: &str = "events ingested through one shard's queue";
const QUEUE_DEPTH: &str = "linrv_pool_shard_queue_depth";
const QUEUE_DEPTH_HELP: &str = "events currently waiting in one shard's queue";
const BLOCK_NS: &str = "linrv_pool_producer_block_ns";
const BLOCK_NS_HELP: &str = "time a producer spent blocked on a full shard queue, nanoseconds";

/// Registry-backed handles of one pool, created once at pool start. Cloned
/// freely (each handle is `Arc`-backed); recording never touches the registry.
pub(crate) struct PoolMetrics {
    /// Check/GC counters threaded into every object's `CheckState`.
    pub(crate) counters: Counters,
    /// Mirror of the ingest control atomic of the same name.
    pub(crate) ingested: Counter,
    /// Mirror of the ingest control atomic of the same name.
    pub(crate) processed: Counter,
    /// Mirror of the ingest control atomic of the same name.
    pub(crate) dropped: Counter,
    /// Batches drained from a non-home shard.
    pub(crate) steals: Counter,
    /// Sum of retained per-object tails, refreshed by `stats()`.
    pub(crate) retained_events: Gauge,
    /// Live objects, refreshed by `stats()`.
    pub(crate) objects: Gauge,
    /// Per-shard ingestion counters, indexed by shard.
    pub(crate) shard_ingested: Vec<Counter>,
    /// Per-shard queue depth gauges, updated by the queues themselves.
    pub(crate) queue_depth: Vec<Gauge>,
    /// Producer back-pressure: how long pushes into full queues blocked.
    pub(crate) producer_block_ns: Histogram,
}

impl PoolMetrics {
    /// Registers one pool's series under a fresh process-unique `pool` label.
    pub(crate) fn register(shards: usize) -> Self {
        static POOL_IDS: AtomicU64 = AtomicU64::new(0);
        let pool = POOL_IDS.fetch_add(1, Ordering::Relaxed).to_string();
        let registry = Registry::global();
        let labels: &[(&str, &str)] = &[("pool", &pool)];
        let per_shard = |shard: usize| {
            let shard = shard.to_string();
            [("pool", pool.clone()), ("shard", shard)]
        };
        PoolMetrics {
            counters: Counters {
                checks: registry.counter_with(CHECKS, CHECKS_HELP, labels),
                gced: registry.counter_with(GCED, GCED_HELP, labels),
                checked_events: registry.counter_with(CHECKED, CHECKED_HELP, labels),
                violations: registry.counter_with(VIOLATIONS, VIOLATIONS_HELP, labels),
            },
            ingested: registry.counter_with(INGESTED, INGESTED_HELP, labels),
            processed: registry.counter_with(PROCESSED, PROCESSED_HELP, labels),
            dropped: registry.counter_with(DROPPED, DROPPED_HELP, labels),
            steals: registry.counter_with(STEALS, STEALS_HELP, labels),
            retained_events: registry.gauge_with(RETAINED, RETAINED_HELP, labels),
            objects: registry.gauge_with(OBJECTS, OBJECTS_HELP, labels),
            shard_ingested: (0..shards)
                .map(|shard| {
                    let owned = per_shard(shard);
                    let labels: Vec<(&str, &str)> =
                        owned.iter().map(|(k, v)| (*k, v.as_str())).collect();
                    registry.counter_with(SHARD_INGESTED, SHARD_INGESTED_HELP, &labels)
                })
                .collect(),
            queue_depth: (0..shards)
                .map(|shard| {
                    let owned = per_shard(shard);
                    let labels: Vec<(&str, &str)> =
                        owned.iter().map(|(k, v)| (*k, v.as_str())).collect();
                    registry.gauge_with(QUEUE_DEPTH, QUEUE_DEPTH_HELP, &labels)
                })
                .collect(),
            producer_block_ns: registry.histogram_with(BLOCK_NS, BLOCK_NS_HELP, labels),
        }
    }
}

/// Declares every pool family in the global registry so exports (and
/// `linrv check --stats`, which hosts no pool) list them even before any
/// pool ran.
pub fn declare() {
    let registry = Registry::global();
    registry.declare(INGESTED, MetricKind::Counter, INGESTED_HELP);
    registry.declare(PROCESSED, MetricKind::Counter, PROCESSED_HELP);
    registry.declare(DROPPED, MetricKind::Counter, DROPPED_HELP);
    registry.declare(CHECKS, MetricKind::Counter, CHECKS_HELP);
    registry.declare(GCED, MetricKind::Counter, GCED_HELP);
    registry.declare(CHECKED, MetricKind::Counter, CHECKED_HELP);
    registry.declare(VIOLATIONS, MetricKind::Counter, VIOLATIONS_HELP);
    registry.declare(STEALS, MetricKind::Counter, STEALS_HELP);
    registry.declare(RETAINED, MetricKind::Gauge, RETAINED_HELP);
    registry.declare(OBJECTS, MetricKind::Gauge, OBJECTS_HELP);
    registry.declare(SHARD_INGESTED, MetricKind::Counter, SHARD_INGESTED_HELP);
    registry.declare(QUEUE_DEPTH, MetricKind::Gauge, QUEUE_DEPTH_HELP);
    registry.declare(BLOCK_NS, MetricKind::Histogram, BLOCK_NS_HELP);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_get_distinct_series_and_declare_is_idempotent() {
        declare();
        let a = PoolMetrics::register(2);
        let b = PoolMetrics::register(2);
        a.ingested.add(5);
        b.ingested.add(7);
        // Each pool reads back only its own series.
        assert_eq!(a.ingested.get(), 5);
        assert_eq!(b.ingested.get(), 7);
        assert_eq!(a.shard_ingested.len(), 2);
        declare(); // re-declaring over live series must not panic
        let snapshot = Registry::global().snapshot();
        let family = snapshot.family(INGESTED).expect("family exists");
        assert!(family.series.len() >= 2, "one series per pool");
    }
}
