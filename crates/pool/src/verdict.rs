//! Per-object verdicts reported by the pool.

use linrv_history::History;
use std::fmt;

/// The pool's verdict for one object.
///
/// Mirrors the single-monitor `linrv::Verdict`, with the object id attached:
/// the differential property tests in `tests-integration` pin that the two
/// agree object-for-object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolVerdict {
    /// Every checked prefix of the object's history is linearizable.
    Correct,
    /// The object's history is not linearizable; the violation says why.
    Violation(PoolViolation),
}

impl PoolVerdict {
    /// `true` when no violation has been found for the object.
    pub fn is_correct(&self) -> bool {
        matches!(self, PoolVerdict::Correct)
    }

    /// The violation, when there is one.
    pub fn violation(&self) -> Option<&PoolViolation> {
        match self {
            PoolVerdict::Correct => None,
            PoolVerdict::Violation(violation) => Some(violation),
        }
    }
}

/// A linearizability violation localised to one object of the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolViolation {
    /// The object whose history is not linearizable.
    pub object: u64,
    /// The violating prefix the checker rejected. When earlier events of the
    /// object were garbage-collected ([`gced_events`](Self::gced_events) > 0),
    /// the witness starts after that checked-and-summarised prefix.
    pub witness: History,
    /// The checker's explanation of why the witness is rejected.
    pub explanation: String,
    /// Events of this object that were garbage-collected before the violation
    /// (they form a verified linearizable prefix preceding the witness).
    pub gced_events: u64,
}

impl fmt::Display for PoolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "object {}: {} ({} events in the violating prefix",
            self.object,
            self.explanation,
            self.witness.len()
        )?;
        if self.gced_events > 0 {
            write!(f, ", after {} verified and GC'd events", self.gced_events)?;
        }
        f.write_str(")")
    }
}
