//! Per-object incremental checking with checked-prefix garbage collection.
//!
//! Each object of a [`MonitorPool`](crate::MonitorPool) owns one [`CheckState`]:
//! the retained tail of its history plus a summarised *base state* standing in
//! for everything already verified and garbage-collected. Checker threads feed
//! events in, the state re-checks the tail on a geometric schedule (like
//! `linrv_check::StreamingChecker`: total work ≈ 3× one final check) and, after
//! a passing check, GCs the maximal prefix whose linearization is forced — so
//! per-object memory is bounded by the object's *concurrency*, not by its age.
//!
//! ## Why prefix GC is sound
//!
//! The GC'd prefix is the maximal strictly-alternating run of complete
//! `inv,res` pairs at the start of the retained tail. Within such a run every
//! operation responds before the next one invokes, and every later operation of
//! the tail invokes after the whole run responded, so **real-time order forces
//! every linearization to schedule exactly these operations first, in exactly
//! this order** (Definition 4.2's real-time condition). Replaying the run
//! through the specification therefore yields the unique state every
//! linearization of the full history must pass through; when the replay's
//! successor state is unique, the run can be replaced by that state without
//! changing the verdict of any future check. If some pair has *no* accepting
//! successor, the forced schedule itself is rejected — a genuine violation,
//! latched on the spot. If the successor is ambiguous (non-deterministic
//! specifications), GC stops there and keeps the rest of the tail.
//!
//! Checks from a non-initial base state go through the general search over a
//! seeded copy of the specification ([`SeededSpec`]); the specialized
//! log-linear monitors assume the canonical initial state and are only used
//! while the base *is* that state.

use crate::verdict::{PoolVerdict, PoolViolation};
use linrv_check::{LinSpec, StrategyChecker, Verdict};
use linrv_history::History;
use linrv_history::Operation;
use linrv_obs::Counter;
use linrv_spec::{ObjectKind, SequentialSpec, SpecError};

/// Check/GC counters shared across all objects of a pool. The handles are
/// [`linrv_obs`] counters: a pool wires them to its labeled registry series
/// (see `crate::metrics`), tests use detached standalone ones.
#[derive(Debug)]
pub(crate) struct Counters {
    /// Checker invocations (incremental + final).
    pub(crate) checks: Counter,
    /// Events garbage-collected after passing checks.
    pub(crate) gced: Counter,
    /// Events first covered by a check (the checked-prefix watermark).
    pub(crate) checked_events: Counter,
    /// Objects with a latched violation.
    pub(crate) violations: Counter,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            checks: Counter::standalone(),
            gced: Counter::standalone(),
            checked_events: Counter::standalone(),
            violations: Counter::standalone(),
        }
    }
}

/// Knobs the check state needs from the pool configuration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CheckCfg {
    /// GC checked prefixes (true unless the pool disabled it to keep full
    /// witnesses).
    pub(crate) gc: bool,
    /// Completed-operation count triggering the first incremental check; the
    /// schedule doubles from there.
    pub(crate) first_check: usize,
}

/// The retained state of one object's incremental verification.
pub(crate) struct CheckState<S: SequentialSpec> {
    /// Summarised state of the GC'd prefix; the tail is checked from here.
    base: S::State,
    /// Whether `base` equals the specification's canonical initial state (the
    /// specialized checkers are only sound from there).
    base_is_initial: bool,
    /// Retained events: everything after the GC'd prefix.
    tail: History,
    /// Completed (responded) operations in the tail.
    completed: usize,
    /// Completed-count threshold for the next incremental check.
    next_check: usize,
    /// Tail length at the last check, so a final check can be skipped when
    /// nothing new arrived.
    checked_events: usize,
    /// Events of this object GC'd so far.
    gced: u64,
    /// Checker invocations for this object.
    checks: u64,
    /// The first violation, latched; later events of the object are dropped.
    violation: Option<PoolViolation>,
}

impl<S: SequentialSpec + Clone> CheckState<S> {
    pub(crate) fn new(spec: &S, cfg: &CheckCfg) -> Self {
        CheckState {
            base: spec.initial_state(),
            base_is_initial: true,
            tail: History::new(),
            completed: 0,
            next_check: cfg.first_check.max(1),
            checked_events: 0,
            gced: 0,
            checks: 0,
            violation: None,
        }
    }

    /// Feeds one event; runs an incremental check (and GC) when the geometric
    /// schedule says so.
    pub(crate) fn on_event(
        &mut self,
        object: u64,
        event: linrv_history::Event,
        spec: &S,
        cfg: &CheckCfg,
        counters: &Counters,
    ) {
        if self.violation.is_some() {
            return; // latched: the object stopped verifying, drop its events
        }
        let is_response = event.is_response();
        self.tail.push(event);
        if is_response {
            self.completed += 1;
            if self.completed >= self.next_check {
                self.run_check(object, spec, cfg, counters);
            }
        }
    }

    /// Runs a final check over whatever arrived since the last one.
    pub(crate) fn finalize(&mut self, object: u64, spec: &S, cfg: &CheckCfg, counters: &Counters) {
        if self.violation.is_none() && self.tail.len() != self.checked_events {
            self.run_check(object, spec, cfg, counters);
        }
    }

    fn run_check(&mut self, object: u64, spec: &S, cfg: &CheckCfg, counters: &Counters) {
        self.checks += 1;
        counters.checks.inc();
        let newly_checked = self.tail.len().saturating_sub(self.checked_events);
        counters.checked_events.add(newly_checked as u64);
        self.checked_events = self.tail.len();
        let verdict = if self.base_is_initial {
            // Canonical initial state: full strategy dispatch, specialized
            // log-linear monitors included.
            StrategyChecker::new(spec.clone()).check(&self.tail)
        } else {
            // Seeded base state: the general search only (specialized monitors
            // assume the canonical initial state).
            LinSpec::new(SeededSpec {
                spec: spec.clone(),
                base: self.base.clone(),
            })
            .check(&self.tail)
        };
        match verdict {
            Verdict::NotMember { violation } => {
                self.latch(object, violation.history, violation.explanation, counters);
            }
            // Inconclusive is not a violation; GC still runs — the prefix
            // replay below verifies the GC'd part independently of the main
            // check's verdict.
            Verdict::Member { .. } | Verdict::Inconclusive => {
                if cfg.gc {
                    self.gc(object, spec, counters);
                }
            }
        }
        self.next_check = (self.completed * 2).max(cfg.first_check.max(1));
    }

    /// GCs the maximal forced-linearization prefix of the tail (see the module
    /// docs for the soundness argument).
    fn gc(&mut self, object: u64, spec: &S, counters: &Counters) {
        let events = self.tail.events();
        let mut state = self.base.clone();
        let mut consumed = 0;
        while consumed + 1 < events.len() {
            let (inv, res) = (&events[consumed], &events[consumed + 1]);
            if !inv.is_invocation() || !res.is_response() || inv.op_id != res.op_id {
                break; // alternation ends: the rest is concurrent or pending
            }
            let (Some(op), Some(value)) = (inv.operation(), res.value()) else {
                break;
            };
            let Ok(successors) = spec.step(&state, op) else {
                break; // malformed operation: leave it for the main checker
            };
            let mut matching = successors.into_iter().filter(|(_, v)| v == value);
            let Some((next, _)) = matching.next() else {
                // The forced schedule itself is rejected by the specification:
                // no linearization of the full history exists.
                let witness = History::from_events(events[..consumed + 2].to_vec());
                let explanation = format!(
                    "operation {} with response {value} is not accepted by the \
                     specification in the state forced by the preceding events",
                    op.kind
                );
                self.latch(object, witness, explanation, counters);
                return;
            };
            if matching.any(|(other, _)| other != next) {
                break; // ambiguous successor: cannot summarise into one state
            }
            state = next;
            consumed += 2;
        }
        if consumed == 0 {
            return;
        }
        self.tail = History::from_events(events[consumed..].to_vec());
        self.completed -= consumed / 2;
        self.checked_events -= consumed;
        self.gced += consumed as u64;
        counters.gced.add(consumed as u64);
        self.base_is_initial = state == spec.initial_state();
        self.base = state;
    }

    fn latch(&mut self, object: u64, witness: History, explanation: String, counters: &Counters) {
        counters.violations.inc();
        linrv_obs::event("pool.violation", || {
            format!("object {object} latched a violation: {explanation}")
        });
        self.violation = Some(PoolViolation {
            object,
            witness,
            explanation,
            gced_events: self.gced,
        });
    }

    pub(crate) fn verdict(&self) -> PoolVerdict {
        match &self.violation {
            None => PoolVerdict::Correct,
            Some(violation) => PoolVerdict::Violation(violation.clone()),
        }
    }

    pub(crate) fn violation(&self) -> Option<&PoolViolation> {
        self.violation.as_ref()
    }

    /// Events currently retained for this object.
    pub(crate) fn retained(&self) -> usize {
        self.tail.len()
    }

    pub(crate) fn gced(&self) -> u64 {
        self.gced
    }

    pub(crate) fn checks(&self) -> u64 {
        self.checks
    }
}

/// A specification started from a non-initial base state: the summarised
/// history prefix the pool GC'd away. Only ever checked with the general
/// search — never with the specialized monitors, which assume the canonical
/// initial state.
struct SeededSpec<S: SequentialSpec> {
    spec: S,
    base: S::State,
}

impl<S: SequentialSpec> SequentialSpec for SeededSpec<S> {
    type State = S::State;

    fn kind(&self) -> ObjectKind {
        self.spec.kind()
    }

    fn initial_state(&self) -> Self::State {
        self.base.clone()
    }

    fn step(
        &self,
        state: &Self::State,
        operation: &Operation,
    ) -> Result<Vec<(Self::State, linrv_history::OpValue)>, SpecError> {
        self.spec.step(state, operation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{Event, OpId, OpValue, ProcessId};
    use linrv_spec::ops;
    use linrv_spec::{CounterSpec, RegisterSpec};

    const CFG: CheckCfg = CheckCfg {
        gc: true,
        first_check: 4,
    };

    fn p0() -> ProcessId {
        ProcessId::new(0)
    }

    fn feed_pairs(
        state: &mut CheckState<RegisterSpec>,
        spec: &RegisterSpec,
        counters: &Counters,
        pairs: &[(Operation, OpValue)],
    ) {
        for (id, (op, value)) in pairs.iter().enumerate() {
            let id = OpId::new(id as u64);
            state.on_event(
                1,
                Event::invocation(p0(), id, op.clone()),
                spec,
                &CFG,
                counters,
            );
            state.on_event(
                1,
                Event::response(p0(), id, value.clone()),
                spec,
                &CFG,
                counters,
            );
        }
    }

    #[test]
    fn sequential_prefixes_are_gced_and_memory_stays_bounded() {
        let spec = RegisterSpec::new();
        let counters = Counters::default();
        let mut state = CheckState::new(&spec, &CFG);
        let mut pairs = Vec::new();
        for i in 0..100 {
            pairs.push((ops::register::write(i), OpValue::Bool(true)));
            pairs.push((ops::register::read(), OpValue::Int(i)));
        }
        feed_pairs(&mut state, &spec, &counters, &pairs);
        state.finalize(1, &spec, &CFG, &counters);
        assert!(state.verdict().is_correct());
        assert!(state.gced() > 0, "sequential history must be GC'd");
        assert_eq!(
            state.retained(),
            0,
            "fully sequential + final check = empty tail"
        );
        assert_eq!(state.gced(), 400);
        assert_eq!(counters.gced.get(), 400);
        assert!(
            counters.checked_events.get() >= 400,
            "every event was covered by some check"
        );
        assert!(
            state.checks() > 1,
            "the geometric schedule checks repeatedly"
        );
    }

    #[test]
    fn violations_after_gc_are_latched_with_the_retained_witness() {
        let spec = RegisterSpec::new();
        let counters = Counters::default();
        let mut state = CheckState::new(&spec, &CFG);
        let mut pairs = Vec::new();
        for i in 0..10 {
            pairs.push((ops::register::write(i), OpValue::Bool(true)));
        }
        // A read of a value never written: rejected from the seeded base state.
        pairs.push((ops::register::read(), OpValue::Int(-777)));
        feed_pairs(&mut state, &spec, &counters, &pairs);
        state.finalize(1, &spec, &CFG, &counters);
        let verdict = state.verdict();
        let violation = verdict.violation().expect("violation");
        assert_eq!(violation.object, 1);
        assert!(
            violation.gced_events > 0,
            "the correct prefix was GC'd first"
        );
        assert!(
            violation.witness.len() < 22,
            "witness excludes the GC'd prefix"
        );
        assert_eq!(counters.violations.get(), 1);
        // Later events are dropped once latched.
        let retained = state.retained();
        state.on_event(
            1,
            Event::invocation(p0(), OpId::new(999), ops::register::read()),
            &spec,
            &CFG,
            &counters,
        );
        assert_eq!(state.retained(), retained);
    }

    #[test]
    fn concurrent_suffix_is_not_gced() {
        let spec = RegisterSpec::new();
        let counters = Counters::default();
        let mut state = CheckState::new(&spec, &CFG);
        // One complete pair, then a pending invocation: only the pair may go.
        state.on_event(
            1,
            Event::invocation(p0(), OpId::new(0), ops::register::write(5)),
            &spec,
            &CFG,
            &counters,
        );
        state.on_event(
            1,
            Event::response(p0(), OpId::new(0), OpValue::Bool(true)),
            &spec,
            &CFG,
            &counters,
        );
        state.on_event(
            1,
            Event::invocation(ProcessId::new(1), OpId::new(1), ops::register::read()),
            &spec,
            &CFG,
            &counters,
        );
        state.finalize(1, &spec, &CFG, &counters);
        assert!(state.verdict().is_correct());
        assert_eq!(state.gced(), 2);
        assert_eq!(state.retained(), 1, "the pending invocation stays");
    }

    #[test]
    fn seeded_base_states_keep_checking_correctly() {
        // Counter: after GC the base is a non-zero count; further correct
        // reads must pass and a stale read must fail.
        let spec = CounterSpec::new();
        let counters = Counters::default();
        let cfg = CheckCfg {
            gc: true,
            first_check: 2,
        };
        let mut state = CheckState::new(&spec, &cfg);
        let mut id = 0;
        let mut push = |state: &mut CheckState<CounterSpec>, op: Operation, val: OpValue| {
            state.on_event(
                9,
                Event::invocation(p0(), OpId::new(id), op),
                &spec,
                &cfg,
                &counters,
            );
            state.on_event(
                9,
                Event::response(p0(), OpId::new(id), val),
                &spec,
                &cfg,
                &counters,
            );
            id += 1;
        };
        for i in 0..6 {
            push(&mut state, ops::counter::inc(), OpValue::Int(i));
        }
        state.finalize(9, &spec, &cfg, &counters);
        assert!(state.verdict().is_correct());
        assert!(state.gced() >= 4, "increments are sequential, so GC'd");
        // Correct read from the seeded state.
        push(&mut state, ops::counter::read(), OpValue::Int(6));
        state.finalize(9, &spec, &cfg, &counters);
        assert!(state.verdict().is_correct());
        // Stale read (pre-GC value): must be caught from the seeded state.
        push(&mut state, ops::counter::read(), OpValue::Int(0));
        state.finalize(9, &spec, &cfg, &counters);
        assert!(!state.verdict().is_correct());
    }
}
