//! End-to-end tests of the `linrv` binary: the record → check pipeline, exit
//! codes, determinism and lossless conversion.

use std::path::PathBuf;
use std::process::{Command, Output};

fn linrv(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_linrv"))
        .args(args)
        .output()
        .expect("failed to spawn linrv")
}

fn linrv_with_stdin(args: &[&str], stdin: &[u8]) -> Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_linrv"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn linrv");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin)
        .expect("write stdin");
    child.wait_with_output().expect("wait for linrv")
}

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("linrv-cli-test-{}-{name}", std::process::id()));
    path
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("terminated by signal")
}

#[test]
fn gen_to_check_pipeline_is_exit_0_for_correct_and_1_for_faulty() {
    for kind in [
        "queue",
        "stack",
        "set",
        "priority-queue",
        "counter",
        "register",
        "consensus",
    ] {
        for command in ["gen", "record"] {
            let trace = linrv(&[command, "--kind", kind, "--seed", "42"]);
            assert_eq!(exit_code(&trace), 0, "{command} {kind} failed");
            let verdict = linrv_with_stdin(&["check"], &trace.stdout);
            assert_eq!(exit_code(&verdict), 0, "{command} {kind} should check OK");

            let trace = linrv(&[command, "--kind", kind, "--seed", "42", "--faulty"]);
            assert_eq!(exit_code(&trace), 0, "faulty {command} {kind} failed");
            let verdict = linrv_with_stdin(&["check"], &trace.stdout);
            assert_eq!(
                exit_code(&verdict),
                1,
                "faulty {command} {kind} must be a violation"
            );
            let stderr = String::from_utf8_lossy(&verdict.stderr);
            assert!(
                stderr.contains("certificate"),
                "violation must print a certificate, got: {stderr}"
            );
        }
    }
}

#[test]
fn single_process_faulty_consensus_is_still_caught_and_header_is_honest() {
    // Consensus workloads are one-shot: the header must record the capped op
    // count, and the corruption period must be clamped into the tiny run so
    // --faulty actually produces a violation.
    let trace = linrv(&["gen", "--kind", "consensus", "--processes", "1", "--faulty"]);
    assert_eq!(exit_code(&trace), 0);
    let stdout = String::from_utf8_lossy(&trace.stdout);
    assert!(
        stdout.contains("\"ops_per_process\":1"),
        "header must record what actually ran, got: {}",
        stdout.lines().next().unwrap_or_default()
    );
    let verdict = linrv_with_stdin(&["check"], &trace.stdout);
    assert_eq!(exit_code(&verdict), 1);
}

#[test]
fn gen_and_record_are_bit_for_bit_deterministic_per_seed() {
    for command in ["gen", "record"] {
        let a = linrv(&[
            command, "--kind", "queue", "--seed", "7", "--format", "binary",
        ]);
        let b = linrv(&[
            command, "--kind", "queue", "--seed", "7", "--format", "binary",
        ]);
        assert_eq!(exit_code(&a), 0);
        assert_eq!(a.stdout, b.stdout, "{command} must be deterministic");
        let c = linrv(&[
            command, "--kind", "queue", "--seed", "8", "--format", "binary",
        ]);
        assert_ne!(a.stdout, c.stdout, "{command} must vary with the seed");
    }
}

#[test]
fn convert_round_trips_losslessly_and_check_agrees_on_both_encodings() {
    let jsonl = temp_path("rt.jsonl");
    let binary = temp_path("rt.bin");
    let back = temp_path("rt2.jsonl");
    let gen = linrv(&[
        "gen",
        "--kind",
        "register",
        "--seed",
        "3",
        "--faulty",
        "--out",
        jsonl.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&gen), 0);
    let to_bin = linrv(&[
        "convert",
        "--to",
        "binary",
        "--in",
        jsonl.to_str().unwrap(),
        "--out",
        binary.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&to_bin), 0);
    let to_jsonl = linrv(&[
        "convert",
        "--to",
        "jsonl",
        "--in",
        binary.to_str().unwrap(),
        "--out",
        back.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&to_jsonl), 0);
    let original = std::fs::read(&jsonl).unwrap();
    let round_tripped = std::fs::read(&back).unwrap();
    assert_eq!(
        original, round_tripped,
        "jsonl → binary → jsonl must be lossless"
    );

    // Both encodings get the same verdict.
    assert_eq!(exit_code(&linrv(&["check", jsonl.to_str().unwrap()])), 1);
    assert_eq!(exit_code(&linrv(&["check", binary.to_str().unwrap()])), 1);

    for path in [jsonl, binary, back] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn gen_mix_flags_shape_the_workload_and_tag_the_header() {
    // A pure-enqueue mix: the trace records the shaping and stays correct.
    let skewed = linrv(&[
        "gen", "--kind", "queue", "--seed", "5", "--mix", "1,0", "--keys", "4", "--skew", "1.5",
    ]);
    assert_eq!(exit_code(&skewed), 0);
    let text = String::from_utf8_lossy(&skewed.stdout);
    assert!(
        text.contains("\"scenario\":\"mix=1,0,0/keys=4/skew=1.5\""),
        "non-default mixes must be recorded in the header, got: {}",
        text.lines().next().unwrap_or_default()
    );
    assert!(!text.contains("Dequeue"), "--mix 1,0 is enqueue-only");
    assert_eq!(exit_code(&linrv_with_stdin(&["check"], &skewed.stdout)), 0);

    // Without the flags the header carries no scenario: the default mix is
    // byte-for-byte the historical one (also pinned by the golden corpus).
    let plain = linrv(&["gen", "--kind", "queue", "--seed", "5"]);
    assert!(!String::from_utf8_lossy(&plain.stdout).contains("\"scenario\""));
}

#[test]
fn fuzz_quick_catches_and_shrinks_deterministically() {
    let dir_a = temp_path("fuzz-a");
    let dir_b = temp_path("fuzz-b");
    let run = |dir: &std::path::Path| {
        linrv(&[
            "fuzz",
            "--quick",
            "--seed",
            "42",
            "--corpus",
            dir.to_str().unwrap(),
        ])
    };
    let a = run(&dir_a);
    // Exit 0: every injected fault was caught and shrunk, nothing else failed.
    assert_eq!(exit_code(&a), 0, "{}", String::from_utf8_lossy(&a.stdout));
    let report = String::from_utf8_lossy(&a.stdout);
    assert!(report.starts_with("linrv fuzz: seed 42, 24 scenarios"));
    assert!(report.contains("caught and shrunk"));
    assert!(report.contains("0 missed, 0 unexpected"));
    assert!(
        report.contains("VIOLATION") && report.contains("minimal"),
        "per-violation shrink lines expected, got: {report}"
    );
    assert!(
        report.contains("ops/sec"),
        "throughput footer expected, got: {report}"
    );

    // Determinism: same verdicts and shrink sizes (wall times are the one
    // non-deterministic part of the report), byte-identical corpus.
    let strip_timings = |raw: &[u8]| -> String {
        String::from_utf8_lossy(raw)
            .lines()
            .filter(|line| !line.contains(" ops/sec"))
            .map(|line| line.rfind(" in ").map_or(line, |at| &line[..at]).to_owned())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let b = run(&dir_b);
    assert_eq!(strip_timings(&a.stdout), strip_timings(&b.stdout));
    let mut names: Vec<String> = std::fs::read_dir(&dir_a)
        .unwrap()
        .map(|entry| entry.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "violating scenarios must write traces");
    assert!(
        names.iter().any(|n| n.ends_with("-minimal.explain.txt"))
            && names.iter().any(|n| n.ends_with("-minimal.cert.json")),
        "each shrunk witness must come with an explanation and certificate: {names:?}"
    );
    for name in &names {
        // Byte-identity covers the traces AND the forensic companions
        // (explanations and certificates are deterministic by construction).
        assert_eq!(
            std::fs::read(dir_a.join(name)).unwrap(),
            std::fs::read(dir_b.join(name)).unwrap(),
            "corpus file {name} must be byte-identical across runs"
        );
        if !name.ends_with(".jsonl") {
            continue;
        }
        // Every corpus trace is itself a checkable violation: exit 1.
        assert_eq!(
            exit_code(&linrv(&["check", dir_a.join(name).to_str().unwrap()])),
            1,
            "{name} must replay as a violation"
        );
    }
    for dir in [dir_a, dir_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn committed_shrunk_witnesses_check_as_violations() {
    // The shrunk minimal traces committed under tests-integration replay
    // through the CLI with the violation exit code pinned.
    let dir =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests-integration/traces/shrunk");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("shrunk corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        seen += 1;
        let verdict = linrv(&["check", path.to_str().unwrap()]);
        assert_eq!(exit_code(&verdict), 1, "{} must exit 1", path.display());
        let stderr = String::from_utf8_lossy(&verdict.stderr);
        assert!(
            stderr.contains("certificate"),
            "{}: violation must print a certificate",
            path.display()
        );
    }
    assert!(seen >= 2, "expected committed shrunk witnesses");
}

#[test]
fn errors_exit_2() {
    assert_eq!(exit_code(&linrv(&["frobnicate"])), 2);
    assert_eq!(exit_code(&linrv(&["gen"])), 2, "missing --kind");
    assert_eq!(exit_code(&linrv(&["fuzz", "--scenarios", "0"])), 2);
    assert_eq!(exit_code(&linrv(&["fuzz", "extra-positional"])), 2);
    assert_eq!(
        exit_code(&linrv(&["gen", "--kind", "queue", "--mix", "0,0"])),
        2,
        "all-zero mix weights"
    );
    assert_eq!(
        exit_code(&linrv(&["gen", "--kind", "queue", "--mix", "1"])),
        2,
        "one weight is not a mix"
    );
    assert_eq!(
        exit_code(&linrv(&["gen", "--kind", "queue", "--keys", "0"])),
        2
    );
    assert_eq!(
        exit_code(&linrv(&["gen", "--kind", "queue", "--skew", "-1"])),
        2
    );
    assert_eq!(exit_code(&linrv(&["gen", "--kind", "blob"])), 2);
    assert_eq!(
        exit_code(&linrv(&["gen", "--kind", "queue", "--seed", "x"])),
        2
    );
    assert_eq!(exit_code(&linrv(&["check", "/nonexistent/trace.jsonl"])), 2);
    assert_eq!(exit_code(&linrv(&["convert", "--to", "csv"])), 2);
    assert_eq!(exit_code(&linrv_with_stdin(&["check"], b"not a trace")), 2);
    // A truncated trace is a read error, not a silent verdict.
    let trace = linrv(&[
        "gen", "--kind", "queue", "--seed", "1", "--format", "binary",
    ]);
    let truncated = &trace.stdout[..trace.stdout.len() - 2];
    assert_eq!(exit_code(&linrv_with_stdin(&["check"], truncated)), 2);
    assert_eq!(
        exit_code(&linrv(&[])),
        2,
        "no command prints usage, exits 2"
    );
}

#[test]
fn help_exits_0_and_documents_the_pipeline() {
    let help = linrv(&["--help"]);
    assert_eq!(exit_code(&help), 0);
    let text = String::from_utf8_lossy(&help.stdout);
    for needle in ["gen", "record", "check", "convert", "fuzz", "EXIT STATUS"] {
        assert!(text.contains(needle), "help must mention {needle}");
    }
}
