//! `--stats[=FILE]` support shared by the `check`, `gen`/`record` and `fuzz`
//! subcommands.
//!
//! `--stats` turns metric recording on for the run, declares every family the
//! workspace instruments (DRV core, session facade, streaming checker, pool)
//! so exports list them even when the command exercises only some layers, and
//! at the end prints the one-screen report to stderr — or, with `=FILE`,
//! writes the snapshot to disk (Prometheus text for `.prom`/`.txt`, the JSON
//! document otherwise).

use crate::args::Parsed;
use linrv_obs::Registry;
use std::path::Path;

/// The armed `--stats` state of one command run.
pub(crate) struct Stats {
    /// Snapshot destination; `None` prints the human report to stderr.
    out: Option<String>,
}

/// Arms metric collection when `--stats[=FILE]` was given; `None` otherwise.
pub(crate) fn init(parsed: &Parsed) -> Option<Stats> {
    let out = parsed.get("stats").map(str::to_string);
    if out.is_none() && !parsed.has("stats") {
        return None;
    }
    let armed = linrv_obs::set_enabled(true);
    if !armed {
        eprintln!("linrv: warning: metrics were disabled at compile time (feature compile-off)");
    }
    linrv_core::metrics::declare();
    linrv::metrics::declare();
    linrv_check::metrics::declare();
    linrv_forensics::metrics::declare();
    linrv_pool::metrics::declare();
    Some(Stats { out })
}

impl Stats {
    /// Emits the final snapshot: the report to stderr, or the file given as
    /// `--stats=FILE`.
    pub(crate) fn emit(&self) -> Result<(), String> {
        let snapshot = Registry::global().snapshot();
        match &self.out {
            None => eprint!("{}", snapshot.render_report()),
            Some(path) => {
                snapshot
                    .write_file(Path::new(path))
                    .map_err(|err| format!("cannot write metrics to {path}: {err}"))?;
                eprintln!("linrv: metrics snapshot written to {path}");
            }
        }
        Ok(())
    }
}
