//! The `fuzz` subcommand: sweep seeded scenarios through the checker, shrink
//! every failure to a locally minimal witness, print a one-screen report.
//!
//! A sweep is bit-for-bit deterministic per `--seed`: the same seed derives
//! the same scenarios (generator × nemesis × kind), records the same
//! histories, and writes byte-identical corpus files. Exit status is the
//! sweep's pass condition — every injected fault caught, nothing else
//! violating — so the command doubles as a CI smoke gate.

use crate::args::Parsed;
use linrv_scenario::{run_sweep, FuzzConfig};
use std::process::ExitCode;

pub(crate) fn run(parsed: &Parsed) -> Result<ExitCode, String> {
    if !parsed.positionals().is_empty() {
        return Err("fuzz takes no positional arguments (use --corpus DIR)".into());
    }
    let seed: u64 = parsed.get_or("seed", 0)?;
    let mut config = if parsed.has("quick") {
        FuzzConfig::quick(seed)
    } else {
        FuzzConfig::new(32, seed)
    };
    config.scenarios = parsed.get_or("scenarios", config.scenarios)?;
    config.processes = parsed.get_or("processes", config.processes)?;
    config.ops_per_process = parsed.get_or("ops", config.ops_per_process)?;
    if config.scenarios == 0 || config.processes == 0 || config.ops_per_process == 0 {
        return Err("--scenarios, --processes and --ops must be positive".into());
    }
    if let Some(dir) = parsed.get("corpus") {
        config = config.with_corpus(dir);
    }
    let stats = crate::stats::init(parsed);
    let report = run_sweep(&config).map_err(|err| format!("cannot write corpus: {err}"))?;
    print!("{}", report.render());
    if let Some(stats) = &stats {
        stats.emit()?;
    }
    if report.all_expected() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(1))
    }
}
