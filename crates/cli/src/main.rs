//! `linrv` — record, replay and offline-check linearizability traces.
//!
//! The command-line face of the trace subsystem: seeded workloads become
//! portable traces (`gen`, `record`), traces become verdicts (`check`), and
//! the two on-disk encodings interconvert losslessly (`convert`). The whole
//! pipeline composes over pipes:
//!
//! ```text
//! linrv gen --kind queue --seed 42 | linrv check            # exit 0
//! linrv gen --kind stack --faulty --seed 42 | linrv check   # exit 1 + certificate
//! ```

mod args;
mod bench_cmd;
mod check_cmd;
mod convert;
mod explain_cmd;
mod fuzz_cmd;
mod genrec;
mod io;
mod stats;

use std::process::ExitCode;

const USAGE: &str = "\
linrv — record, replay and offline-check linearizability traces

USAGE:
    linrv gen     --kind <kind> [--seed N] [--processes N] [--ops N]
                  [--mix A,B[,C]] [--keys N] [--skew X] [--stats[=FILE]]
                  [--faulty] [--every K] [--format jsonl|binary] [--out FILE]
        Generate a trace from a seeded workload executed by the sequential
        specification (or, with --faulty, the kind's fault injector).
        --mix sets the kind's operation-class weights, --keys the key range
        and --skew a hot-key exponent (0 = uniform). Bit-for-bit
        deterministic per --seed.

    linrv record  (same flags as gen)
        Record an execution of the canonical concurrent implementation for
        the kind (Michael–Scott queue, Treiber stack, ...), deterministically
        scheduled. Bit-for-bit deterministic per --seed.

    linrv check   [FILE] [--stride N] [--quiet] [--explain] [--stats[=FILE]]
        Stream a trace (file or stdin) into the linearizability checker.
        Exit 0: linearizable. Exit 1: violation, certificate on stderr.
        With --explain, a violation is additionally shrunk, diagnosed and
        rendered as a forensic report on stderr (see explain).

        --stats records runtime metrics (re-check latency, DRV timings, ...)
        and prints a one-screen report to stderr; --stats=FILE writes the
        snapshot instead (.prom/.txt: Prometheus text, otherwise JSON).
        Also accepted by gen, record, explain and fuzz.

    linrv explain [FILE] [--quiet] [--html FILE] [--cert FILE] [--stats[=FILE]]
        Explain why a trace (file or stdin) is not linearizable: shrink it to
        a locally minimal witness, tighten the surviving operation windows,
        name the bad pattern behind the violation, compute the nearest
        single-edit fix and print an ASCII timeline report to stdout.
        --html writes a self-contained HTML timeline, --cert a
        schema-versioned linrv-cert/1 JSON certificate (see CERT.md).
        Exit 0: linearizable (nothing to explain). Exit 1: report printed.

    linrv convert --to jsonl|binary [--in FILE] [--out FILE]
        Re-encode a trace, streaming; header and events are preserved.

    linrv fuzz    [--scenarios N] [--seed N] [--quick] [--processes N]
                  [--ops N] [--corpus DIR] [--stats[=FILE]]
        Sweep N seeded scenarios (generator x nemesis x kind) through the
        checker, shrink every failing trace to a locally minimal witness and
        print a one-screen report. With --corpus, write failing traces (full
        and shrunk) as JSONL under DIR. Bit-for-bit deterministic per --seed.
        Exit 0 when every injected fault was caught and nothing else violated.

    linrv bench   [--quick] [--out FILE] [--compare OLD.json] [--threshold X]
        Run the fixed seeded benchmark suite (checker, DRV, trace codec) and
        write a schema-versioned BENCH_<host>_<date>.json datapoint. With
        --compare, print per-workload ns/op deltas against an earlier
        datapoint and exit 1 when any ratio exceeds --threshold (default 2.0).

KINDS:
    queue, stack, set, priority-queue, counter, register, consensus

EXIT STATUS:
    0 success (for check: the trace is linearizable)
    1 check found a violation
    2 usage, i/o or malformed-trace error
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&argv) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("linrv: error: {message}");
            eprintln!("run `linrv --help` for usage");
            ExitCode::from(2)
        }
    }
}

fn dispatch(argv: &[String]) -> Result<ExitCode, String> {
    let Some(command) = argv.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        "gen" => {
            let parsed = args::parse(rest, GEN_SWITCHES, GEN_OPTIONS)?;
            genrec::run(&parsed, genrec::Source::Specification)
        }
        "record" => {
            let parsed = args::parse(rest, GEN_SWITCHES, GEN_OPTIONS)?;
            genrec::run(&parsed, genrec::Source::Implementation)
        }
        "check" => {
            let parsed = args::parse(rest, &["quiet", "stats", "explain"], &["stride", "stats"])?;
            check_cmd::run(&parsed)
        }
        "explain" => {
            let parsed = args::parse(rest, &["quiet", "stats"], &["html", "cert", "stats"])?;
            explain_cmd::run(&parsed)
        }
        "convert" => {
            let parsed = args::parse(rest, &[], &["to", "in", "out"])?;
            convert::run(&parsed)
        }
        "fuzz" => {
            let parsed = args::parse(rest, FUZZ_SWITCHES, FUZZ_OPTIONS)?;
            fuzz_cmd::run(&parsed)
        }
        "bench" => {
            let parsed = args::parse(rest, &["quick"], &["out", "compare", "threshold"])?;
            bench_cmd::run(&parsed)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

const GEN_SWITCHES: &[&str] = &["faulty", "stats"];
const GEN_OPTIONS: &[&str] = &[
    "kind",
    "seed",
    "processes",
    "ops",
    "every",
    "format",
    "out",
    "mix",
    "keys",
    "skew",
    "stats",
];
const FUZZ_SWITCHES: &[&str] = &["quick", "stats"];
const FUZZ_OPTIONS: &[&str] = &["scenarios", "seed", "corpus", "processes", "ops", "stats"];
