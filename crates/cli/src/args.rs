//! A small hand-rolled flag parser (no external dependencies are available in
//! this build environment).

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals plus `--key value` options and
/// boolean `--switch`es.
#[derive(Debug, Default)]
pub(crate) struct Parsed {
    positionals: Vec<String>,
    options: BTreeMap<&'static str, String>,
    switches: Vec<&'static str>,
}

/// Parses `args` against the allowed `switches` (boolean flags) and `options`
/// (flags that consume the next token as their value). Options also accept
/// the inline `--name=value` form; a name listed in *both* `switches` and
/// `options` (like `--stats[=FILE]`) is a switch when bare and an option
/// when given inline — the bare form never swallows the next positional.
///
/// Unknown flags, repeated flags and options missing their value are errors —
/// a typo must never silently fall back to a default.
pub(crate) fn parse(
    args: &[String],
    switches: &'static [&'static str],
    options: &'static [&'static str],
) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if let Some((key, value)) = name.split_once('=') {
                let Some(&option) = options.iter().find(|&&o| o == key) else {
                    return Err(format!("unknown flag --{key} (or it takes no =value)"));
                };
                if parsed.options.insert(option, value.to_string()).is_some() {
                    return Err(format!("option --{option} given twice"));
                }
            } else if let Some(&switch) = switches.iter().find(|&&s| s == name) {
                if parsed.switches.contains(&switch) {
                    return Err(format!("flag --{switch} given twice"));
                }
                parsed.switches.push(switch);
            } else if let Some(&option) = options.iter().find(|&&o| o == name) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("option --{option} expects a value"))?;
                if parsed.options.insert(option, value.clone()).is_some() {
                    return Err(format!("option --{option} given twice"));
                }
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            parsed.positionals.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    pub(crate) fn positionals(&self) -> &[String] {
        &self.positionals
    }

    pub(crate) fn has(&self, switch: &str) -> bool {
        self.switches.contains(&switch)
    }

    pub(crate) fn get(&self, option: &str) -> Option<&str> {
        self.options.get(option).map(String::as_str)
    }

    /// The option's value parsed as `T`, or `default` when absent.
    pub(crate) fn get_or<T: std::str::FromStr>(&self, option: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(option) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|err| format!("invalid value for --{option}: {err}")),
        }
    }

    /// The option's value parsed as `T`; an error when absent.
    pub(crate) fn require<T: std::str::FromStr>(&self, option: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self
            .get(option)
            .ok_or_else(|| format!("missing required option --{option}"))?;
        raw.parse()
            .map_err(|err| format!("invalid value for --{option}: {err}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_options_and_switches_parse() {
        let parsed = parse(
            &args(&["trace.jsonl", "--seed", "42", "--faulty"]),
            &["faulty"],
            &["seed"],
        )
        .unwrap();
        assert_eq!(parsed.positionals(), &["trace.jsonl".to_string()]);
        assert!(parsed.has("faulty"));
        assert_eq!(parsed.get_or::<u64>("seed", 0).unwrap(), 42);
        assert_eq!(parsed.get_or::<u64>("missing", 7).unwrap(), 7);
        assert_eq!(parsed.require::<u64>("seed").unwrap(), 42);
    }

    #[test]
    fn inline_values_and_dual_switch_options_parse() {
        // --seed=42 is equivalent to --seed 42.
        let parsed = parse(&args(&["--seed=42"]), &[], &["seed"]).unwrap();
        assert_eq!(parsed.require::<u64>("seed").unwrap(), 42);
        // A name in both lists: bare form is a switch and never consumes the
        // following positional; inline form carries a value.
        let parsed = parse(&args(&["--stats", "trace.jsonl"]), &["stats"], &["stats"]).unwrap();
        assert!(parsed.has("stats"));
        assert_eq!(parsed.get("stats"), None);
        assert_eq!(parsed.positionals(), &["trace.jsonl".to_string()]);
        let parsed = parse(&args(&["--stats=out.prom"]), &["stats"], &["stats"]).unwrap();
        assert!(!parsed.has("stats"));
        assert_eq!(parsed.get("stats"), Some("out.prom"));
        // Inline values on pure switches stay loud errors.
        assert!(parse(&args(&["--faulty=yes"]), &["faulty"], &[]).is_err());
        assert!(parse(&args(&["--seed=1", "--seed", "2"]), &[], &["seed"]).is_err());
    }

    #[test]
    fn errors_are_loud() {
        assert!(parse(&args(&["--wat"]), &[], &[]).is_err());
        assert!(parse(&args(&["--seed"]), &[], &["seed"]).is_err());
        assert!(parse(&args(&["--seed", "1", "--seed", "2"]), &[], &["seed"]).is_err());
        assert!(parse(&args(&["--faulty", "--faulty"]), &["faulty"], &[]).is_err());
        let parsed = parse(&args(&["--seed", "x"]), &[], &["seed"]).unwrap();
        assert!(parsed.get_or::<u64>("seed", 0).is_err());
        assert!(parsed.require::<u32>("missing").is_err());
    }
}
