//! The `convert` subcommand: re-encode a trace (jsonl ↔ binary), streaming.

use crate::args::Parsed;
use crate::io::{describe, open_input, open_output};
use linrv_trace::{TraceFormat, TraceReader, TraceWriter};
use std::process::ExitCode;

pub(crate) fn run(parsed: &Parsed) -> Result<ExitCode, String> {
    if !parsed.positionals().is_empty() {
        return Err("convert takes no positional arguments (use --in/--out)".into());
    }
    let to: TraceFormat = parsed.require("to")?;
    let in_path = parsed.get("in");
    let out_path = parsed.get("out");
    let input = open_input(in_path)?;
    let in_name = describe(in_path, "stdin");
    let reader = TraceReader::new(input).map_err(|err| format!("cannot read {in_name}: {err}"))?;
    let out = open_output(out_path)?;
    let mut writer = TraceWriter::new(out, to, reader.header())
        .map_err(|err| format!("cannot write trace header: {err}"))?;
    let mut reader = reader;
    while let Some(item) = reader.next_tagged() {
        // Multi-object traces round-trip: object tags survive the re-encode.
        let (object, event) = item.map_err(|err| format!("cannot read {in_name}: {err}"))?;
        match object {
            Some(object) => writer.tagged_event(object, &event),
            None => writer.event(&event),
        }
        .map_err(|err| format!("cannot write event: {err}"))?;
    }
    let events = writer.events_written();
    writer
        .finish()
        .map_err(|err| format!("cannot finish trace: {err}"))?;
    eprintln!(
        "linrv: converted {events} events from {in_name} to {} ({to})",
        describe(out_path, "stdout"),
    );
    Ok(ExitCode::SUCCESS)
}
