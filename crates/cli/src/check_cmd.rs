//! The `check` subcommand: stream a trace into the linearizability checker.
//!
//! Exit status is the verdict: `0` when the recorded history is linearizable
//! with respect to the specification named by the trace header, `1` with a
//! violation certificate on stderr when it is not, `2` on malformed input.

use crate::args::Parsed;
use crate::io::{describe, open_input};
use linrv_check::stream::StreamingChecker;
use linrv_check::Verdict;
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec,
    SequentialSpec, SetSpec, StackSpec,
};
use linrv_trace::TraceReader;
use std::io::Read;
use std::process::ExitCode;

pub(crate) fn run(parsed: &Parsed) -> Result<ExitCode, String> {
    if parsed.positionals().len() > 1 {
        return Err("check takes at most one trace file".into());
    }
    let path = parsed.positionals().first().map(String::as_str);
    let stride: usize = parsed.get_or("stride", linrv_check::stream::DEFAULT_STRIDE)?;
    if stride == 0 {
        return Err("--stride must be positive".into());
    }
    let quiet = parsed.has("quiet");
    let input = open_input(path)?;
    let reader = TraceReader::new(input)
        .map_err(|err| format!("cannot read {}: {err}", describe(path, "stdin")))?;
    let source = describe(path, "stdin");
    match reader.header().kind {
        ObjectKind::Queue => check(QueueSpec::new(), reader, stride, quiet, &source),
        ObjectKind::Stack => check(StackSpec::new(), reader, stride, quiet, &source),
        ObjectKind::Set => check(SetSpec::new(), reader, stride, quiet, &source),
        ObjectKind::PriorityQueue => {
            check(PriorityQueueSpec::new(), reader, stride, quiet, &source)
        }
        ObjectKind::Counter => check(CounterSpec::new(), reader, stride, quiet, &source),
        ObjectKind::Register => check(RegisterSpec::new(), reader, stride, quiet, &source),
        ObjectKind::Consensus => check(ConsensusSpec::new(), reader, stride, quiet, &source),
    }
}

fn check<S: SequentialSpec>(
    spec: S,
    reader: TraceReader<impl Read>,
    stride: usize,
    quiet: bool,
    source: &str,
) -> Result<ExitCode, String> {
    let kind = reader.header().kind;
    let mut checker = StreamingChecker::with_stride(spec, stride);
    for event in reader {
        let event = event.map_err(|err| format!("cannot read {source}: {err}"))?;
        if checker.push(event).is_some() {
            // Prefix closure: the violation is final, stop reading.
            break;
        }
    }
    let events = checker.events_consumed();
    let (_, verdict) = checker.finish();
    match verdict {
        Verdict::Member { .. } => {
            if !quiet {
                eprintln!(
                    "linrv: {source}: OK — {events} events linearizable w.r.t. the {kind} \
                     specification"
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Verdict::NotMember { violation } => {
            eprintln!(
                "linrv: {source}: VIOLATION after {events} events — not linearizable \
                 w.r.t. the {kind} specification"
            );
            eprintln!("certificate (violating prefix):");
            eprintln!("{violation}");
            Ok(ExitCode::from(1))
        }
        // Unreachable without an explicit exploration budget, which the CLI
        // never configures; refuse to guess either way.
        Verdict::Inconclusive => Err("checker was inconclusive".into()),
    }
}
