//! The `check` subcommand: stream a trace into the linearizability checker.
//!
//! Exit status is the verdict: `0` when the recorded history is linearizable
//! with respect to the specification named by the trace header, `1` with a
//! violation certificate on stderr when it is not, `2` on malformed input.
//!
//! Multi-object traces (events tagged with object ids, as produced by
//! `linrv-pool`'s tagged trace sink) are verified by projection: each object's
//! events stream into that object's own checker, and the first violating
//! object is reported with its id.

use crate::args::Parsed;
use crate::io::{describe, open_input};
use linrv_check::stream::StreamingChecker;
use linrv_check::Verdict;
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec,
    SequentialSpec, SetSpec, StackSpec,
};
use linrv_trace::TraceReader;
use std::collections::BTreeMap;
use std::io::Read;
use std::process::ExitCode;

pub(crate) fn run(parsed: &Parsed) -> Result<ExitCode, String> {
    if parsed.positionals().len() > 1 {
        return Err("check takes at most one trace file".into());
    }
    let path = parsed.positionals().first().map(String::as_str);
    let stride: usize = parsed.get_or("stride", linrv_check::stream::DEFAULT_STRIDE)?;
    if stride == 0 {
        return Err("--stride must be positive".into());
    }
    let quiet = parsed.has("quiet");
    let explain = parsed.has("explain");
    let stats = crate::stats::init(parsed);
    let input = open_input(path)?;
    let reader = TraceReader::new(input)
        .map_err(|err| format!("cannot read {}: {err}", describe(path, "stdin")))?;
    let source = describe(path, "stdin");
    let code = match reader.header().kind {
        ObjectKind::Queue => check(QueueSpec::new(), reader, stride, quiet, explain, &source),
        ObjectKind::Stack => check(StackSpec::new(), reader, stride, quiet, explain, &source),
        ObjectKind::Set => check(SetSpec::new(), reader, stride, quiet, explain, &source),
        ObjectKind::PriorityQueue => check(
            PriorityQueueSpec::new(),
            reader,
            stride,
            quiet,
            explain,
            &source,
        ),
        ObjectKind::Counter => check(CounterSpec::new(), reader, stride, quiet, explain, &source),
        ObjectKind::Register => check(RegisterSpec::new(), reader, stride, quiet, explain, &source),
        ObjectKind::Consensus => check(
            ConsensusSpec::new(),
            reader,
            stride,
            quiet,
            explain,
            &source,
        ),
    }?;
    if let Some(stats) = &stats {
        stats.emit()?;
    }
    Ok(code)
}

/// Renders `Some(id)` as ` of object {id}` and `None` (untagged events) as
/// nothing, so single-object traces keep their historical output.
fn describe_object(object: Option<u64>) -> String {
    match object {
        Some(id) => format!(" of object {id}"),
        None => String::new(),
    }
}

fn check<S: SequentialSpec + Clone>(
    spec: S,
    mut reader: TraceReader<impl Read>,
    stride: usize,
    quiet: bool,
    explain: bool,
    source: &str,
) -> Result<ExitCode, String> {
    let kind = reader.header().kind;
    // One streaming checker per object; untagged events all share the `None`
    // bucket, so a single-object trace behaves exactly as before.
    let mut checkers: BTreeMap<Option<u64>, StreamingChecker<S>> = BTreeMap::new();
    let mut events = 0u64;
    while let Some(item) = reader.next_tagged() {
        let (object, event) = item.map_err(|err| format!("cannot read {source}: {err}"))?;
        events += 1;
        let checker = checkers
            .entry(object)
            .or_insert_with(|| StreamingChecker::with_stride(spec.clone(), stride));
        if checker.push(event).is_some() {
            // Prefix closure: this object's violation is final, stop reading.
            break;
        }
    }
    let objects = checkers.len();
    for (object, checker) in checkers {
        let (_, verdict) = checker.finish();
        match verdict {
            Verdict::Member { .. } => {}
            Verdict::NotMember { violation } => {
                let which = describe_object(object);
                eprintln!(
                    "linrv: {source}: VIOLATION after {events} events — history{which} is \
                     not linearizable w.r.t. the {kind} specification"
                );
                eprintln!("certificate (violating prefix{which}):");
                eprintln!("{violation}");
                if explain {
                    // The violating prefix is itself a failing history; the
                    // forensics pipeline upgrades the certificate into a
                    // minimal-witness report.
                    if let Some(explanation) = linrv_forensics::explain(kind, &violation.history) {
                        eprintln!();
                        eprint!("{}", linrv_forensics::render_report(&explanation));
                    }
                }
                return Ok(ExitCode::from(1));
            }
            // Unreachable without an explicit exploration budget, which the CLI
            // never configures; refuse to guess either way.
            Verdict::Inconclusive => return Err("checker was inconclusive".into()),
        }
    }
    if !quiet {
        let spread = if objects > 1 {
            format!(" across {objects} objects")
        } else {
            String::new()
        };
        eprintln!(
            "linrv: {source}: OK — {events} events{spread} linearizable w.r.t. the {kind} \
             specification"
        );
    }
    Ok(ExitCode::SUCCESS)
}
