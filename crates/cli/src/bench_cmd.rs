//! The `bench` subcommand: a fixed, seeded workload suite that records the
//! repo's perf trajectory as machine-readable `BENCH_*.json` datapoints.
//!
//! Three measurement groups cover the hot paths end to end:
//!
//! * **checker** — [`StrategyChecker`] batch decisions over deterministic
//!   recorded executions (per object kind, correct and fault-injected) plus a
//!   large synthetic unambiguous queue trace that isolates the specialized
//!   log-linear monitor;
//! * **drv** — the `A → A*` announce/collect wrapper (`Drv::apply_drv`),
//!   whose per-operation cost is the paper's `O(n)` snapshot overhead;
//! * **codec** — trace encode/decode round-trips through both on-disk
//!   formats;
//! * **pool** — multi-object monitoring: end-to-end ingestion through a
//!   `MonitorPool` (sharded queues, work-stealing checkers, prefix GC) and
//!   the per-object projection checking that `linrv check` runs on tagged
//!   traces.
//!
//! Every workload is seeded, so two runs of the same binary measure the same
//! work. The emitted JSON is schema-versioned (`linrv-bench/2`) and one
//! datapoint per file: `{schema, host, date, quick, workloads: [{id, ops,
//! ns_total, ns_per_op, ops_per_sec, rss_max_kb}]}`. `rss_max_kb` is the
//! process-wide peak resident set (`VmHWM`) sampled after the workload, so it
//! is monotone across the suite rather than attributable per workload. The
//! DRV workload additionally carries `view_size: {p50, p99, max}` — the
//! announce-view size distribution, quantifying how much of the `O(n)`
//! per-operation snapshot cost the quadratic view growth accounts for.
//!
//! `--compare OLD.json` prints per-workload ns/op deltas against an earlier
//! datapoint and exits 1 when any ratio exceeds `--threshold` (default 2.0) —
//! the CI regression gate compares against the committed `BENCH_baseline.json`
//! with exactly that generous threshold, so only real regressions fail.

use crate::args::Parsed;
use linrv::SnapshotBackend;
use linrv_check::stream::StreamingChecker;
use linrv_check::StrategyChecker;
use linrv_core::Drv;
use linrv_history::{Event, History, HistoryBuilder, OpId, OpValue, ProcessId};
use linrv_pool::PoolBuilder;
use linrv_runtime::{faulty, impls, record_scheduled, RecorderOptions, Workload, WorkloadKind};
use linrv_spec::{
    ops, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec, SetSpec, StackSpec,
};
use linrv_trace::{read_history, write_history, TraceFormat, TraceHeader};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Schema identifier stamped into every emitted file.
const SCHEMA: &str = "linrv-bench/2";

/// Older schemas `--compare` still accepts as baselines. `/1` lacks only the
/// DRV `view_size` distribution, which the comparison never reads.
const COMPATIBLE_SCHEMAS: [&str; 1] = ["linrv-bench/1"];

/// Announce-view size distribution of the DRV workload (in invocation pairs).
struct ViewSizeDist {
    p50: u64,
    p99: u64,
    max: u64,
}

/// One measured workload.
struct Measurement {
    id: String,
    ops: u64,
    ns_total: u64,
    rss_max_kb: u64,
    /// Only the DRV workload carries a view-size distribution.
    view_size: Option<ViewSizeDist>,
}

impl Measurement {
    fn ns_per_op(&self) -> f64 {
        self.ns_total as f64 / self.ops.max(1) as f64
    }

    fn ops_per_sec(&self) -> f64 {
        if self.ns_total == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.ns_total as f64
        }
    }
}

pub(crate) fn run(parsed: &Parsed) -> Result<ExitCode, String> {
    if !parsed.positionals().is_empty() {
        return Err("bench takes no positional arguments".into());
    }
    let quick = parsed.has("quick");
    let threshold: f64 = parsed.get_or("threshold", 2.0)?;
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err("--threshold must be a positive number".into());
    }

    let measurements = run_suite(quick);
    let json = render_json(&measurements, quick);
    let path = match parsed.get("out") {
        Some(path) => path.to_string(),
        None => format!("BENCH_{}_{}.json", host(), date()),
    };
    std::fs::write(&path, &json).map_err(|err| format!("cannot write {path}: {err}"))?;
    eprintln!("wrote {path}");

    match parsed.get("compare") {
        None => Ok(ExitCode::SUCCESS),
        Some(old_path) => {
            let old_raw = std::fs::read_to_string(old_path)
                .map_err(|err| format!("cannot read {old_path}: {err}"))?;
            let old = parse_datapoint(&old_raw)
                .map_err(|err| format!("{old_path} is not a {SCHEMA} datapoint: {err}"))?;
            compare(&measurements, &old, threshold)
        }
    }
}

// --- the suite -----------------------------------------------------------

/// All benched object kinds (those with both an implementation and a fault
/// injector).
const KINDS: [ObjectKind; 6] = [
    ObjectKind::Queue,
    ObjectKind::Stack,
    ObjectKind::Set,
    ObjectKind::PriorityQueue,
    ObjectKind::Counter,
    ObjectKind::Register,
];

fn run_suite(quick: bool) -> Vec<Measurement> {
    let mut out = Vec::new();

    // Checker group: recorded executions, correct and faulty. Sizes are kept
    // moderate because fault-injected histories may exercise the general
    // search on ambiguity fallbacks.
    // Inner repetitions widen each timed window to several milliseconds;
    // sub-millisecond windows measure scheduler noise, not the checker.
    // Recorded stack/set/priority-queue/register executions currently decline
    // to the general search (the monitors' preconditions are conservative),
    // whose cost grows steeply — correct sizes stay modest so the suite
    // keeps measuring, not waiting.
    let correct_ops: usize = if quick { 100 } else { 200 };
    let faulty_ops: usize = if quick { 40 } else { 120 };
    for kind in KINDS {
        for faulty_every in [None, Some(5u64)] {
            // Faulty histories are shorter (the violation cuts the check
            // off early), so they get more repetitions to reach a window
            // comparable to the correct ones.
            let (per_process, reps): (usize, u64) = if faulty_every.is_some() {
                (faulty_ops, if quick { 60 } else { 120 })
            } else {
                (correct_ops, if quick { 20 } else { 40 })
            };
            let history = record(kind, 42, per_process, faulty_every);
            let completed = history.operations().len() as u64;
            let label = if faulty_every.is_some() {
                "faulty"
            } else {
                "correct"
            };
            out.push(measure(
                format!("checker/{kind}/{label}"),
                completed * reps,
                || {
                    for _ in 0..reps {
                        let violation = check_verdict(kind, &history);
                        assert_eq!(violation, faulty_every.is_some(), "{kind} verdict drifted");
                    }
                },
            ));
        }
    }

    // The specialized-monitor showcase: a large unambiguous concurrent queue
    // trace, decided without ever touching the general search.
    let large = if quick { 50_000 } else { 1_000_000 };
    let history = synthetic_queue_history(large);
    out.push(measure(
        "checker/queue/synthetic-large".into(),
        history.operations().len() as u64,
        || {
            let checker = StrategyChecker::new(QueueSpec::new());
            assert!(!checker.check(&history).is_violation());
        },
    ));

    // DRV group: the announce/collect wrapper around the canonical queue.
    // Collect returns the full announced view, so the transform is inherently
    // quadratic in operations — sizes stay small to keep the suite fast.
    // Each operation's announce-view size is recorded into a standalone
    // histogram (four relaxed RMWs, noise next to the `O(n)` collect); its
    // p50/p99/max land in the datapoint so the quadratic view growth is
    // quantified before any perf work attacks it.
    let drv_ops = if quick { 2_000u64 } else { 3_000 };
    let processes = 4usize;
    let view_sizes = linrv_obs::Histogram::standalone();
    let mut drv_measurement = measure("drv/announce-collect".into(), drv_ops, || {
        let drv = Drv::new(impls::correct_object(ObjectKind::Queue), processes);
        let ids: Vec<ProcessId> = (0..processes)
            .map(|_| drv.register().expect("slots available"))
            .collect();
        for i in 0..drv_ops {
            let process = ids[(i % processes as u64) as usize];
            let op = if i % 2 == 0 {
                ops::queue::enqueue(i as i64)
            } else {
                ops::queue::dequeue()
            };
            let response = drv.apply_drv(process, &op);
            view_sizes.record(response.view.len() as u64);
        }
    });
    // The timed repetitions replay the same deterministic workload, so the
    // accumulated distribution is the single-run distribution, repeated.
    let dist = view_sizes.snapshot_values();
    drv_measurement.view_size = Some(ViewSizeDist {
        p50: dist.quantile(0.5),
        p99: dist.quantile(0.99),
        max: dist.max.unwrap_or(0),
    });
    out.push(drv_measurement);

    // Codec group: encode + decode round-trips per format.
    let codec_ops = if quick { 10_000 } else { 100_000 };
    let history = synthetic_queue_history(codec_ops);
    let events = history.len() as u64;
    for format in [TraceFormat::Jsonl, TraceFormat::Binary] {
        out.push(measure(format!("codec/{format}/roundtrip"), events, || {
            let header = TraceHeader::new(ObjectKind::Queue);
            let mut buffer = Vec::new();
            write_history(&mut buffer, format, &header, &history).expect("in-memory write");
            let (_, decoded) = read_history(buffer.as_slice()).expect("in-memory read");
            assert_eq!(decoded.len(), history.len());
        }));
    }

    // Pool group: multi-object monitoring. `pool/ingest` is the end-to-end
    // path — lazy monitor creation, session traffic through the sharded
    // queues, incremental checks and GC on the worker threads, one final
    // verdict sweep. `pool/check` isolates the per-object projection checking
    // that `linrv check` runs over tagged traces (no threads, no queues).
    let pool_objects: u64 = if quick { 200 } else { 1_000 };
    let pool_ops_per_object: u64 = 10;
    out.push(measure(
        "pool/ingest".into(),
        pool_objects * pool_ops_per_object,
        || {
            let pool = PoolBuilder::new(CounterSpec::new())
                .shards(8)
                .workers(2)
                .sessions_per_object(1)
                .snapshot(SnapshotBackend::Locked)
                .first_check(8)
                .build(|_| impls::correct_object(ObjectKind::Counter));
            for object in 0..pool_objects {
                let session = pool.session(object).expect("fresh object has free slots");
                for _ in 0..pool_ops_per_object {
                    session.inc().expect("observe mode never rejects");
                }
            }
            let verdicts = pool.check_all();
            assert_eq!(verdicts.len(), pool_objects as usize);
            assert!(verdicts.values().all(|verdict| verdict.is_correct()));
        },
    ));

    let check_objects: u64 = if quick { 50 } else { 200 };
    let check_ops_per_object: u64 = if quick { 40 } else { 100 };
    let tagged = synthetic_tagged_events(check_objects, check_ops_per_object);
    out.push(measure(
        "pool/check".into(),
        check_objects * check_ops_per_object,
        || {
            let mut checkers = std::collections::BTreeMap::new();
            for (object, event) in &tagged {
                let checker = checkers
                    .entry(*object)
                    .or_insert_with(|| StreamingChecker::new(CounterSpec::new()));
                assert!(
                    checker.push(event.clone()).is_none(),
                    "synthetic load is correct"
                );
            }
            assert_eq!(checkers.len(), check_objects as usize);
            for (_, checker) in checkers {
                assert!(!checker.finish().1.is_violation());
            }
        },
    ));

    out
}

/// Round-robin interleaved counter traffic over `objects` objects, tagged per
/// object — each object's projection is a sequential fetch-and-increment run.
fn synthetic_tagged_events(objects: u64, ops_per_object: u64) -> Vec<(u64, Event)> {
    let mut out = Vec::with_capacity((objects * ops_per_object * 2) as usize);
    let process = ProcessId::new(0);
    for i in 0..ops_per_object {
        for object in 0..objects {
            out.push((
                object,
                Event::invocation(process, OpId::new(i), ops::counter::inc()),
            ));
            out.push((
                object,
                Event::response(process, OpId::new(i), OpValue::Int(i as i64)),
            ));
        }
    }
    out
}

/// Timed repetitions per workload; the fastest is recorded. The minimum (not
/// the mean) is what regression comparison needs: allocator and scheduler
/// noise only ever adds time, so min-of-k is the stable estimator of the
/// code's actual cost — a single-shot measurement was seen varying 4x
/// run-to-run on the DRV workload, which would flake a 2x CI gate.
const TIMED_REPS: u32 = 5;

fn measure(id: String, ops: u64, mut work: impl FnMut()) -> Measurement {
    let mut ns_total = u64::MAX;
    for _ in 0..TIMED_REPS {
        let start = Instant::now();
        work();
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ns_total = ns_total.min(elapsed);
    }
    let measurement = Measurement {
        id,
        ops,
        ns_total,
        rss_max_kb: peak_rss_kb(),
        view_size: None,
    };
    eprintln!(
        "{:<35} {:>9} ops  {:>12.1} ns/op  {:>14.0} ops/s",
        measurement.id,
        measurement.ops,
        measurement.ns_per_op(),
        measurement.ops_per_sec(),
    );
    measurement
}

/// Records one deterministic execution, as `linrv record` would.
fn record(
    kind: ObjectKind,
    seed: u64,
    ops_per_process: usize,
    faulty_every: Option<u64>,
) -> History {
    let object = match faulty_every {
        Some(every) => faulty::faulty_object(kind, every),
        None => impls::correct_object(kind),
    };
    let workload = Workload::new(WorkloadKind::for_object(kind), seed);
    let options = RecorderOptions {
        processes: 3,
        ops_per_process,
    };
    record_scheduled(&*object, workload, options, seed ^ 0x5EED_01A7_C0DE).history
}

/// Batch-checks `history` through the strategy dispatch; true on violation.
fn check_verdict(kind: ObjectKind, history: &History) -> bool {
    match kind {
        ObjectKind::Queue => StrategyChecker::new(QueueSpec::new())
            .check(history)
            .is_violation(),
        ObjectKind::Stack => StrategyChecker::new(StackSpec::new())
            .check(history)
            .is_violation(),
        ObjectKind::Set => StrategyChecker::new(SetSpec::new())
            .check(history)
            .is_violation(),
        ObjectKind::PriorityQueue => StrategyChecker::new(PriorityQueueSpec::new())
            .check(history)
            .is_violation(),
        ObjectKind::Counter => StrategyChecker::new(CounterSpec::new())
            .check(history)
            .is_violation(),
        ObjectKind::Register => StrategyChecker::new(RegisterSpec::new())
            .check(history)
            .is_violation(),
        other => panic!("{other} is not part of the bench suite"),
    }
}

/// A large unambiguous queue history: two overlapping process lanes, each
/// value enqueued exactly once and dequeued in FIFO order.
fn synthetic_queue_history(operations: usize) -> History {
    let mut b = HistoryBuilder::new();
    let producer = ProcessId::new(0);
    let consumer = ProcessId::new(1);
    let pairs = (operations / 2).max(1) as i64;
    for value in 0..pairs {
        // Enqueue and its dequeue overlap, exercising the interval logic of
        // the monitor, never just sequential fast paths.
        let enq = b.invoke(producer, ops::queue::enqueue(value));
        let deq = b.invoke(consumer, ops::queue::dequeue());
        b.respond(enq, OpValue::Bool(true));
        b.respond(deq, OpValue::Int(value));
    }
    b.build()
}

// --- environment probes --------------------------------------------------

/// Peak resident set size of this process in kB (`VmHWM`), 0 when
/// unavailable (non-Linux).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Hostname, sanitised for use in a file name.
fn host() -> String {
    let raw = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".into());
    let sanitized: String = raw
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    sanitized.trim_matches('-').to_string()
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock.
fn date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to civil date (Howard Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

// --- JSON emit / parse ---------------------------------------------------

fn render_json(measurements: &[Measurement], quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"host\": \"{}\",", host());
    let _ = writeln!(out, "  \"date\": \"{}\",", date());
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 < measurements.len() { "," } else { "" };
        let view = match &m.view_size {
            Some(v) => format!(
                ", \"view_size\": {{\"p50\": {}, \"p99\": {}, \"max\": {}}}",
                v.p50, v.p99, v.max
            ),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"ops\": {}, \"ns_total\": {}, \"ns_per_op\": {:.2}, \
             \"ops_per_sec\": {:.2}, \"rss_max_kb\": {}{view}}}{comma}",
            m.id,
            m.ops,
            m.ns_total,
            m.ns_per_op(),
            m.ops_per_sec(),
            m.rss_max_kb,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// An earlier datapoint, reduced to what the comparison needs.
struct Datapoint {
    workloads: Vec<(String, f64)>,
}

impl Datapoint {
    fn ns_per_op(&self, id: &str) -> Option<f64> {
        self.workloads
            .iter()
            .find(|(wid, _)| wid == id)
            .map(|&(_, ns)| ns)
    }
}

/// Parses a `linrv-bench/2` (or compatible older) file. A minimal
/// recursive-descent JSON reader is used on purpose: the schema is ours, and
/// the build environment vendors no JSON dependency outside the trace crate's
/// private module.
fn parse_datapoint(raw: &str) -> Result<Datapoint, String> {
    let value = JsonParser { raw, pos: 0 }.parse()?;
    let schema = value
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != SCHEMA && !COMPATIBLE_SCHEMAS.contains(&schema) {
        return Err(format!("schema is {schema:?}, expected {SCHEMA:?}"));
    }
    let Some(Json::Array(entries)) = value.get("workloads") else {
        return Err("missing \"workloads\" array".into());
    };
    let mut workloads = Vec::with_capacity(entries.len());
    for entry in entries {
        let id = entry
            .get("id")
            .and_then(Json::as_str)
            .ok_or("workload without \"id\"")?;
        let ns = entry
            .get("ns_per_op")
            .and_then(Json::as_f64)
            .ok_or("workload without \"ns_per_op\"")?;
        workloads.push((id.to_string(), ns));
    }
    Ok(Datapoint { workloads })
}

fn compare(new: &[Measurement], old: &Datapoint, threshold: f64) -> Result<ExitCode, String> {
    let mut regressions = 0usize;
    eprintln!("comparison (threshold {threshold:.2}x on ns/op):");
    for m in new {
        match old.ns_per_op(&m.id) {
            None => eprintln!("  {:<35} new workload, no baseline", m.id),
            Some(old_ns) if old_ns <= 0.0 => {
                eprintln!("  {:<35} baseline has no timing", m.id);
            }
            Some(old_ns) => {
                let ratio = m.ns_per_op() / old_ns;
                let verdict = if ratio > threshold {
                    regressions += 1;
                    "REGRESSION"
                } else {
                    "ok"
                };
                eprintln!(
                    "  {:<35} {:>12.1} -> {:>12.1} ns/op  ({ratio:>5.2}x) {verdict}",
                    m.id,
                    old_ns,
                    m.ns_per_op(),
                );
            }
        }
    }
    for (id, _) in &old.workloads {
        if !new.iter().any(|m| &m.id == id) {
            eprintln!("  {id:<35} dropped from the suite");
        }
    }
    if regressions > 0 {
        eprintln!("{regressions} workload(s) regressed past {threshold:.2}x");
        Ok(ExitCode::from(1))
    } else {
        eprintln!("no regressions");
        Ok(ExitCode::SUCCESS)
    }
}

// --- minimal JSON --------------------------------------------------------

enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    /// Booleans and null are parsed for completeness; the comparison never
    /// reads them, so the payload is dropped.
    Literal,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    raw: &'a str,
    pos: usize,
}

impl JsonParser<'_> {
    fn parse(mut self) -> Result<Json, String> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.raw.len() {
            return Err(format!("trailing data at byte {}", self.pos));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.raw.as_bytes().get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            // \uXXXX and exotic escapes never appear in our
                            // ASCII identifiers; reject rather than corrupt.
                            return Err(format!("unsupported escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&self.raw[start..self.pos]);
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.raw[start..self.pos]
            .parse()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn literal(&mut self, literal: &str) -> Result<Json, String> {
        if self.raw[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Ok(Json::Literal)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_json_parses_back() {
        let measurements = vec![
            Measurement {
                id: "checker/queue/correct".into(),
                ops: 900,
                ns_total: 1_800_000,
                rss_max_kb: 4096,
                view_size: None,
            },
            Measurement {
                id: "drv/announce-collect".into(),
                ops: 10_000,
                ns_total: 5_000_000,
                rss_max_kb: 8192,
                view_size: Some(ViewSizeDist {
                    p50: 48,
                    p99: 96,
                    max: 101,
                }),
            },
        ];
        let json = render_json(&measurements, true);
        assert!(
            json.contains("\"view_size\": {\"p50\": 48, \"p99\": 96, \"max\": 101}"),
            "view-size distribution lands in the datapoint: {json}"
        );
        let datapoint = parse_datapoint(&json).expect("round-trip");
        assert_eq!(datapoint.workloads.len(), 2);
        assert_eq!(
            datapoint.ns_per_op("checker/queue/correct"),
            Some(2_000.0),
            "ns/op survives the round trip"
        );
    }

    #[test]
    fn old_schema_baselines_still_compare() {
        // A `/1` datapoint (no view_size anywhere) stays a valid baseline.
        let raw = r#"{"schema": "linrv-bench/1",
                      "workloads": [{"id": "drv/announce-collect", "ns_per_op": 120.5}]}"#;
        let old = parse_datapoint(raw).expect("/1 baselines are compatible");
        assert_eq!(old.ns_per_op("drv/announce-collect"), Some(120.5));
    }

    #[test]
    fn comparison_flags_only_real_regressions() {
        let old = Datapoint {
            workloads: vec![("a".into(), 100.0), ("b".into(), 100.0)],
        };
        let fine = Measurement {
            id: "a".into(),
            ops: 1,
            ns_total: 150,
            rss_max_kb: 0,
            view_size: None,
        };
        let slow = Measurement {
            id: "b".into(),
            ops: 1,
            ns_total: 500,
            rss_max_kb: 0,
            view_size: None,
        };
        let ok = compare(std::slice::from_ref(&fine), &old, 2.0).unwrap();
        assert_eq!(ok, ExitCode::SUCCESS);
        let bad = compare(&[fine, slow], &old, 2.0).unwrap();
        assert_eq!(bad, ExitCode::from(1));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let raw = r#"{"schema": "other/9", "workloads": []}"#;
        assert!(parse_datapoint(raw).is_err());
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        // 2026-08-07 is 20672 days after the epoch.
        assert_eq!(civil_from_days(20_672), (2026, 8, 7));
    }

    #[test]
    fn synthetic_queue_history_is_unambiguous_and_member() {
        let history = synthetic_queue_history(200);
        assert_eq!(history.operations().len(), 200);
        let checker = StrategyChecker::new(QueueSpec::new());
        assert!(!checker.check(&history).is_violation());
    }
}
