//! The `gen` and `record` subcommands: seeded workload → trace.
//!
//! Both drive the runtime's deterministic scheduled recorder, so a given
//! `--seed` always produces the same bytes. They differ only in which object
//! executes the workload:
//!
//! * `gen` runs the **sequential specification itself** (a lock-based
//!   [`SpecObject`](linrv_runtime::impls::SpecObject)) — pure trace generation,
//!   correct by construction;
//! * `record` runs the **canonical concurrent implementation** for the kind
//!   (Michael–Scott queue, Treiber stack, …) — an actual recorded execution.
//!
//! `--faulty` switches either to the kind's deterministic fault injector, so
//! `linrv gen --faulty | linrv check` demonstrably exits 1.

use crate::args::Parsed;
use crate::io::{describe, open_output};
use linrv_runtime::{
    faulty, impls, record_scheduled_traced, Mix, RecorderOptions, Workload, WorkloadKind,
};
use linrv_spec::ObjectKind;
use linrv_trace::{Provenance, SharedTraceWriter, TraceFormat, TraceHeader};
use std::process::ExitCode;

/// Which of the two object families to execute (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Source {
    /// `gen`: the sequential specification behind a lock.
    Specification,
    /// `record`: the canonical concurrent implementation.
    Implementation,
}

/// Parses `--mix A,B[,C]` into the kind's operation-class ratio weights.
fn parse_mix_weights(raw: &str) -> Result<[u32; 3], String> {
    let parts: Vec<&str> = raw.split(',').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err("--mix expects two or three comma-separated weights".into());
    }
    let mut weights = [0u32; 3];
    for (slot, part) in weights.iter_mut().zip(&parts) {
        *slot = part
            .trim()
            .parse()
            .map_err(|err| format!("invalid value for --mix: {err}"))?;
    }
    if weights.iter().all(|&w| w == 0) {
        return Err("--mix weights must not all be zero".into());
    }
    Ok(weights)
}

/// Derives the interleaving seed from the user's seed. Any fixed injective-ish
/// mixing works; what matters is that it is deterministic and distinct from
/// the workload seed (so the two RNG streams do not correlate).
fn schedule_seed(seed: u64) -> u64 {
    seed ^ 0x5EED_01A7_C0DE
}

pub(crate) fn run(parsed: &Parsed, source: Source) -> Result<ExitCode, String> {
    if !parsed.positionals().is_empty() {
        return Err("gen/record take no positional arguments (use --out FILE)".into());
    }
    let kind: ObjectKind = parsed.require("kind")?;
    let seed: u64 = parsed.get_or("seed", 0)?;
    let processes: u32 = parsed.get_or("processes", 3)?;
    let requested_ops: u32 = parsed.get_or("ops", 50)?;
    let every: u64 = parsed.get_or("every", 5)?;
    let format: TraceFormat = parsed.get_or("format", TraceFormat::Jsonl)?;
    if processes == 0 || requested_ops == 0 {
        return Err("--processes and --ops must be positive".into());
    }
    if every == 0 {
        return Err("--every must be positive".into());
    }
    let faulty = parsed.has("faulty");
    let stats = crate::stats::init(parsed);
    // Consensus workloads are one-shot (`Workload` caps them at one Decide per
    // process); record what actually runs in the header, not what was asked.
    let ops = if kind == ObjectKind::Consensus {
        requested_ops.min(1)
    } else {
        requested_ops
    };
    // A corruption period beyond the run's total operation count would label
    // the trace faulty while never corrupting anything; clamp it so --faulty
    // always bites (pass a larger --ops to study rarer faults).
    let every = every.min(u64::from(processes) * u64::from(ops)).max(1);

    // Workload shaping: --mix/--keys/--skew override the kind's historical
    // default mix. Without any of them the default mix is used untouched, so
    // existing seeds keep producing byte-identical traces.
    let workload_kind = WorkloadKind::for_object(kind);
    let mut mix = Mix::default_for(workload_kind);
    let custom_mix =
        parsed.get("mix").is_some() || parsed.get("keys").is_some() || parsed.get("skew").is_some();
    if let Some(raw) = parsed.get("mix") {
        mix = mix.with_weights(parse_mix_weights(raw)?);
    }
    let keys: u32 = parsed.get_or("keys", mix.key_range)?;
    if keys == 0 {
        return Err("--keys must be positive".into());
    }
    let skew: f64 = parsed.get_or("skew", mix.skew)?;
    if !skew.is_finite() || skew < 0.0 {
        return Err("--skew must be a finite non-negative number".into());
    }
    mix = mix.with_key_range(keys).with_skew(skew);

    let object = match (source, faulty) {
        (_, true) => faulty::faulty_object(kind, every),
        (Source::Specification, false) => impls::spec_object(kind),
        (Source::Implementation, false) => impls::correct_object(kind),
    };
    let mut header = TraceHeader::new(kind)
        .with_seed(seed)
        .with_processes(processes)
        .with_ops_per_process(ops)
        .with_implementation(object.name())
        .with_provenance(if faulty {
            Provenance::Faulty
        } else {
            Provenance::Correct
        });
    if custom_mix {
        // Record the non-default shaping in the advisory scenario field so the
        // trace stays self-describing.
        let [w0, w1, w2] = mix.weights;
        header = header.with_scenario(format!("mix={w0},{w1},{w2}/keys={keys}/skew={skew}"));
    }

    let out_path = parsed.get("out");
    let out = open_output(out_path)?;
    let sink = SharedTraceWriter::new(out, format, &header)
        .map_err(|err| format!("cannot write trace header: {err}"))?;
    let run = record_scheduled_traced(
        &*object,
        Workload::new(workload_kind, seed).with_mix(mix),
        RecorderOptions {
            processes: processes as usize,
            ops_per_process: ops as usize,
        },
        schedule_seed(seed),
        &sink,
    );
    let events = sink.events_written();
    sink.finish()
        .map_err(|err| format!("cannot finish trace: {err}"))?;
    eprintln!(
        "linrv: wrote {events} events ({} operations, {} processes, seed {seed}) from {} to {}",
        run.operations,
        processes,
        object.name(),
        describe(out_path, "stdout"),
    );
    if let Some(stats) = &stats {
        stats.emit()?;
    }
    Ok(ExitCode::SUCCESS)
}
