//! The `explain` subcommand: turn a violating trace into a forensic report.
//!
//! Reads a trace (file or stdin), runs the full forensics pipeline on every
//! object it contains — ddmin shrink to a locally minimal witness, interval
//! narrowing, bad-pattern diagnosis, nearest-linearization diff — and prints
//! the ASCII report to stdout. `--html FILE` and `--cert FILE` additionally
//! write the standalone HTML timeline and the `linrv-cert/1` JSON
//! certificate for the first violating object.
//!
//! Exit status mirrors `check`: `0` when the trace is linearizable (nothing
//! to explain), `1` with the report when it is not, `2` on malformed input.

use crate::args::Parsed;
use crate::io::{describe, open_input};
use linrv_forensics::{explain, render_cert, render_html, render_report, Explanation};
use linrv_history::History;
use linrv_trace::read_tagged_history;
use std::collections::BTreeMap;
use std::process::ExitCode;

pub(crate) fn run(parsed: &Parsed) -> Result<ExitCode, String> {
    if parsed.positionals().len() > 1 {
        return Err("explain takes at most one trace file".into());
    }
    let path = parsed.positionals().first().map(String::as_str);
    let quiet = parsed.has("quiet");
    let stats = crate::stats::init(parsed);
    let input = open_input(path)?;
    let source = describe(path, "stdin");
    let (header, tagged) =
        read_tagged_history(input).map_err(|err| format!("cannot read {source}: {err}"))?;

    // Multi-object traces explain per object, like `check` verifies per
    // object; untagged events all share the `None` bucket.
    let mut objects: BTreeMap<Option<u64>, History> = BTreeMap::new();
    for (object, event) in tagged {
        objects.entry(object).or_default().push(event);
    }

    let mut explanations: Vec<(Option<u64>, Explanation)> = Vec::new();
    for (object, history) in &objects {
        if let Some(explanation) = explain(header.kind, history) {
            explanations.push((*object, explanation));
        }
    }

    if explanations.is_empty() {
        if !quiet {
            eprintln!(
                "linrv: {source}: OK — trace is linearizable w.r.t. the {} specification; \
                 nothing to explain",
                header.kind
            );
        }
        if let Some(stats) = &stats {
            stats.emit()?;
        }
        return Ok(ExitCode::SUCCESS);
    }

    for (object, explanation) in &explanations {
        if let Some(id) = object {
            println!("=== object {id} ===");
        }
        print!("{}", render_report(explanation));
    }
    let (_, first) = &explanations[0];
    if let Some(html_path) = parsed.get("html") {
        std::fs::write(html_path, render_html(first))
            .map_err(|err| format!("cannot write {html_path}: {err}"))?;
        eprintln!("linrv: HTML timeline written to {html_path}");
    }
    if let Some(cert_path) = parsed.get("cert") {
        std::fs::write(cert_path, render_cert(first))
            .map_err(|err| format!("cannot write {cert_path}: {err}"))?;
        eprintln!("linrv: certificate written to {cert_path}");
    }
    if let Some(stats) = &stats {
        stats.emit()?;
    }
    Ok(ExitCode::from(1))
}
