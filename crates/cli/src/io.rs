//! Input/output plumbing shared by the subcommands.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

/// Opens the trace input: a file path, or stdin for `None` / `"-"`.
pub(crate) fn open_input(path: Option<&str>) -> Result<Box<dyn Read>, String> {
    match path {
        None | Some("-") => Ok(Box::new(io::stdin())),
        Some(path) => File::open(path)
            .map(|f| Box::new(f) as Box<dyn Read>)
            .map_err(|err| format!("cannot open {path}: {err}")),
    }
}

/// Opens the trace output: a file path, or stdout for `None` / `"-"`. Buffered
/// either way — the trace writers perform many small writes.
pub(crate) fn open_output(path: Option<&str>) -> Result<Box<dyn Write + Send>, String> {
    match path {
        None | Some("-") => Ok(Box::new(BufWriter::new(io::stdout()))),
        Some(path) => File::create(path)
            .map(|f| Box::new(BufWriter::new(f)) as Box<dyn Write + Send>)
            .map_err(|err| format!("cannot create {path}: {err}")),
    }
}

/// Human-readable name for a maybe-path, for status messages.
pub(crate) fn describe(path: Option<&str>, fallback: &str) -> String {
    match path {
        None | Some("-") => fallback.to_string(),
        Some(path) => Path::new(path).display().to_string(),
    }
}
