//! The `linrv-cert/1` machine-readable violation certificate.
//!
//! A schema-versioned JSON document carrying everything a downstream tool
//! needs to re-validate or display the finding: the minimal witness events,
//! the named bad pattern (or the general search's frontier), the
//! minimization statistics and the nearest single-edit fix. The full field
//! reference lives in the repository's `CERT.md`.
//!
//! The document is hand-rendered (the workspace vendors no JSON serializer)
//! with a stable field order and two-space indentation, so certificates are
//! byte-deterministic and diff cleanly under version control.

use crate::diff::NearestFix;
use crate::explain::Explanation;
use linrv_history::EventKind;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn int_list(values: &[i64]) -> String {
    let items: Vec<String> = values.iter().map(i64::to_string).collect();
    format!("[{}]", items.join(", "))
}

/// Renders the explanation as a `linrv-cert/1` JSON certificate (see
/// `CERT.md` for the schema).
pub fn render_cert(explanation: &Explanation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"linrv-cert/1\",");
    let _ = writeln!(out, "  \"kind\": \"{}\",", explanation.kind);
    let _ = writeln!(
        out,
        "  \"explanation\": \"{}\",",
        json_escape(&explanation.explanation)
    );
    match &explanation.pattern {
        Some(pattern) => {
            let _ = writeln!(out, "  \"pattern\": {{");
            let _ = writeln!(out, "    \"name\": \"{}\",", json_escape(pattern.name));
            let _ = writeln!(
                out,
                "    \"message\": \"{}\",",
                json_escape(&pattern.message)
            );
            let _ = writeln!(out, "    \"values\": {}", int_list(&pattern.values));
            let _ = writeln!(out, "  }},");
        }
        None => {
            let _ = writeln!(out, "  \"pattern\": null,");
        }
    }
    match &explanation.frontier {
        Some(frontier) => {
            let ids: Vec<i64> = frontier
                .linearized
                .iter()
                .map(|id| id.raw() as i64)
                .collect();
            let _ = writeln!(out, "  \"frontier\": {{");
            let _ = writeln!(out, "    \"linearized\": {},", int_list(&ids));
            let _ = writeln!(out, "    \"total_complete\": {},", frontier.total_complete);
            let _ = writeln!(out, "    \"explored\": {}", frontier.explored);
            let _ = writeln!(out, "  }},");
        }
        None => {
            let _ = writeln!(out, "  \"frontier\": null,");
        }
    }
    let _ = writeln!(out, "  \"minimization\": {{");
    let _ = writeln!(out, "    \"original_ops\": {},", explanation.original_ops);
    let _ = writeln!(out, "    \"removed\": {},", explanation.removed);
    let _ = writeln!(out, "    \"shrink_checks\": {},", explanation.shrink_checks);
    let _ = writeln!(out, "    \"narrow_steps\": {}", explanation.narrow_steps);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"witness\": [");
    let events = explanation.witness.events();
    for (index, event) in events.iter().enumerate() {
        let comma = if index + 1 < events.len() { "," } else { "" };
        match &event.kind {
            EventKind::Invocation { op } => {
                let _ = writeln!(
                    out,
                    "    {{\"type\": \"inv\", \"process\": {}, \"op\": {}, \
                     \"operation\": \"{}\", \"arg\": \"{}\"}}{comma}",
                    event.process.index(),
                    event.op_id.raw(),
                    json_escape(&op.kind),
                    json_escape(&op.arg.to_string())
                );
            }
            EventKind::Response { value } => {
                let _ = writeln!(
                    out,
                    "    {{\"type\": \"res\", \"process\": {}, \"op\": {}, \
                     \"value\": \"{}\"}}{comma}",
                    event.process.index(),
                    event.op_id.raw(),
                    json_escape(&value.to_string())
                );
            }
        }
    }
    let _ = writeln!(out, "  ],");
    match &explanation.fix {
        Some(NearestFix::RelaxEdge { first, second }) => {
            let _ = writeln!(out, "  \"fix\": {{");
            let _ = writeln!(out, "    \"type\": \"relax-edge\",");
            let _ = writeln!(out, "    \"first\": {},", first.raw());
            let _ = writeln!(out, "    \"second\": {}", second.raw());
            let _ = writeln!(out, "  }}");
        }
        Some(NearestFix::RewriteResponse { op, from, to }) => {
            let _ = writeln!(out, "  \"fix\": {{");
            let _ = writeln!(out, "    \"type\": \"rewrite-response\",");
            let _ = writeln!(out, "    \"op\": {},", op.raw());
            let _ = writeln!(out, "    \"from\": \"{}\",", json_escape(&from.to_string()));
            let _ = writeln!(out, "    \"to\": \"{}\"", json_escape(&to.to_string()));
            let _ = writeln!(out, "  }}");
        }
        Some(NearestFix::RemoveOp { op }) => {
            let _ = writeln!(out, "  \"fix\": {{");
            let _ = writeln!(out, "    \"type\": \"remove-op\",");
            let _ = writeln!(out, "    \"op\": {}", op.raw());
            let _ = writeln!(out, "  }}");
        }
        None => {
            let _ = writeln!(out, "  \"fix\": null");
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explain;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::{ops::queue, ObjectKind};

    fn example() -> Explanation {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::enqueue(1), OpValue::Bool(true));
        b.complete(p, queue::dequeue(), OpValue::Int(7));
        explain(ObjectKind::Queue, &b.build()).expect("violating")
    }

    #[test]
    fn certificates_carry_schema_pattern_witness_and_fix() {
        let cert = render_cert(&example());
        assert!(cert.contains("\"schema\": \"linrv-cert/1\""));
        assert!(cert.contains("\"kind\": \"queue\""));
        assert!(cert.contains("\"name\": \"never-added\""));
        assert!(cert.contains("\"type\": \"inv\""));
        assert!(cert.contains("\"type\": \"res\""));
        assert!(cert.contains("\"fix\""));
    }

    #[test]
    fn certificates_are_deterministic_and_balanced() {
        let a = render_cert(&example());
        let b = render_cert(&example());
        assert_eq!(a, b);
        // A cheap well-formedness smoke: balanced braces/brackets outside
        // string literals (no literal here contains any).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
