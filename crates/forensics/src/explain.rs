//! The end-to-end explanation pipeline: check, shrink, narrow, diagnose,
//! diff.

use crate::check::check_history;
use crate::diff::{nearest_fix, NearestFix};
use crate::metrics;
use crate::narrow::narrow;
use crate::shrink::shrink;
use linrv_check::{BadPattern, SearchFrontier};
use linrv_history::{History, OpId};
use linrv_spec::ObjectKind;
use std::collections::BTreeSet;

/// Everything `linrv explain` knows about one violation.
///
/// Produced by [`explain`]; rendered by [`crate::report::render_report`]
/// (ASCII), [`crate::html::render_html`] (static HTML) and
/// [`crate::cert::render_cert`] (`linrv-cert/1` JSON). All fields are a pure
/// function of the input history, so renders are byte-deterministic.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The checked object kind.
    pub kind: ObjectKind,
    /// Complete operations in the original history.
    pub original_ops: usize,
    /// Complete operations removed by shrinking.
    pub removed: usize,
    /// Checker invocations spent by shrinking.
    pub shrink_checks: usize,
    /// Accepted interval-narrowing swaps.
    pub narrow_steps: usize,
    /// The locally minimal, narrowed violating witness.
    pub witness: History,
    /// The checker's explanation of why the witness violates.
    pub explanation: String,
    /// The named bad pattern, when a specialized monitor decided.
    pub pattern: Option<BadPattern>,
    /// The frontier where the general search died, when it decided.
    pub frontier: Option<SearchFrontier>,
    /// The nearest single-edit fix, when one exists.
    pub fix: Option<NearestFix>,
}

impl Explanation {
    /// The operations the renderers should highlight: ops whose argument or
    /// response carries a culprit value of the bad pattern, ops the general
    /// search could not absorb into its deepest prefix, and ops named by the
    /// nearest fix.
    pub fn culprits(&self) -> BTreeSet<OpId> {
        let mut culprits = BTreeSet::new();
        if let Some(pattern) = &self.pattern {
            for record in self.witness.operations() {
                let arg = record.operation.arg.as_int();
                let response = record.response.as_ref().and_then(|v| v.as_int());
                if pattern
                    .values
                    .iter()
                    .any(|&v| arg == Some(v) || response == Some(v))
                {
                    culprits.insert(record.id);
                }
            }
        }
        if let Some(frontier) = &self.frontier {
            let linearized: BTreeSet<OpId> = frontier.linearized.iter().copied().collect();
            for record in self.witness.complete_operations() {
                if !linearized.contains(&record.id) {
                    culprits.insert(record.id);
                }
            }
        }
        match &self.fix {
            Some(NearestFix::RelaxEdge { first, second }) => {
                culprits.insert(*first);
                culprits.insert(*second);
            }
            Some(NearestFix::RewriteResponse { op, .. }) | Some(NearestFix::RemoveOp { op }) => {
                culprits.insert(*op);
            }
            None => {}
        }
        culprits
    }
}

/// Explains why `history` is not linearizable with respect to `kind`, or
/// returns `None` when it is (or when the verdict is inconclusive).
///
/// The pipeline: re-check, ddmin-shrink to a locally minimal witness, narrow
/// its intervals (diagnosis-stable), read the structured evidence off the
/// witness's verdict, and search for the nearest single-edit fix.
pub fn explain(kind: ObjectKind, history: &History) -> Option<Explanation> {
    if !check_history(kind, history).is_violation() {
        return None;
    }
    let original_ops = history.complete_operations().count();
    let shrunk = shrink(kind, history);
    let narrowed = narrow(kind, &shrunk.history);
    let verdict = check_history(kind, &narrowed.history);
    let violation = verdict.violation().expect("narrowing preserves violation");
    let diff_started = std::time::Instant::now();
    let fix = nearest_fix(kind, &narrowed.history);
    metrics::diff_ns().record(u64::try_from(diff_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    Some(Explanation {
        kind,
        original_ops,
        removed: shrunk.removed,
        shrink_checks: shrunk.checks,
        narrow_steps: narrowed.steps,
        explanation: violation.explanation.clone(),
        pattern: violation.pattern.clone(),
        frontier: violation.frontier.clone(),
        witness: narrowed.history,
        fix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shrink::is_locally_minimal;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::queue;

    fn noisy_never_added(noise: usize) -> History {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        for i in 0..noise {
            b.complete(p, queue::enqueue(100 + i as i64), OpValue::Bool(true));
            b.complete(p, queue::dequeue(), OpValue::Int(100 + i as i64));
        }
        b.complete(p, queue::dequeue(), OpValue::Int(-1));
        b.build()
    }

    #[test]
    fn members_do_not_explain() {
        let mut b = HistoryBuilder::new();
        b.complete(ProcessId::new(0), queue::enqueue(1), OpValue::Bool(true));
        assert!(explain(ObjectKind::Queue, &b.build()).is_none());
    }

    #[test]
    fn explanations_carry_minimal_witness_pattern_and_fix() {
        let explanation = explain(ObjectKind::Queue, &noisy_never_added(6)).expect("violating");
        assert_eq!(explanation.original_ops, 13);
        assert_eq!(explanation.removed, 12);
        assert!(is_locally_minimal(ObjectKind::Queue, &explanation.witness));
        let pattern = explanation.pattern.as_ref().expect("specialized kind");
        assert_eq!(pattern.name, "never-added");
        assert_eq!(pattern.values, [-1]);
        assert!(explanation.fix.is_some());
        assert!(!explanation.culprits().is_empty());
    }

    #[test]
    fn explanations_are_deterministic() {
        let history = noisy_never_added(4);
        let a = explain(ObjectKind::Queue, &history).unwrap();
        let b = explain(ObjectKind::Queue, &history).unwrap();
        assert_eq!(a.witness.events(), b.witness.events());
        assert_eq!(a.explanation, b.explanation);
        assert_eq!(a.fix, b.fix);
        assert_eq!(a.shrink_checks, b.shrink_checks);
    }
}
