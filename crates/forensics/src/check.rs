//! The kind-indexed membership check the forensics pipeline re-runs.
//!
//! Every phase of the pipeline (ddmin shrinking, interval narrowing, the
//! nearest-linearization diff) is a loop of candidate edits re-decided by the
//! checker, so the dispatch lives here once: specialized log-linear monitors
//! where they apply, the general Wing–Gong search everywhere else.

use linrv_check::{StrategyChecker, Verdict};
use linrv_history::History;
use linrv_spec::{
    ConsensusSpec, CounterSpec, ObjectKind, PriorityQueueSpec, QueueSpec, RegisterSpec, SetSpec,
    StackSpec,
};

/// Checks `history` against the sequential specification of `kind` using the
/// strategy checker (specialized log-linear monitors with general fallback).
pub fn check_history(kind: ObjectKind, history: &History) -> Verdict {
    match kind {
        ObjectKind::Queue => StrategyChecker::new(QueueSpec::new()).check(history),
        ObjectKind::Stack => StrategyChecker::new(StackSpec::new()).check(history),
        ObjectKind::Set => StrategyChecker::new(SetSpec::new()).check(history),
        ObjectKind::PriorityQueue => StrategyChecker::new(PriorityQueueSpec::new()).check(history),
        ObjectKind::Counter => StrategyChecker::new(CounterSpec::new()).check(history),
        ObjectKind::Register => StrategyChecker::new(RegisterSpec::new()).check(history),
        ObjectKind::Consensus => StrategyChecker::new(ConsensusSpec::new()).check(history),
    }
}

/// The bad-pattern name a violating history diagnoses to, or `None` when the
/// verdict came from the general search (or the history passes).
///
/// The narrowing pass uses this as its stability guard: an edit is accepted
/// only if the diagnosis is unchanged, so narrowing can never trade the
/// original bug for a different (manufactured) one.
pub(crate) fn pattern_name(kind: ObjectKind, history: &History) -> Option<&'static str> {
    check_history(kind, history)
        .violation()
        .and_then(|violation| violation.pattern.as_ref())
        .map(|pattern| pattern.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::ops::queue;

    #[test]
    fn dispatch_reaches_the_specialized_monitor() {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::dequeue(), OpValue::Int(9));
        let history = b.build();
        let verdict = check_history(ObjectKind::Queue, &history);
        assert!(verdict.is_violation());
        assert_eq!(
            pattern_name(ObjectKind::Queue, &history),
            Some("never-added")
        );
    }

    #[test]
    fn members_have_no_pattern_name() {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::enqueue(1), OpValue::Bool(true));
        assert_eq!(pattern_name(ObjectKind::Queue, &b.build()), None);
    }
}
