//! Self-contained static HTML rendering of an [`Explanation`]: process lanes
//! with proportional interval bars, culprit operations highlighted in red.
//!
//! The page embeds all styling inline — no scripts, no external assets — so
//! it can be committed next to a corpus trace, attached to a CI run, or
//! opened from a mail attachment unchanged.

use crate::explain::Explanation;
use std::fmt::Write as _;

/// Escapes `&`, `<`, `>` and `"` for safe embedding in HTML text and
/// attribute values.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

const STYLE: &str = "\
body { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace; \
margin: 2rem; color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.2rem; }
.meta { color: #444; margin: 0.25rem 0; }
.pattern-name { background: #b91c1c; color: #fff; padding: 0.1rem 0.4rem; \
border-radius: 0.25rem; }
.timeline { margin-top: 1.5rem; border-left: 2px solid #ccc; }
.lane { position: relative; height: 2.2rem; margin: 0.4rem 0; }
.lane-label { position: absolute; left: -3.5rem; top: 0.4rem; width: 3rem; \
text-align: right; color: #666; }
.op { position: absolute; top: 0.2rem; height: 1.6rem; line-height: 1.6rem; \
background: #dbeafe; border: 1px solid #60a5fa; border-radius: 0.25rem; \
overflow: hidden; white-space: nowrap; font-size: 0.8rem; padding: 0 0.3rem; \
box-sizing: border-box; }
.op.culprit { background: #fee2e2; border-color: #b91c1c; font-weight: bold; }
.op.pending { border-right-style: dashed; }
.fix { margin-top: 1.5rem; padding: 0.5rem; background: #ecfdf5; \
border: 1px solid #10b981; border-radius: 0.25rem; }";

/// Renders the explanation as one self-contained HTML page.
pub fn render_html(explanation: &Explanation) -> String {
    let culprits = explanation.culprits();
    let witness = &explanation.witness;
    let n_events = witness.len().max(1) as f64;
    let mut processes: Vec<_> = witness.processes().into_iter().collect();
    processes.sort();

    let mut out = String::new();
    let _ = writeln!(out, "<!DOCTYPE html>");
    let _ = writeln!(out, "<html lang=\"en\">");
    let _ = writeln!(
        out,
        "<head><meta charset=\"utf-8\"><title>linrv explain — {} violation</title>",
        explanation.kind
    );
    let _ = writeln!(out, "<style>{STYLE}</style></head>");
    let _ = writeln!(out, "<body>");
    let _ = writeln!(out, "<h1>{} violation</h1>", explanation.kind);
    let _ = writeln!(
        out,
        "<p class=\"meta\">{}</p>",
        escape(&explanation.explanation)
    );
    if let Some(pattern) = &explanation.pattern {
        let _ = writeln!(
            out,
            "<p class=\"meta\">bad pattern: <span class=\"pattern-name\">{}</span> — {}</p>",
            escape(pattern.name),
            escape(&pattern.message)
        );
    }
    if let Some(frontier) = &explanation.frontier {
        let _ = writeln!(
            out,
            "<p class=\"meta\">general search: {}</p>",
            escape(&frontier.to_string())
        );
    }
    let kept = witness.complete_operations().count();
    let _ = writeln!(
        out,
        "<p class=\"meta\">witness: {kept} of {} complete operations kept \
         ({} removed, {} shrink checks, {} narrowing steps)</p>",
        explanation.original_ops,
        explanation.removed,
        explanation.shrink_checks,
        explanation.narrow_steps
    );
    let _ = writeln!(out, "<div class=\"timeline\">");
    let records = witness.operations();
    for p in processes {
        let _ = writeln!(
            out,
            "<div class=\"lane\"><span class=\"lane-label\">{p}</span>"
        );
        for r in records.iter().filter(|r| r.process == p) {
            let left = r.invocation_index as f64 / n_events * 100.0;
            let right = match r.response_index {
                Some(idx) => (idx + 1) as f64 / n_events * 100.0,
                None => 100.0,
            };
            let mut classes = String::from("op");
            if culprits.contains(&r.id) {
                classes.push_str(" culprit");
            }
            if r.response_index.is_none() {
                classes.push_str(" pending");
            }
            let label = match &r.response {
                Some(v) => format!("{}:{}", r.operation, v),
                None => format!("{}:…", r.operation),
            };
            let _ = writeln!(
                out,
                "<div class=\"{classes}\" style=\"left:{left:.1}%;width:{width:.1}%\" \
                 title=\"{title}\">{text}</div>",
                width = right - left,
                title = escape(&label),
                text = escape(&label)
            );
        }
        let _ = writeln!(out, "</div>");
    }
    let _ = writeln!(out, "</div>");
    if let Some(fix) = &explanation.fix {
        let _ = writeln!(
            out,
            "<p class=\"fix\">nearest fix: {}</p>",
            escape(&fix.to_string())
        );
    }
    let _ = writeln!(out, "</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::explain;
    use linrv_history::{HistoryBuilder, OpValue, ProcessId};
    use linrv_spec::{ops::queue, ObjectKind};

    #[test]
    fn pages_are_self_contained_and_highlight_culprits() {
        let mut b = HistoryBuilder::new();
        let p = ProcessId::new(0);
        b.complete(p, queue::enqueue(1), OpValue::Bool(true));
        b.complete(p, queue::dequeue(), OpValue::Int(7));
        let explanation = explain(ObjectKind::Queue, &b.build()).expect("violating");
        let page = render_html(&explanation);
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("op culprit"));
        assert!(page.contains("never-added"));
        assert!(!page.contains("<script"), "no scripts: {page}");
        assert!(!page.contains("http"), "no external assets");
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }
}
