//! Violation forensics: turn a raw non-linearizable trace into a bug report.
//!
//! A failing history of hundreds of events is evidence but not an
//! explanation. This crate distils such a history into one:
//!
//! 1. **Minimization** ([`shrink()`], [`narrow()`]) — a ddmin loop removes
//!    complete operation pairs while the violation persists, certifying
//!    *local minimality* (removing any single remaining pair makes the trace
//!    pass); an interval-narrowing pass then tightens each surviving
//!    operation's invocation/response window, which only *adds* real-time
//!    precedence edges and therefore keeps the violation while making the
//!    forced orderings visible.
//! 2. **Diagnosis** ([`explain()`], [`diff`]) — the minimal witness is mapped
//!    to a named [`BadPattern`](linrv_check::BadPattern) when a specialized
//!    monitor decided, or to the [`SearchFrontier`](linrv_check::SearchFrontier)
//!    where the general search died; a nearest-linearization diff then finds
//!    the smallest single edit (relax one precedence edge, rewrite one
//!    response, or drop one operation) that would make the witness pass.
//! 3. **Rendering** ([`report`], [`html`], [`cert`]) — an ASCII timeline with
//!    the culprit operations highlighted, a self-contained HTML timeline, and
//!    a schema-versioned `linrv-cert/1` JSON certificate.
//!
//! The pipeline is deterministic: the same history explains to the same
//! bytes, which is what lets `linrv fuzz` commit explanations next to its
//! shrunk corpus and CI byte-compare them.
//!
//! ```
//! use linrv_forensics::explain;
//! use linrv_history::{HistoryBuilder, OpValue, ProcessId};
//! use linrv_spec::{ops::queue, ObjectKind};
//!
//! let mut b = HistoryBuilder::new();
//! let p = ProcessId::new(0);
//! b.complete(p, queue::enqueue(1), OpValue::Bool(true));
//! b.complete(p, queue::dequeue(), OpValue::Int(1));
//! b.complete(p, queue::dequeue(), OpValue::Int(7)); // never enqueued
//! let explanation = explain(ObjectKind::Queue, &b.build()).expect("violating");
//! assert_eq!(explanation.pattern.as_ref().unwrap().name, "never-added");
//! assert_eq!(explanation.witness.complete_operations().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod check;
pub mod diff;
pub mod explain;
pub mod html;
pub mod metrics;
pub mod narrow;
pub mod report;
pub mod shrink;

pub use cert::render_cert;
pub use check::check_history;
pub use diff::{nearest_fix, NearestFix};
pub use explain::{explain, Explanation};
pub use html::render_html;
pub use narrow::{narrow, NarrowOutcome};
pub use report::render_report;
pub use shrink::{is_locally_minimal, shrink, ShrinkOutcome};
